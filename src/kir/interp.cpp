#include "kir/interp.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <memory>

namespace malisim::kir {
namespace {

/// Applies `op(a, b)` lane-wise for the instruction's scalar type.
#define MALI_BIN_ALL_TYPES(D, A, B, OPR)                                   \
  switch (type.scalar) {                                                   \
    case ScalarType::kF32:                                                 \
      for (int l = 0; l < lanes; ++l) (D).f32[l] = (A).f32[l] OPR(B).f32[l]; \
      break;                                                               \
    case ScalarType::kF64:                                                 \
      for (int l = 0; l < lanes; ++l) (D).f64[l] = (A).f64[l] OPR(B).f64[l]; \
      break;                                                               \
    case ScalarType::kI32:                                                 \
      for (int l = 0; l < lanes; ++l) (D).i32[l] = (A).i32[l] OPR(B).i32[l]; \
      break;                                                               \
    case ScalarType::kI64:                                                 \
      for (int l = 0; l < lanes; ++l) (D).i64[l] = (A).i64[l] OPR(B).i64[l]; \
      break;                                                               \
  }

/// Applies a comparison lane-wise, producing an i32 mask.
#define MALI_CMP_ALL_TYPES(D, A, B, OPR, SRC_TYPE)                           \
  switch (SRC_TYPE) {                                                        \
    case ScalarType::kF32:                                                   \
      for (int l = 0; l < lanes; ++l) (D).i32[l] = (A).f32[l] OPR(B).f32[l]; \
      break;                                                                 \
    case ScalarType::kF64:                                                   \
      for (int l = 0; l < lanes; ++l) (D).i32[l] = (A).f64[l] OPR(B).f64[l]; \
      break;                                                                 \
    case ScalarType::kI32:                                                   \
      for (int l = 0; l < lanes; ++l) (D).i32[l] = (A).i32[l] OPR(B).i32[l]; \
      break;                                                                 \
    case ScalarType::kI64:                                                   \
      for (int l = 0; l < lanes; ++l) (D).i32[l] = (A).i64[l] OPR(B).i64[l]; \
      break;                                                                 \
  }

/// Applies a float unary function lane-wise.
#define MALI_UN_FLOAT(D, A, FN32, FN64)                          \
  switch (type.scalar) {                                         \
    case ScalarType::kF32:                                       \
      for (int l = 0; l < lanes; ++l) (D).f32[l] = FN32((A).f32[l]); \
      break;                                                     \
    case ScalarType::kF64:                                       \
      for (int l = 0; l < lanes; ++l) (D).f64[l] = FN64((A).f64[l]); \
      break;                                                     \
    default:                                                     \
      return InternalError("float-only op on integer register"); \
  }

template <typename To, typename From>
To ConvertLane(From v) {
  return static_cast<To>(v);
}

}  // namespace

Status ValidateLaunch(const Program& program, const LaunchConfig& config,
                      const Bindings& bindings) {
  if (!program.finalized()) {
    return FailedPreconditionError("program not finalized: " + program.name);
  }
  if (!config.IsValid()) {
    return InvalidArgumentError(
        "invalid NDRange: global size must be a positive multiple of local "
        "size in every used dimension");
  }

  // Check bindings against declarations.
  std::uint32_t want_buffers = 0;
  std::uint32_t want_scalars = 0;
  for (const ArgDecl& arg : program.args) {
    if (arg.kind == ArgKind::kScalar) {
      ++want_scalars;
    } else {
      ++want_buffers;
    }
  }
  if (bindings.buffers.size() != want_buffers) {
    return InvalidArgumentError(
        "kernel '" + program.name + "' expects " +
        std::to_string(want_buffers) + " buffer args, got " +
        std::to_string(bindings.buffers.size()));
  }
  if (bindings.scalars.size() != want_scalars) {
    return InvalidArgumentError(
        "kernel '" + program.name + "' expects " +
        std::to_string(want_scalars) + " scalar args, got " +
        std::to_string(bindings.scalars.size()));
  }
  for (std::size_t i = 0; i < bindings.buffers.size(); ++i) {
    if (bindings.buffers[i].host == nullptr) {
      return InvalidArgumentError("buffer arg " + std::to_string(i) +
                                  " is unbound");
    }
  }
  std::uint64_t local_bytes = 0;
  for (const LocalArrayDecl& local : program.locals) {
    local_bytes += static_cast<std::uint64_t>(local.elems) * ScalarBytes(local.elem);
  }
  if (local_bytes > 0 && (bindings.local_scratch.host == nullptr ||
                          bindings.local_scratch.size_bytes < local_bytes)) {
    return InvalidArgumentError("local scratch too small for kernel '" +
                                program.name + "'");
  }
  // Scalar types must match.
  std::size_t scalar_idx = 0;
  for (const ArgDecl& arg : program.args) {
    if (arg.kind != ArgKind::kScalar) continue;
    if (bindings.scalars[scalar_idx].type != arg.elem) {
      return InvalidArgumentError("scalar arg '" + arg.name + "' type mismatch");
    }
    ++scalar_idx;
  }
  return Status::Ok();
}

StatusOr<InterpExecutor> InterpExecutor::Create(const Program* program,
                                                LaunchConfig config,
                                                Bindings bindings) {
  MALI_CHECK(program != nullptr);
  MALI_RETURN_IF_ERROR(ValidateLaunch(*program, config, bindings));
  return InterpExecutor(program, config, std::move(bindings));
}

InterpExecutor::InterpExecutor(const Program* program, LaunchConfig config,
                               Bindings bindings)
    : p_(program), config_(config), bindings_(std::move(bindings)) {
  num_regs_ = static_cast<std::uint32_t>(p_->regs.size());

  // Slot table: buffer args first, then locals carved out of the scratch.
  std::size_t buf_idx = 0;
  for (const ArgDecl& arg : p_->args) {
    if (arg.kind == ArgKind::kScalar) continue;
    const BufferBinding& b = bindings_.buffers[buf_idx++];
    slots_.push_back({b.host, b.sim_addr, b.size_bytes, ScalarBytes(arg.elem)});
  }
  std::uint64_t local_off = 0;
  for (const LocalArrayDecl& local : p_->locals) {
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(local.elems) * ScalarBytes(local.elem);
    slots_.push_back({bindings_.local_scratch.host + local_off,
                      bindings_.local_scratch.sim_addr + local_off, bytes,
                      ScalarBytes(local.elem)});
    local_off += bytes;
  }

  // Pre-decode per-instruction metadata.
  decoded_.reserve(p_->code.size());
  for (const Instr& in : p_->code) {
    Decoded d;
    const OpClass cls = ClassifyOpcode(in.op);
    const Type t = in.type;
    d.lanes = t.lanes;
    d.hist_idx = OpHistogram::Index(cls, t.scalar, LaneIndex(t.lanes));
    if (in.op == Opcode::kLoad || in.op == Opcode::kStore ||
        in.op == Opcode::kAtomicAddI32) {
      d.access_bytes = ScalarBytes(t.scalar) * t.lanes;
    }
    decoded_.push_back(d);
  }

  const std::uint64_t threads =
      p_->has_barrier() ? config_.work_group_size() : 1;
  reg_arena_.resize(threads * num_regs_);
  if (p_->has_barrier()) {
    barrier_pcs_.resize(threads);
    barrier_weights_.resize(threads);
    barrier_ctxs_.reserve(threads);
  }
}

Status InterpExecutor::RunGroup(const std::array<std::uint64_t, 3>& group_id,
                                MemorySink* sink, WorkGroupRun* out) {
  MALI_CHECK(sink != nullptr && out != nullptr);
  const auto groups = config_.num_groups();
  for (int d = 0; d < 3; ++d) {
    if (group_id[d] >= groups[d]) {
      return OutOfRangeError("group id out of range");
    }
  }
  const std::uint64_t l0 = config_.local_size[0];
  const std::uint64_t l1 = config_.local_size[1];
  const std::uint64_t l2 = config_.local_size[2];
  const std::uint64_t wg = l0 * l1 * l2;

  auto make_ctx = [&](std::uint64_t t) {
    ThreadCtx ctx;
    const std::uint64_t lx = t % l0;
    const std::uint64_t ly = (t / l0) % l1;
    const std::uint64_t lz = t / (l0 * l1);
    const std::uint64_t local[3] = {lx, ly, lz};
    for (int d = 0; d < 3; ++d) {
      ctx.local_id[d] = static_cast<std::int32_t>(local[d]);
      ctx.group_id[d] = static_cast<std::int32_t>(group_id[d]);
      ctx.global_id[d] = static_cast<std::int32_t>(
          group_id[d] * config_.local_size[d] + local[d]);
    }
    return ctx;
  };

  if (!p_->has_barrier()) {
    // Fast path: one work-item at a time, one register set.
    RegValue* regs = reg_arena_.data();
    std::uint64_t max_item_weight = 0;
    const std::uint64_t group_start = steps_executed_;
    for (std::uint64_t t = 0; t < wg; ++t) {
      std::memset(static_cast<void*>(regs), 0, sizeof(RegValue) * num_regs_);
      const ThreadCtx ctx = make_ctx(t);
      const std::uint64_t item_start = steps_executed_;
      MALI_RETURN_IF_ERROR(RunStraight(ctx, regs, sink, out));
      max_item_weight = std::max(max_item_weight, steps_executed_ - item_start);
      ++out->work_items;
    }
    out->item_weight_sum += steps_executed_ - group_start;
    out->weighted_group_cost += max_item_weight * wg;
    return Status::Ok();
  }

  // Barrier path: all work-items advance in run-to-barrier phases. The
  // per-item scratch vectors are executor members, sized at construction.
  std::memset(static_cast<void*>(reg_arena_.data()), 0,
              sizeof(RegValue) * reg_arena_.size());
  std::fill(barrier_pcs_.begin(), barrier_pcs_.end(), 0u);
  std::fill(barrier_weights_.begin(), barrier_weights_.end(),
            std::uint64_t{0});
  barrier_ctxs_.clear();
  for (std::uint64_t t = 0; t < wg; ++t) barrier_ctxs_.push_back(make_ctx(t));

  const std::uint64_t group_start = steps_executed_;
  bool done = false;
  while (!done) {
    std::uint64_t finished = 0;
    std::uint64_t at_barrier = 0;
    for (std::uint64_t t = 0; t < wg; ++t) {
      RegValue* regs = reg_arena_.data() + t * num_regs_;
      const std::uint64_t item_start = steps_executed_;
      StatusOr<StopReason> stop =
          RunToBarrier(barrier_ctxs_[t], regs, &barrier_pcs_[t], sink, out);
      barrier_weights_[t] += steps_executed_ - item_start;
      if (!stop.ok()) return stop.status();
      if (*stop == StopReason::kDone) {
        ++finished;
      } else {
        ++at_barrier;
      }
    }
    if (at_barrier > 0 && finished > 0) {
      return InvalidArgumentError(
          "barrier divergence in kernel '" + p_->name +
          "': not all work-items reach the same barrier");
    }
    if (at_barrier > 0) ++out->barriers_crossed;
    done = finished == wg;
  }
  out->work_items += wg;
  std::uint64_t max_item_weight = 0;
  for (std::uint64_t w : barrier_weights_) max_item_weight = std::max(max_item_weight, w);
  out->item_weight_sum += steps_executed_ - group_start;
  out->weighted_group_cost += max_item_weight * wg;
  return Status::Ok();
}

Status InterpExecutor::RunAllGroups(MemorySink* sink, WorkGroupRun* out) {
  const auto groups = config_.num_groups();
  for (std::uint64_t gz = 0; gz < groups[2]; ++gz) {
    for (std::uint64_t gy = 0; gy < groups[1]; ++gy) {
      for (std::uint64_t gx = 0; gx < groups[0]; ++gx) {
        MALI_RETURN_IF_ERROR(RunGroup({gx, gy, gz}, sink, out));
      }
    }
  }
  return Status::Ok();
}

Status InterpExecutor::RunStraight(const ThreadCtx& ctx, RegValue* regs,
                             MemorySink* sink, WorkGroupRun* out) {
  std::uint32_t pc = 0;
  const std::uint32_t end = static_cast<std::uint32_t>(p_->code.size());
  while (pc < end) {
    MALI_RETURN_IF_ERROR(Step(ctx, regs, &pc, sink, out));
  }
  return Status::Ok();
}

StatusOr<InterpExecutor::StopReason> InterpExecutor::RunToBarrier(
    const ThreadCtx& ctx, RegValue* regs, std::uint32_t* pc, MemorySink* sink,
    WorkGroupRun* out) {
  const std::uint32_t end = static_cast<std::uint32_t>(p_->code.size());
  while (*pc < end) {
    if (p_->code[*pc].op == Opcode::kBarrier) {
      out->ops.AddAt(decoded_[*pc].hist_idx);
      if (opcode_tally_ != nullptr) {
        ++opcode_tally_[static_cast<std::size_t>(Opcode::kBarrier)];
      }
      ++*pc;
      return StopReason::kBarrier;
    }
    MALI_RETURN_IF_ERROR(Step(ctx, regs, pc, sink, out));
  }
  return StopReason::kDone;
}

Status InterpExecutor::Step(const ThreadCtx& ctx, RegValue* regs,
                            std::uint32_t* pc, MemorySink* sink,
                            WorkGroupRun* out) {
  const std::uint32_t i = *pc;
  const Instr& in = p_->code[i];
  const Decoded& dec = decoded_[i];
  const Type type = in.type;
  const int lanes = dec.lanes;
  out->ops.AddAt(dec.hist_idx);
  ++steps_executed_;
  if (opcode_tally_ != nullptr) {
    ++opcode_tally_[static_cast<std::size_t>(in.op)];
  }
  if (host_time_ != nullptr && --host_time_->countdown == 0) {
    HostTimeSinkTick(host_time_, *p_, i);
  }

  RegValue& D = regs[in.dst];
  const RegValue& A = regs[in.a];
  const RegValue& B = regs[in.b];
  const RegValue& C = regs[in.c];

  std::uint32_t next = i + 1;
  switch (in.op) {
    case Opcode::kConstI:
      switch (type.scalar) {
        case ScalarType::kF32:
          for (int l = 0; l < lanes; ++l) D.f32[l] = static_cast<float>(in.imm);
          break;
        case ScalarType::kF64:
          for (int l = 0; l < lanes; ++l) D.f64[l] = static_cast<double>(in.imm);
          break;
        case ScalarType::kI32:
          for (int l = 0; l < lanes; ++l) D.i32[l] = static_cast<std::int32_t>(in.imm);
          break;
        case ScalarType::kI64:
          for (int l = 0; l < lanes; ++l) D.i64[l] = in.imm;
          break;
      }
      break;
    case Opcode::kConstF:
      if (type.scalar == ScalarType::kF32) {
        for (int l = 0; l < lanes; ++l) D.f32[l] = static_cast<float>(in.fimm);
      } else {
        for (int l = 0; l < lanes; ++l) D.f64[l] = in.fimm;
      }
      break;
    case Opcode::kArg: {
      const ScalarValue& sv = bindings_.scalars[static_cast<std::size_t>(in.imm)];
      switch (type.scalar) {
        case ScalarType::kF32:
          D.f32[0] = static_cast<float>(sv.f);
          break;
        case ScalarType::kF64:
          D.f64[0] = sv.f;
          break;
        case ScalarType::kI32:
          D.i32[0] = static_cast<std::int32_t>(sv.i);
          break;
        case ScalarType::kI64:
          D.i64[0] = sv.i;
          break;
      }
      break;
    }
    case Opcode::kGlobalId:
      D.i32[0] = ctx.global_id[in.imm];
      break;
    case Opcode::kLocalId:
      D.i32[0] = ctx.local_id[in.imm];
      break;
    case Opcode::kGroupId:
      D.i32[0] = ctx.group_id[in.imm];
      break;
    case Opcode::kGlobalSize:
      D.i32[0] = static_cast<std::int32_t>(config_.global_size[in.imm]);
      break;
    case Opcode::kLocalSize:
      D.i32[0] = static_cast<std::int32_t>(config_.local_size[in.imm]);
      break;
    case Opcode::kNumGroups:
      D.i32[0] = static_cast<std::int32_t>(config_.num_groups()[in.imm]);
      break;
    case Opcode::kMov:
      D = A;
      break;
    case Opcode::kAdd:
      MALI_BIN_ALL_TYPES(D, A, B, +)
      break;
    case Opcode::kSub:
      MALI_BIN_ALL_TYPES(D, A, B, -)
      break;
    case Opcode::kMul:
      MALI_BIN_ALL_TYPES(D, A, B, *)
      break;
    case Opcode::kDiv:
      switch (type.scalar) {
        case ScalarType::kF32:
          for (int l = 0; l < lanes; ++l) D.f32[l] = A.f32[l] / B.f32[l];
          break;
        case ScalarType::kF64:
          for (int l = 0; l < lanes; ++l) D.f64[l] = A.f64[l] / B.f64[l];
          break;
        case ScalarType::kI32:
          for (int l = 0; l < lanes; ++l) {
            if (B.i32[l] == 0) return InvalidArgumentError("integer division by zero");
            D.i32[l] = A.i32[l] / B.i32[l];
          }
          break;
        case ScalarType::kI64:
          for (int l = 0; l < lanes; ++l) {
            if (B.i64[l] == 0) return InvalidArgumentError("integer division by zero");
            D.i64[l] = A.i64[l] / B.i64[l];
          }
          break;
      }
      break;
    case Opcode::kIDiv:
    case Opcode::kIRem: {
      const bool is_rem = in.op == Opcode::kIRem;
      if (type.scalar == ScalarType::kI32) {
        for (int l = 0; l < lanes; ++l) {
          if (B.i32[l] == 0) return InvalidArgumentError("integer division by zero");
          D.i32[l] = is_rem ? A.i32[l] % B.i32[l] : A.i32[l] / B.i32[l];
        }
      } else {
        for (int l = 0; l < lanes; ++l) {
          if (B.i64[l] == 0) return InvalidArgumentError("integer division by zero");
          D.i64[l] = is_rem ? A.i64[l] % B.i64[l] : A.i64[l] / B.i64[l];
        }
      }
      break;
    }
    case Opcode::kMin:
      switch (type.scalar) {
        case ScalarType::kF32:
          for (int l = 0; l < lanes; ++l) D.f32[l] = std::fmin(A.f32[l], B.f32[l]);
          break;
        case ScalarType::kF64:
          for (int l = 0; l < lanes; ++l) D.f64[l] = std::fmin(A.f64[l], B.f64[l]);
          break;
        case ScalarType::kI32:
          for (int l = 0; l < lanes; ++l) D.i32[l] = std::min(A.i32[l], B.i32[l]);
          break;
        case ScalarType::kI64:
          for (int l = 0; l < lanes; ++l) D.i64[l] = std::min(A.i64[l], B.i64[l]);
          break;
      }
      break;
    case Opcode::kMax:
      switch (type.scalar) {
        case ScalarType::kF32:
          for (int l = 0; l < lanes; ++l) D.f32[l] = std::fmax(A.f32[l], B.f32[l]);
          break;
        case ScalarType::kF64:
          for (int l = 0; l < lanes; ++l) D.f64[l] = std::fmax(A.f64[l], B.f64[l]);
          break;
        case ScalarType::kI32:
          for (int l = 0; l < lanes; ++l) D.i32[l] = std::max(A.i32[l], B.i32[l]);
          break;
        case ScalarType::kI64:
          for (int l = 0; l < lanes; ++l) D.i64[l] = std::max(A.i64[l], B.i64[l]);
          break;
      }
      break;
    case Opcode::kFma:
      if (type.scalar == ScalarType::kF32) {
        for (int l = 0; l < lanes; ++l) D.f32[l] = A.f32[l] * B.f32[l] + C.f32[l];
      } else {
        for (int l = 0; l < lanes; ++l) D.f64[l] = A.f64[l] * B.f64[l] + C.f64[l];
      }
      break;
    case Opcode::kNeg:
      switch (type.scalar) {
        case ScalarType::kF32:
          for (int l = 0; l < lanes; ++l) D.f32[l] = -A.f32[l];
          break;
        case ScalarType::kF64:
          for (int l = 0; l < lanes; ++l) D.f64[l] = -A.f64[l];
          break;
        case ScalarType::kI32:
          for (int l = 0; l < lanes; ++l) D.i32[l] = -A.i32[l];
          break;
        case ScalarType::kI64:
          for (int l = 0; l < lanes; ++l) D.i64[l] = -A.i64[l];
          break;
      }
      break;
    case Opcode::kAbs:
      switch (type.scalar) {
        case ScalarType::kF32:
          for (int l = 0; l < lanes; ++l) D.f32[l] = std::fabs(A.f32[l]);
          break;
        case ScalarType::kF64:
          for (int l = 0; l < lanes; ++l) D.f64[l] = std::fabs(A.f64[l]);
          break;
        case ScalarType::kI32:
          for (int l = 0; l < lanes; ++l) D.i32[l] = std::abs(A.i32[l]);
          break;
        case ScalarType::kI64:
          for (int l = 0; l < lanes; ++l) D.i64[l] = std::llabs(A.i64[l]);
          break;
      }
      break;
    case Opcode::kFloor:
      MALI_UN_FLOAT(D, A, std::floor, std::floor)
      break;
    case Opcode::kSqrt:
      MALI_UN_FLOAT(D, A, std::sqrt, std::sqrt)
      break;
    case Opcode::kRsqrt:
      MALI_UN_FLOAT(D, A, 1.0f / std::sqrt, 1.0 / std::sqrt)
      break;
    case Opcode::kExp:
      MALI_UN_FLOAT(D, A, std::exp, std::exp)
      break;
    case Opcode::kLog:
      MALI_UN_FLOAT(D, A, std::log, std::log)
      break;
    case Opcode::kSin:
      MALI_UN_FLOAT(D, A, std::sin, std::sin)
      break;
    case Opcode::kCos:
      MALI_UN_FLOAT(D, A, std::cos, std::cos)
      break;
    case Opcode::kAnd:
      if (type.scalar == ScalarType::kI32) {
        for (int l = 0; l < lanes; ++l) D.i32[l] = A.i32[l] & B.i32[l];
      } else {
        for (int l = 0; l < lanes; ++l) D.i64[l] = A.i64[l] & B.i64[l];
      }
      break;
    case Opcode::kOr:
      if (type.scalar == ScalarType::kI32) {
        for (int l = 0; l < lanes; ++l) D.i32[l] = A.i32[l] | B.i32[l];
      } else {
        for (int l = 0; l < lanes; ++l) D.i64[l] = A.i64[l] | B.i64[l];
      }
      break;
    case Opcode::kXor:
      if (type.scalar == ScalarType::kI32) {
        for (int l = 0; l < lanes; ++l) D.i32[l] = A.i32[l] ^ B.i32[l];
      } else {
        for (int l = 0; l < lanes; ++l) D.i64[l] = A.i64[l] ^ B.i64[l];
      }
      break;
    case Opcode::kNot:
      if (type.scalar == ScalarType::kI32) {
        for (int l = 0; l < lanes; ++l) D.i32[l] = ~A.i32[l];
      } else {
        for (int l = 0; l < lanes; ++l) D.i64[l] = ~A.i64[l];
      }
      break;
    case Opcode::kShl:
      if (type.scalar == ScalarType::kI32) {
        for (int l = 0; l < lanes; ++l) {
          D.i32[l] = static_cast<std::int32_t>(
              static_cast<std::uint32_t>(A.i32[l]) << in.imm);
        }
      } else {
        for (int l = 0; l < lanes; ++l) {
          D.i64[l] = static_cast<std::int64_t>(
              static_cast<std::uint64_t>(A.i64[l]) << in.imm);
        }
      }
      break;
    case Opcode::kShr:
      if (type.scalar == ScalarType::kI32) {
        for (int l = 0; l < lanes; ++l) {
          D.i32[l] = static_cast<std::int32_t>(
              static_cast<std::uint32_t>(A.i32[l]) >> in.imm);
        }
      } else {
        for (int l = 0; l < lanes; ++l) {
          D.i64[l] = static_cast<std::int64_t>(
              static_cast<std::uint64_t>(A.i64[l]) >> in.imm);
        }
      }
      break;
    case Opcode::kCmpLt:
      MALI_CMP_ALL_TYPES(D, A, B, <, p_->regs[in.a].type.scalar)
      break;
    case Opcode::kCmpLe:
      MALI_CMP_ALL_TYPES(D, A, B, <=, p_->regs[in.a].type.scalar)
      break;
    case Opcode::kCmpEq:
      MALI_CMP_ALL_TYPES(D, A, B, ==, p_->regs[in.a].type.scalar)
      break;
    case Opcode::kCmpNe:
      MALI_CMP_ALL_TYPES(D, A, B, !=, p_->regs[in.a].type.scalar)
      break;
    case Opcode::kSelect:
      switch (type.scalar) {
        case ScalarType::kF32:
          for (int l = 0; l < lanes; ++l) D.f32[l] = A.i32[l] ? B.f32[l] : C.f32[l];
          break;
        case ScalarType::kF64:
          for (int l = 0; l < lanes; ++l) D.f64[l] = A.i32[l] ? B.f64[l] : C.f64[l];
          break;
        case ScalarType::kI32:
          for (int l = 0; l < lanes; ++l) D.i32[l] = A.i32[l] ? B.i32[l] : C.i32[l];
          break;
        case ScalarType::kI64:
          for (int l = 0; l < lanes; ++l) D.i64[l] = A.i32[l] ? B.i64[l] : C.i64[l];
          break;
      }
      break;
    case Opcode::kConvert: {
      const ScalarType from = p_->regs[in.a].type.scalar;
      for (int l = 0; l < lanes; ++l) {
        double fv = 0.0;
        std::int64_t iv = 0;
        bool is_float_src = true;
        switch (from) {
          case ScalarType::kF32:
            fv = static_cast<double>(A.f32[l]);
            break;
          case ScalarType::kF64:
            fv = A.f64[l];
            break;
          case ScalarType::kI32:
            iv = A.i32[l];
            is_float_src = false;
            break;
          case ScalarType::kI64:
            iv = A.i64[l];
            is_float_src = false;
            break;
        }
        switch (type.scalar) {
          case ScalarType::kF32:
            D.f32[l] = is_float_src ? static_cast<float>(fv)
                                    : static_cast<float>(iv);
            break;
          case ScalarType::kF64:
            D.f64[l] = is_float_src ? fv : static_cast<double>(iv);
            break;
          case ScalarType::kI32:
            D.i32[l] = is_float_src ? static_cast<std::int32_t>(fv)
                                    : static_cast<std::int32_t>(iv);
            break;
          case ScalarType::kI64:
            D.i64[l] = is_float_src ? static_cast<std::int64_t>(fv) : iv;
            break;
        }
      }
      break;
    }
    case Opcode::kSplat:
      switch (type.scalar) {
        case ScalarType::kF32:
          for (int l = 0; l < lanes; ++l) D.f32[l] = A.f32[0];
          break;
        case ScalarType::kF64:
          for (int l = 0; l < lanes; ++l) D.f64[l] = A.f64[0];
          break;
        case ScalarType::kI32:
          for (int l = 0; l < lanes; ++l) D.i32[l] = A.i32[0];
          break;
        case ScalarType::kI64:
          for (int l = 0; l < lanes; ++l) D.i64[l] = A.i64[0];
          break;
      }
      break;
    case Opcode::kExtract:
      switch (type.scalar) {
        case ScalarType::kF32:
          D.f32[0] = A.f32[in.imm];
          break;
        case ScalarType::kF64:
          D.f64[0] = A.f64[in.imm];
          break;
        case ScalarType::kI32:
          D.i32[0] = A.i32[in.imm];
          break;
        case ScalarType::kI64:
          D.i64[0] = A.i64[in.imm];
          break;
      }
      break;
    case Opcode::kInsert:
      D = A;
      switch (type.scalar) {
        case ScalarType::kF32:
          D.f32[in.imm] = B.f32[0];
          break;
        case ScalarType::kF64:
          D.f64[in.imm] = B.f64[0];
          break;
        case ScalarType::kI32:
          D.i32[in.imm] = B.i32[0];
          break;
        case ScalarType::kI64:
          D.i64[in.imm] = B.i64[0];
          break;
      }
      break;
    case Opcode::kSlide: {
      // dst[l] = concat(a, b)[l + imm]; lanes beyond come from b.
      const int shift = static_cast<int>(in.imm);
      RegValue tmp;  // allow dst aliasing a or b
      switch (type.scalar) {
        case ScalarType::kF32:
          for (int l = 0; l < lanes; ++l) {
            const int s = l + shift;
            tmp.f32[l] = s < lanes ? A.f32[s] : B.f32[s - lanes];
          }
          for (int l = 0; l < lanes; ++l) D.f32[l] = tmp.f32[l];
          break;
        case ScalarType::kF64:
          for (int l = 0; l < lanes; ++l) {
            const int s = l + shift;
            tmp.f64[l] = s < lanes ? A.f64[s] : B.f64[s - lanes];
          }
          for (int l = 0; l < lanes; ++l) D.f64[l] = tmp.f64[l];
          break;
        case ScalarType::kI32:
          for (int l = 0; l < lanes; ++l) {
            const int s = l + shift;
            tmp.i32[l] = s < lanes ? A.i32[s] : B.i32[s - lanes];
          }
          for (int l = 0; l < lanes; ++l) D.i32[l] = tmp.i32[l];
          break;
        case ScalarType::kI64:
          for (int l = 0; l < lanes; ++l) {
            const int s = l + shift;
            tmp.i64[l] = s < lanes ? A.i64[s] : B.i64[s - lanes];
          }
          for (int l = 0; l < lanes; ++l) D.i64[l] = tmp.i64[l];
          break;
      }
      break;
    }
    case Opcode::kVSum: {
      const int src_lanes = p_->regs[in.a].type.lanes;
      switch (type.scalar) {
        case ScalarType::kF32: {
          float s = 0.0f;
          for (int l = 0; l < src_lanes; ++l) s += A.f32[l];
          D.f32[0] = s;
          break;
        }
        case ScalarType::kF64: {
          double s = 0.0;
          for (int l = 0; l < src_lanes; ++l) s += A.f64[l];
          D.f64[0] = s;
          break;
        }
        case ScalarType::kI32: {
          std::int32_t s = 0;
          for (int l = 0; l < src_lanes; ++l) s += A.i32[l];
          D.i32[0] = s;
          break;
        }
        case ScalarType::kI64: {
          std::int64_t s = 0;
          for (int l = 0; l < src_lanes; ++l) s += A.i64[l];
          D.i64[0] = s;
          break;
        }
      }
      break;
    }
    case Opcode::kLoad: {
      const Slot& slot = slots_[in.slot];
      const std::int64_t elem = static_cast<std::int64_t>(A.i32[0]) + in.imm;
      const std::uint64_t off = static_cast<std::uint64_t>(elem) * slot.elem_bytes;
      if (elem < 0 || off + dec.access_bytes > slot.size_bytes) {
        return OutOfRangeError("load out of bounds in kernel '" + p_->name +
                               "' (element " + std::to_string(elem) + ")");
      }
      std::memcpy(D.raw, slot.host + off, dec.access_bytes);
      sink->OnAccess(slot.sim_addr + off, dec.access_bytes, false);
      ++out->loads;
      out->load_bytes += dec.access_bytes;
      break;
    }
    case Opcode::kStore: {
      const Slot& slot = slots_[in.slot];
      const std::int64_t elem = static_cast<std::int64_t>(B.i32[0]) + in.imm;
      const std::uint64_t off = static_cast<std::uint64_t>(elem) * slot.elem_bytes;
      if (elem < 0 || off + dec.access_bytes > slot.size_bytes) {
        return OutOfRangeError("store out of bounds in kernel '" + p_->name +
                               "' (element " + std::to_string(elem) + ")");
      }
      std::memcpy(slot.host + off, A.raw, dec.access_bytes);
      sink->OnAccess(slot.sim_addr + off, dec.access_bytes, true);
      ++out->stores;
      out->store_bytes += dec.access_bytes;
      break;
    }
    case Opcode::kAtomicAddI32: {
      const Slot& slot = slots_[in.slot];
      const std::int64_t elem = static_cast<std::int64_t>(B.i32[0]) + in.imm;
      const std::uint64_t off = static_cast<std::uint64_t>(elem) * slot.elem_bytes;
      if (elem < 0 || off + 4 > slot.size_bytes) {
        return OutOfRangeError("atomic out of bounds in kernel '" + p_->name +
                               "'");
      }
      // Real atomic RMW: work-groups may execute on concurrent host
      // threads under the parallel engine, and integer addition is
      // commutative, so the final memory image is bit-identical for every
      // interleaving. Alignment holds because bindings are element-aligned.
      std::atomic_ref<std::int32_t>(
          *reinterpret_cast<std::int32_t*>(slot.host + off))
          .fetch_add(A.i32[0], std::memory_order_relaxed);
      sink->OnAtomic(slot.sim_addr + off, 4);
      ++out->atomics;
      break;
    }
    case Opcode::kBarrier:
      // Only reachable on the no-barrier fast path if the program lied;
      // RunToBarrier intercepts barriers before Step on the barrier path.
      return InternalError("barrier reached outside phased execution");
    case Opcode::kLoopBegin: {
      D.i32[0] = A.i32[0];
      if (D.i32[0] >= B.i32[0]) next = in.match + 1;
      break;
    }
    case Opcode::kLoopEnd: {
      const Instr& begin = p_->code[in.match];
      RegValue& var = regs[begin.dst];
      var.i32[0] += static_cast<std::int32_t>(begin.imm);
      if (var.i32[0] < regs[begin.b].i32[0]) next = in.match + 1;
      break;
    }
    case Opcode::kIfBegin:
      if (A.i32[0] == 0) next = in.match + 1;
      break;
    case Opcode::kElse:
      next = in.match;  // jump to the matching endif (fall past it)
      break;
    case Opcode::kIfEnd:
      break;
    case Opcode::kNumOpcodes:
      return InternalError("invalid opcode");
  }
  *pc = next;
  return Status::Ok();
}

void HostTimeSinkTick(HostTimeSink* s, const Program& program,
                      std::uint32_t pc) {
  s->countdown = s->period == 0 ? 1 : s->period;
  const std::uint64_t now = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  ++s->samples;
  if (s->last_pc >= 0) {
    // The window [last tick, now] is attributed to the instruction that
    // was live at the previous tick — standard sampling estimator, exact
    // when period == 1 (every step both opens and closes its own window).
    const std::uint64_t delta = now - s->last_ns;
    if (s->op_ns != nullptr) {
      const Opcode op = program.code[static_cast<std::size_t>(s->last_pc)].op;
      s->op_ns[static_cast<std::size_t>(op)] += delta;
    }
    if (s->block_ns != nullptr && s->block_of_pc != nullptr) {
      s->block_ns[s->block_of_pc[static_cast<std::size_t>(s->last_pc)]] +=
          delta;
    }
    s->steps += s->countdown;
  }
  s->last_pc = static_cast<std::int32_t>(pc);
  s->last_ns = now;
}

std::vector<BlockSpan> BasicBlocks(const Program& program) {
  const auto is_control = [](Opcode op) {
    switch (op) {
      case Opcode::kBarrier:
      case Opcode::kLoopBegin:
      case Opcode::kLoopEnd:
      case Opcode::kIfBegin:
      case Opcode::kElse:
      case Opcode::kIfEnd:
        return true;
      default:
        return false;
    }
  };
  std::vector<BlockSpan> blocks;
  const std::uint32_t n = static_cast<std::uint32_t>(program.code.size());
  std::uint32_t i = 0;
  while (i < n) {
    if (is_control(program.code[i].op)) {
      blocks.push_back({i, i + 1});
      ++i;
      continue;
    }
    std::uint32_t end = i + 1;
    while (end < n && !is_control(program.code[end].op)) ++end;
    blocks.push_back({i, end});
    i = end;
  }
  return blocks;
}

#undef MALI_BIN_ALL_TYPES
#undef MALI_CMP_ALL_TYPES
#undef MALI_UN_FLOAT

}  // namespace malisim::kir
