// KIR interpreter.
//
// Executes a kernel functionally (real data, full OpenCL NDRange semantics
// including work-group barriers) while streaming simulated memory addresses
// into a MemorySink and tallying executed operations into an OpHistogram.
// Device models wrap it: Mali runs whole work-groups per shader core, the
// A15 model runs contiguous slices of the index space per CPU core.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "kir/exec_types.h"
#include "kir/program.h"

namespace malisim::kir {

/// Host-wall-time attribution sink for the self-profiler (obs::HostProf).
/// Same layering idiom as the opcode tally: a POD of raw pointers so kir
/// stays free of obs types, null by default so the hot loop pays one
/// perfectly predicted branch. The executor ticks a countdown every Step;
/// when it hits zero it reads the steady clock once and attributes the
/// whole window since the previous tick to the opcode / basic block that
/// was executing at the *previous* tick (classic sampling-profiler
/// semantics; exact when period == 1). Nanosecond sums are commutative,
/// so parallel engines may hand each worker a private sink and merge.
struct HostTimeSink {
  std::uint64_t* op_ns = nullptr;     // kNumOpcodeValues slots, += window ns
  std::uint64_t* block_ns = nullptr;  // one slot per basic block (optional)
  const std::uint16_t* block_of_pc = nullptr;  // pc -> block index map
  std::uint32_t period = 256;  // steps per clock read; 1 = exact tally
  std::uint32_t countdown = 1;  // steps until next tick (primed at 1)
  std::uint64_t last_ns = 0;    // steady-clock ns at the previous tick
  std::int32_t last_pc = -1;    // pc captured at the previous tick
  std::uint64_t samples = 0;    // clock reads taken (self-cost estimate)
  std::uint64_t steps = 0;      // steps covered by attributed windows
};

/// One maximal straight-line span of instructions: [begin, end). Control
/// opcodes (barrier, loop/if bookkeeping) are singleton blocks; everything
/// between two control points is one block. Pure function of the program,
/// so profilers and future trace compilers agree on block identity.
struct BlockSpan {
  std::uint32_t begin = 0;
  std::uint32_t end = 0;  // exclusive
};

std::vector<BlockSpan> BasicBlocks(const Program& program);

class Executor {
 public:
  /// Validates geometry and bindings against the program's declarations.
  /// The program must outlive the executor and must be finalized.
  static StatusOr<Executor> Create(const Program* program, LaunchConfig config,
                                   Bindings bindings);

  /// Executes one work-group identified by its group coordinates.
  /// Results are *merged* into `out` (callers aggregate across groups).
  Status RunGroup(const std::array<std::uint64_t, 3>& group_id,
                  MemorySink* sink, WorkGroupRun* out);

  /// Executes every work-group in row-major group order.
  Status RunAllGroups(MemorySink* sink, WorkGroupRun* out);

  const LaunchConfig& config() const { return config_; }

  /// Optional per-opcode dynamic-count tally: when set, every executed
  /// instruction increments `tally[opcode]`. `tally` must point at
  /// kNumOpcodeValues zero-initialized slots and outlive the executor.
  /// Raw pointer (not an obs type) so kir stays free of higher layers;
  /// integer tallies are commutative, so parallel engines can give each
  /// worker a private tally and merge in any order without affecting
  /// determinism. Null (the default) keeps the hot loop branch-free in
  /// practice (perfectly predicted null check).
  void set_opcode_tally(std::uint64_t* tally) { opcode_tally_ = tally; }

  /// Optional host-time sampling sink (see HostTimeSink above). The sink
  /// and every array it points at must outlive the executor. Null (the
  /// default) keeps the hot loop cost at one predicted branch.
  void set_host_time(HostTimeSink* sink) { host_time_ = sink; }

 private:
  struct Slot {
    std::byte* host = nullptr;
    std::uint64_t sim_addr = 0;
    std::uint64_t size_bytes = 0;
    std::uint32_t elem_bytes = 0;
  };

  /// Pre-decoded per-instruction execution metadata.
  struct Decoded {
    int hist_idx = 0;
    std::uint8_t lanes = 1;
    std::uint32_t access_bytes = 0;  // lanes * elem bytes for memory ops
  };

  struct ThreadCtx {
    std::int32_t global_id[3];
    std::int32_t local_id[3];
    std::int32_t group_id[3];
  };

  enum class StopReason { kDone, kBarrier };

  Executor(const Program* program, LaunchConfig config, Bindings bindings);

  Status RunStraight(const ThreadCtx& ctx, RegValue* regs, MemorySink* sink,
                     WorkGroupRun* out);
  /// Runs from *pc until completion or the next barrier.
  StatusOr<StopReason> RunToBarrier(const ThreadCtx& ctx, RegValue* regs,
                                    std::uint32_t* pc, MemorySink* sink,
                                    WorkGroupRun* out);
  /// Executes the single instruction at pc; advances pc. Returns non-OK on
  /// runtime faults (out-of-bounds access, division by zero on integers).
  Status Step(const ThreadCtx& ctx, RegValue* regs, std::uint32_t* pc,
              MemorySink* sink, WorkGroupRun* out);
  /// Cold path of the host-time sampler: reads the clock, attributes the
  /// elapsed window to the op/block at the previous tick, re-arms the
  /// countdown. Out of line so Step's fast path stays small.
  void HostTimeTick(std::uint32_t pc);

  const Program* p_;
  // Incremented once per executed instruction; RunGroup snapshots it around
  // each work-item to derive per-item weights for imbalance accounting.
  std::uint64_t steps_executed_ = 0;
  LaunchConfig config_;
  Bindings bindings_;
  std::vector<Slot> slots_;
  std::vector<Decoded> decoded_;
  std::uint32_t num_regs_ = 0;
  // Register arena reused across work-groups (wg_size * num_regs for the
  // barrier path, num_regs otherwise).
  std::vector<RegValue> reg_arena_;
  std::uint64_t* opcode_tally_ = nullptr;  // see set_opcode_tally
  HostTimeSink* host_time_ = nullptr;      // see set_host_time
};

/// Convenience for tests and examples: run the whole NDRange with no memory
/// sink, returning the aggregate operation counts.
StatusOr<WorkGroupRun> RunProgram(const Program& program, LaunchConfig config,
                                  Bindings bindings);

/// Like RunProgram but farms contiguous work-group chunks across `threads`
/// pool workers, each with a private executor (and private __local backing
/// when the program declares locals), merging counts in canonical chunk
/// order. For well-formed kernels the result is bit-identical to
/// RunProgram; the fuzz suite exercises exactly that contract.
StatusOr<WorkGroupRun> RunProgramParallel(const Program& program,
                                          LaunchConfig config,
                                          const Bindings& bindings,
                                          int threads);

}  // namespace malisim::kir
