// KIR execution engines.
//
// Two engines run a kernel functionally (real data, full OpenCL NDRange
// semantics including work-group barriers) while streaming simulated memory
// addresses into a MemorySink and tallying executed operations into an
// OpHistogram:
//
//  - InterpExecutor: the reference tree-walk over kir::Instr (this file).
//  - vm::VmExecutor: the compile-once bytecode VM (vm/vm.h), bit-identical
//    to the interpreter by construction and by the `ctest -L kirvm`
//    differential suite.
//
// Device models wrap the Executor facade below, which selects an engine via
// SimOptions::kir_exec (--kir-exec=, bytecode by default): Mali runs whole
// work-groups per shader core, the A15 model runs contiguous slices of the
// index space per CPU core.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/sim_options.h"
#include "common/status.h"
#include "kir/exec_types.h"
#include "kir/program.h"

namespace malisim::kir {

/// Host-wall-time attribution sink for the self-profiler (obs::HostProf).
/// Same layering idiom as the opcode tally: a POD of raw pointers so kir
/// stays free of obs types, null by default so the hot loop pays one
/// perfectly predicted branch. The executor ticks a countdown every Step;
/// when it hits zero it reads the steady clock once and attributes the
/// whole window since the previous tick to the opcode / basic block that
/// was executing at the *previous* tick (classic sampling-profiler
/// semantics; exact when period == 1). Nanosecond sums are commutative,
/// so parallel engines may hand each worker a private sink and merge.
struct HostTimeSink {
  std::uint64_t* op_ns = nullptr;     // kNumOpcodeValues slots, += window ns
  std::uint64_t* block_ns = nullptr;  // one slot per basic block (optional)
  const std::uint16_t* block_of_pc = nullptr;  // pc -> block index map
  std::uint32_t period = 256;  // steps per clock read; 1 = exact tally
  std::uint32_t countdown = 1;  // steps until next tick (primed at 1)
  std::uint64_t last_ns = 0;    // steady-clock ns at the previous tick
  std::int32_t last_pc = -1;    // pc captured at the previous tick
  std::uint64_t samples = 0;    // clock reads taken (self-cost estimate)
  std::uint64_t steps = 0;      // steps covered by attributed windows
};

/// Cold path of the host-time sampler, shared by both engines: reads the
/// clock, attributes the elapsed window to the *source* op/block live at
/// the previous tick, re-arms the countdown. `pc` is a source-program pc
/// (the bytecode engine maps fused instructions back through its side
/// table), so attribution is engine-independent.
void HostTimeSinkTick(HostTimeSink* s, const Program& program,
                      std::uint32_t pc);

/// One maximal straight-line span of instructions: [begin, end). Control
/// opcodes (barrier, loop/if bookkeeping) are singleton blocks; everything
/// between two control points is one block. Pure function of the program,
/// so profilers and the bytecode compiler agree on block identity.
struct BlockSpan {
  std::uint32_t begin = 0;
  std::uint32_t end = 0;  // exclusive
};

std::vector<BlockSpan> BasicBlocks(const Program& program);

/// Validates launch geometry and bindings against the program's
/// declarations — the shared front half of both engines' Create().
Status ValidateLaunch(const Program& program, const LaunchConfig& config,
                      const Bindings& bindings);

class InterpExecutor {
 public:
  /// Validates geometry and bindings against the program's declarations.
  /// The program must outlive the executor and must be finalized.
  static StatusOr<InterpExecutor> Create(const Program* program,
                                         LaunchConfig config,
                                         Bindings bindings);

  /// Executes one work-group identified by its group coordinates.
  /// Results are *merged* into `out` (callers aggregate across groups).
  Status RunGroup(const std::array<std::uint64_t, 3>& group_id,
                  MemorySink* sink, WorkGroupRun* out);

  /// Executes every work-group in row-major group order.
  Status RunAllGroups(MemorySink* sink, WorkGroupRun* out);

  const LaunchConfig& config() const { return config_; }

  /// Optional per-opcode dynamic-count tally: when set, every executed
  /// instruction increments `tally[opcode]`. `tally` must point at
  /// kNumOpcodeValues zero-initialized slots and outlive the executor.
  /// Raw pointer (not an obs type) so kir stays free of higher layers;
  /// integer tallies are commutative, so parallel engines can give each
  /// worker a private tally and merge in any order without affecting
  /// determinism. Null (the default) keeps the hot loop branch-free in
  /// practice (perfectly predicted null check).
  void set_opcode_tally(std::uint64_t* tally) { opcode_tally_ = tally; }

  /// Optional host-time sampling sink (see HostTimeSink above). The sink
  /// and every array it points at must outlive the executor. Null (the
  /// default) keeps the hot loop cost at one predicted branch.
  void set_host_time(HostTimeSink* sink) { host_time_ = sink; }

 private:
  struct Slot {
    std::byte* host = nullptr;
    std::uint64_t sim_addr = 0;
    std::uint64_t size_bytes = 0;
    std::uint32_t elem_bytes = 0;
  };

  /// Pre-decoded per-instruction execution metadata.
  struct Decoded {
    int hist_idx = 0;
    std::uint8_t lanes = 1;
    std::uint32_t access_bytes = 0;  // lanes * elem bytes for memory ops
  };

  struct ThreadCtx {
    std::int32_t global_id[3];
    std::int32_t local_id[3];
    std::int32_t group_id[3];
  };

  enum class StopReason { kDone, kBarrier };

  InterpExecutor(const Program* program, LaunchConfig config,
                 Bindings bindings);

  Status RunStraight(const ThreadCtx& ctx, RegValue* regs, MemorySink* sink,
                     WorkGroupRun* out);
  /// Runs from *pc until completion or the next barrier.
  StatusOr<StopReason> RunToBarrier(const ThreadCtx& ctx, RegValue* regs,
                                    std::uint32_t* pc, MemorySink* sink,
                                    WorkGroupRun* out);
  /// Executes the single instruction at pc; advances pc. Returns non-OK on
  /// runtime faults (out-of-bounds access, division by zero on integers).
  Status Step(const ThreadCtx& ctx, RegValue* regs, std::uint32_t* pc,
              MemorySink* sink, WorkGroupRun* out);

  const Program* p_;
  // Incremented once per executed instruction; RunGroup snapshots it around
  // each work-item to derive per-item weights for imbalance accounting.
  std::uint64_t steps_executed_ = 0;
  LaunchConfig config_;
  Bindings bindings_;
  std::vector<Slot> slots_;
  std::vector<Decoded> decoded_;
  std::uint32_t num_regs_ = 0;
  // Register arena reused across work-groups (wg_size * num_regs for the
  // barrier path, num_regs otherwise).
  std::vector<RegValue> reg_arena_;
  // Barrier-path scratch, hoisted to construction so RunGroup stops paying
  // three allocations per work-group.
  std::vector<std::uint32_t> barrier_pcs_;
  std::vector<ThreadCtx> barrier_ctxs_;
  std::vector<std::uint64_t> barrier_weights_;
  std::uint64_t* opcode_tally_ = nullptr;  // see set_opcode_tally
  HostTimeSink* host_time_ = nullptr;      // see set_host_time
};

namespace vm {
struct CompiledProgram;
class VmExecutor;
}  // namespace vm

/// Engine-selecting facade the device models drive. Same surface as the
/// engines behind it; `engine` picks the implementation (bytecode by
/// default, per SimOptions::kir_exec / --kir-exec=). For the bytecode
/// engine, pass a pre-compiled `bytecode` (e.g. from mali::CompiledKernel /
/// mali::CompileCache) to share one compilation across executors; when
/// null, Create compiles the program on the spot.
class Executor {
 public:
  static StatusOr<Executor> Create(
      const Program* program, LaunchConfig config, Bindings bindings,
      KirExec engine = KirExec::kBytecode,
      std::shared_ptr<const vm::CompiledProgram> bytecode = nullptr);

  Executor(Executor&&) noexcept;
  Executor& operator=(Executor&&) noexcept;
  ~Executor();

  Status RunGroup(const std::array<std::uint64_t, 3>& group_id,
                  MemorySink* sink, WorkGroupRun* out);
  Status RunAllGroups(MemorySink* sink, WorkGroupRun* out);
  const LaunchConfig& config() const;
  void set_opcode_tally(std::uint64_t* tally);
  void set_host_time(HostTimeSink* sink);

 private:
  Executor();

  // Exactly one is non-null. unique_ptrs (not variants) so this header
  // needs only the forward declarations above.
  std::unique_ptr<InterpExecutor> interp_;
  std::unique_ptr<vm::VmExecutor> bytecode_;
};

/// Convenience for tests and examples: run the whole NDRange with no memory
/// sink, returning the aggregate operation counts.
StatusOr<WorkGroupRun> RunProgram(const Program& program, LaunchConfig config,
                                  Bindings bindings,
                                  KirExec engine = KirExec::kBytecode);

/// Like RunProgram but farms contiguous work-group chunks across `threads`
/// pool workers, each with a private executor (and private __local backing
/// when the program declares locals), merging counts in canonical chunk
/// order. For well-formed kernels the result is bit-identical to
/// RunProgram; the fuzz suite exercises exactly that contract. Under the
/// bytecode engine the program is compiled once and shared by every chunk.
StatusOr<WorkGroupRun> RunProgramParallel(const Program& program,
                                          LaunchConfig config,
                                          const Bindings& bindings,
                                          int threads,
                                          KirExec engine = KirExec::kBytecode);

}  // namespace malisim::kir
