// Umbrella header: the public surface of the malisim library.
//
// malisim reproduces "Energy Efficient HPC on Embedded SoCs: Optimization
// Techniques for Mali GPU" (IPDPS 2014) as a simulation. The layers, bottom
// to top:
//
//   common/   — error handling, PRNG, statistics, tables
//   sim/      — caches and DRAM
//   kir/      — the kernel IR: builder DSL, passes, interpreter
//   cpu/      — the Cortex-A15 device model (Serial / OpenMP)
//   mali/     — the Mali-T604 device model and kernel compiler
//   obs/      — observability: counters, power timeline, Perfetto export
//   ocl/      — tinycl, the OpenCL-shaped host runtime
//   power/    — the Exynos 5250 board power model and virtual meter
//   hpc/      — the paper's nine benchmarks in four versions
//   harness/  — experiment runner and figure reproduction
//
// Typical entry points:
//   * write and run a kernel:       kir::KernelBuilder + ocl::Context
//   * run a paper benchmark:        hpc::CreateBenchmark(...)->Run(...)
//   * reproduce a paper figure:     harness::ExperimentRunner + Fig2Speedup
//   * profile a run:                obs::Recorder + obs::WritePerfettoTrace
//                                   (or the malisim-prof CLI in tools/)
#pragma once

#include "common/aligned_buffer.h"
#include "common/log.h"
#include "common/prng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/table.h"
#include "common/units.h"
#include "cpu/a15_device.h"
#include "cpu/a15_params.h"
#include "harness/experiment.h"
#include "harness/figures.h"
#include "hpc/benchmark.h"
#include "hpc/problem_sizes.h"
#include "kir/builder.h"
#include "kir/exec_types.h"
#include "kir/interp.h"
#include "kir/passes.h"
#include "kir/program.h"
#include "mali/compiler.h"
#include "mali/t604_device.h"
#include "mali/t604_params.h"
#include "obs/counters.h"
#include "obs/export.h"
#include "obs/obs_options.h"
#include "obs/power_sampler.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "ocl/cl_error.h"
#include "ocl/runtime.h"
#include "power/power_meter.h"
#include "power/power_model.h"
#include "power/profile.h"
#include "sim/cache.h"
#include "sim/dram.h"
#include "sim/memory_system.h"
