#include "harness/experiment.h"

#include "common/log.h"
#include "common/stats.h"

namespace malisim::harness {

namespace {

double Ratio(double num, double den) {
  if (num <= 0.0 || den <= 0.0) return 0.0;
  return num / den;
}

}  // namespace

double BenchmarkResults::SpeedupVsSerial(hpc::Variant v) const {
  const VariantResult& serial = Get(hpc::Variant::kSerial);
  const VariantResult& other = Get(v);
  if (!serial.available || !other.available) return 0.0;
  return Ratio(serial.seconds, other.seconds);
}

double BenchmarkResults::PowerVsSerial(hpc::Variant v) const {
  const VariantResult& serial = Get(hpc::Variant::kSerial);
  const VariantResult& other = Get(v);
  if (!serial.available || !other.available) return 0.0;
  return Ratio(other.power_mean_w, serial.power_mean_w);
}

double BenchmarkResults::EnergyVsSerial(hpc::Variant v) const {
  const VariantResult& serial = Get(hpc::Variant::kSerial);
  const VariantResult& other = Get(v);
  if (!serial.available || !other.available) return 0.0;
  return Ratio(other.energy_j, serial.energy_j);
}

ExperimentRunner::ExperimentRunner(const ExperimentConfig& config)
    : config_(config),
      power_model_(config.power),
      meter_(config.meter, config.seed ^ 0x57230ULL) {}

StatusOr<BenchmarkResults> ExperimentRunner::RunBenchmark(
    const std::string& name) {
  std::unique_ptr<hpc::Benchmark> bench =
      hpc::CreateBenchmark(name, config_.sizes);
  if (bench == nullptr) {
    return NotFoundError("unknown benchmark '" + name + "'");
  }
  MALI_RETURN_IF_ERROR(bench->Setup(config_.fp64, config_.seed));

  BenchmarkResults results;
  results.name = name;

  // One board for all versions: single CPU and GPU model instances.
  cpu::CortexA15Device cpu_device;
  ocl::Context gpu_context;
  hpc::Devices devices{&cpu_device, &gpu_context};

  for (hpc::Variant v : hpc::kAllVariants) {
    VariantResult& out = results.variants[static_cast<int>(v)];
    MALI_LOG_INFO("running %s / %s (%s)", name.c_str(),
                  std::string(hpc::VariantName(v)).c_str(),
                  config_.fp64 ? "fp64" : "fp32");
    StatusOr<hpc::RunOutcome> run = bench->Run(v, devices);
    if (!run.ok()) {
      // Unavailable results (the paper's missing bars): build failures and
      // unrecovered resource exhaustion. Anything else is a harness bug.
      out.available = false;
      out.unavailable_reason = run.status().ToString();
      MALI_LOG_WARN("%s / %s unavailable: %s", name.c_str(),
                    std::string(hpc::VariantName(v)).c_str(),
                    out.unavailable_reason.c_str());
      continue;
    }
    out.available = true;
    out.seconds = run->seconds;
    out.validated = run->validated;
    out.max_rel_error = run->max_rel_error;
    out.note = run->note;
    out.stats = std::move(run->stats);

    // Power: the model gives the true average board power over the region;
    // the meter samples it for `repetitions` windows, per §IV-D.
    const double true_watts = power_model_.AveragePower(run->profile);
    RunningStat rep_means;
    for (int rep = 0; rep < config_.repetitions; ++rep) {
      const power::PowerMeter::Measurement m =
          meter_.Measure(true_watts, config_.meter_window_sec);
      rep_means.Add(m.mean_watts);
    }
    out.power_mean_w = rep_means.mean();
    out.power_stddev_w = rep_means.stddev();
    out.energy_j = out.power_mean_w * out.seconds;
    out.stats.Set("power.true_watts", true_watts);
    out.stats.Set("power.cpu_watts", power_model_.CpuPower(run->profile));
    out.stats.Set("power.gpu_watts", power_model_.GpuPower(run->profile));
    out.stats.Set("power.dram_watts", power_model_.DramPower(run->profile));
  }
  return results;
}

StatusOr<std::vector<BenchmarkResults>> ExperimentRunner::RunAll() {
  std::vector<BenchmarkResults> all;
  for (const std::string& name : hpc::RegisteredBenchmarks()) {
    StatusOr<BenchmarkResults> results = RunBenchmark(name);
    if (!results.ok()) return results.status();
    all.push_back(*std::move(results));
  }
  return all;
}

}  // namespace malisim::harness
