#include "harness/experiment.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <span>
#include <string_view>

#include "common/log.h"
#include "common/sim_options.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "fault/injector.h"
#include "fault/retry.h"
#include "obs/recorder.h"

namespace malisim::harness {

namespace {

double Ratio(double num, double den) {
  if (num <= 0.0 || den <= 0.0) return 0.0;
  return num / den;
}

/// Meter RNG stream key for one (benchmark, variant) cell: FNV-1a over the
/// name and variant, mixed with the experiment seed. Keying streams per
/// cell (instead of consuming one stream sequentially across the run) makes
/// every cell's measurement independent of execution order, which is what
/// lets RunAll farm benchmarks across threads without changing a digit.
std::uint64_t MeterSeed(std::uint64_t base_seed, std::string_view name,
                        hpc::Variant variant) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t byte) {
    h ^= byte;
    h *= 0x100000001b3ULL;
  };
  for (const char c : name) mix(static_cast<unsigned char>(c));
  mix(0xffULL);  // separator
  mix(static_cast<std::uint64_t>(variant));
  return h ^ base_seed ^ 0x57230ULL;
}

/// Fault-plan seed for one (benchmark, precision) cell, mixed like
/// MeterSeed so every cell's fault schedule is independent of execution
/// order and host-thread count.
std::uint64_t CellFaultSeed(std::uint64_t base_seed, std::string_view name,
                            bool fp64) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t byte) {
    h ^= byte;
    h *= 0x100000001b3ULL;
  };
  for (const char c : name) mix(static_cast<unsigned char>(c));
  mix(0xffULL);  // separator
  mix(fp64 ? 1 : 0);
  return h ^ base_seed ^ 0xfa017ULL;
}

}  // namespace

double BenchmarkResults::SpeedupVsSerial(hpc::Variant v) const {
  const VariantResult& serial = Get(hpc::Variant::kSerial);
  const VariantResult& other = Get(v);
  if (!serial.available || !other.available) return 0.0;
  return Ratio(serial.seconds, other.seconds);
}

double BenchmarkResults::PowerVsSerial(hpc::Variant v) const {
  const VariantResult& serial = Get(hpc::Variant::kSerial);
  const VariantResult& other = Get(v);
  if (!serial.available || !other.available) return 0.0;
  return Ratio(other.power_mean_w, serial.power_mean_w);
}

double BenchmarkResults::EnergyVsSerial(hpc::Variant v) const {
  const VariantResult& serial = Get(hpc::Variant::kSerial);
  const VariantResult& other = Get(v);
  if (!serial.available || !other.available) return 0.0;
  return Ratio(other.energy_j, serial.energy_j);
}

ExperimentRunner::ExperimentRunner(const ExperimentConfig& config)
    : config_(config), power_model_(config.power) {}

StatusOr<BenchmarkResults> ExperimentRunner::RunBenchmark(
    const std::string& name) {
  return RunBenchmarkImpl(name, config_.sim_threads);
}

StatusOr<BenchmarkResults> ExperimentRunner::RunBenchmarkImpl(
    const std::string& name, int device_threads) {
  obs::HostProf* host_prof =
      config_.recorder != nullptr ? config_.recorder->host_prof() : nullptr;
  std::unique_ptr<hpc::Benchmark> bench =
      hpc::CreateBenchmark(name, config_.sizes);
  if (bench == nullptr) {
    return NotFoundError("unknown benchmark '" + name + "'");
  }
  {
    obs::HostProf::PhaseSpan setup_span(host_prof, obs::HostPhase::kSetup);
    MALI_RETURN_IF_ERROR(bench->Setup(config_.fp64, config_.seed));
  }

  BenchmarkResults results;
  results.name = name;

  // One board for all versions: single CPU and GPU model instances. The
  // OpenCL context dispatches through the configured sim::Device backend
  // (Context(kMali) is identical to the historical default-constructed
  // context).
  cpu::CortexA15Device cpu_device;
  ocl::Context gpu_context(config_.device);
  gpu_context.set_hetero_ratio(config_.hetero_ratio);
  SimOptions sim_options;
  sim_options.threads = std::max(1, device_threads);
  sim_options.fault = config_.fault;
  sim_options.kir_exec = config_.kir_exec;
  cpu_device.set_sim_options(sim_options);
  gpu_context.set_sim_options(sim_options);
  if (config_.recorder != nullptr) {
    cpu_device.set_recorder(config_.recorder);
    gpu_context.set_recorder(config_.recorder);
  }
  hpc::Devices devices{&cpu_device, &gpu_context};

  // The Hetero column's context: the gpu context itself when it already is
  // the hetero backend, otherwise a second context stood up on demand.
  std::unique_ptr<ocl::Context> hetero_context;
  if (config_.device == sim::BackendKind::kHetero) {
    devices.hetero = &gpu_context;
  } else if (config_.include_hetero) {
    hetero_context =
        std::make_unique<ocl::Context>(sim::BackendKind::kHetero);
    hetero_context->set_hetero_ratio(config_.hetero_ratio);
    hetero_context->set_sim_options(sim_options);
    if (config_.recorder != nullptr) {
      hetero_context->set_recorder(config_.recorder);
    }
    devices.hetero = hetero_context.get();
  }

  // One fault injector per (benchmark, precision) cell, with decision
  // streams keyed by the cell so RunAll can farm cells across threads
  // without changing any schedule. Attaching it with all-zero rates is
  // behaviorally identical to no injector (the quirks it carries fire on
  // the same structural conditions the hard-coded paths used).
  StatusOr<fault::FaultPlan> plan_or =
      fault::FaultPlan::FromOptions(config_.fault);
  if (!plan_or.ok()) return plan_or.status();
  fault::FaultPlan plan = *std::move(plan_or);
  plan.seed = CellFaultSeed(plan.seed, name, config_.fp64);
  fault::FaultInjector injector(plan);
  if (config_.recorder != nullptr) {
    obs::Recorder* recorder = config_.recorder;
    injector.set_sink([recorder, name](const fault::FaultEvent& e) {
      recorder->AddFault({e.site, name + "/" + e.key, e.action, e.detail});
    });
  }
  gpu_context.set_fault_injector(&injector);
  if (hetero_context != nullptr) {
    hetero_context->set_fault_injector(&injector);
  }

  const std::span<const hpc::Variant> variant_list =
      devices.hetero != nullptr
          ? std::span<const hpc::Variant>(hpc::kAllVariantsWithHetero)
          : std::span<const hpc::Variant>(hpc::kAllVariants);
  for (hpc::Variant v : variant_list) {
    VariantResult& out = results.variants[static_cast<int>(v)];
    MALI_LOG_INFO("running %s / %s (%s)", name.c_str(),
                  std::string(hpc::VariantName(v)).c_str(),
                  config_.fp64 ? "fp64" : "fp32");
    const std::string cell = name + "/" + std::string(hpc::VariantName(v));
    // Autotuned routing: a tuned config for this benchmark replaces the
    // fixed paper kernel on the OpenCL-opt column only.
    const auto tuned_it = config_.tuned_configs.find(name);
    const sim::TuningConfig* tuned =
        tuned_it != config_.tuned_configs.end() ? &tuned_it->second : nullptr;
    auto run_variant = [&](hpc::Variant variant) {
      obs::HostProf::PhaseSpan variant_span(host_prof,
                                            obs::HostPhase::kVariant);
      fault::RetryStats rs;
      StatusOr<hpc::RunOutcome> result = fault::RetryWithBackoff(
          plan.retry,
          [&] {
            if (tuned != nullptr && variant == hpc::Variant::kOpenCLOpt) {
              return bench->RunTuned(*tuned, devices);
            }
            return bench->RunVariant(variant, devices);
          },
          &rs);
      if (rs.retries > 0) {
        injector.RecordAction("retry", cell, "retried",
                              std::to_string(rs.retries) +
                                  " transient harness-level retr" +
                                  (rs.retries == 1 ? "y" : "ies"));
      }
      return result;
    };

    StatusOr<hpc::RunOutcome> run = run_variant(v);
    std::string degrade_note;
    if (!run.ok() && config_.fault.ResilienceActive() &&
        fault::IsDegradable(run.status())) {
      // Harness rung of the degradation ladder: fall to progressively less
      // ambitious variants, positionally from the ladder table (so the
      // hetero rung degrades into the single-device ones). Gated on an
      // active fault config so the paper's missing bars (e.g. amcd FP64)
      // stay missing in golden runs.
      for (hpc::Variant fv : hpc::FallbackVariants(v)) {
        const std::string fv_name(hpc::VariantName(fv));
        injector.RecordAction("ladder", cell, "fell-back",
                              run.status().ToString() + " -> trying " +
                                  fv_name);
        StatusOr<hpc::RunOutcome> lower = run_variant(fv);
        if (lower.ok()) {
          out.degraded_to = fv_name;
          degrade_note = "degraded to " + fv_name + " after " +
                         run.status().ToString();
          run = std::move(lower);
          break;
        }
        run = std::move(lower);
        if (!fault::IsDegradable(run.status())) break;
      }
    }
    if (!run.ok()) {
      // Unavailable results (the paper's missing bars): build failures and
      // unrecovered resource exhaustion. Anything else is a harness bug.
      out.available = false;
      out.unavailable_reason = run.status().ToString();
      MALI_LOG_WARN("%s / %s unavailable: %s", name.c_str(),
                    std::string(hpc::VariantName(v)).c_str(),
                    out.unavailable_reason.c_str());
      continue;
    }
    out.available = true;
    out.seconds = run->seconds;
    out.validated = run->validated;
    out.max_rel_error = run->max_rel_error;
    out.note = run->note;
    if (!degrade_note.empty()) {
      out.note = out.note.empty() ? degrade_note
                                  : degrade_note + "; " + out.note;
    }
    out.stats = std::move(run->stats);

    // Power: the model gives the true average board power over the region;
    // the meter samples it for `repetitions` windows, per §IV-D. The meter
    // RNG stream is private to this (benchmark, variant) cell.
    obs::HostProf::PhaseSpan power_span(host_prof,
                                        obs::HostPhase::kPowerAccounting);
    const double true_watts = power_model_.AveragePower(run->profile);
    power::PowerMeter meter(config_.meter, MeterSeed(config_.seed, name, v));
    meter.set_fault_injector(&injector);
    RunningStat rep_means;
    for (int rep = 0; rep < config_.repetitions; ++rep) {
      const power::PowerMeter::Measurement m =
          meter.Measure(true_watts, config_.meter_window_sec);
      if (m.samples == 0) {
        // Every sample in the window was dropped: a failed repetition.
        // Skip it so it cannot poison the mean/stddev; the figure tables
        // report the per-cell count.
        ++out.failed_repetitions;
        injector.RecordAction("meter", cell, "skipped-rep",
                              "repetition " + std::to_string(rep) +
                                  " lost all samples");
        continue;
      }
      rep_means.Add(m.mean_watts);
    }
    out.power_mean_w = rep_means.mean();
    out.power_stddev_w = rep_means.stddev();
    out.energy_j = out.power_mean_w * out.seconds;
    if (out.failed_repetitions > 0) {
      out.stats.Set("power.failed_reps",
                    static_cast<double>(out.failed_repetitions));
      if (out.failed_repetitions == config_.repetitions) {
        const std::string all_failed = "all power repetitions failed";
        out.note = out.note.empty() ? all_failed : out.note + "; " + all_failed;
      }
    }
    out.stats.Set("power.true_watts", true_watts);
    out.stats.Set("power.cpu_watts", power_model_.CpuPower(run->profile));
    out.stats.Set("power.gpu_watts", power_model_.GpuPower(run->profile));
    out.stats.Set("power.dram_watts", power_model_.DramPower(run->profile));

    if (config_.recorder != nullptr && config_.recorder->counters_enabled()) {
      config_.recorder->AddPowerSegment(
          {name + "/" + std::string(hpc::VariantName(v)),
           config_.meter_window_sec, run->profile});
    }
  }

  // Mirror each context's scheduled event graph into the recorder so the
  // Perfetto export can draw the causal schedule. Observability must never
  // fail a run, so a (structurally impossible) schedule error only warns.
  if (config_.recorder != nullptr) {
    Status graph_status = gpu_context.queue().RecordScheduledGraph(
        std::string(sim::BackendName(config_.device)));
    if (graph_status.ok() && hetero_context != nullptr) {
      graph_status = hetero_context->queue().RecordScheduledGraph("hetero");
    }
    if (!graph_status.ok()) {
      MALI_LOG_WARN("%s: event-graph record failed: %s", name.c_str(),
                    graph_status.ToString().c_str());
    }
  }
  return results;
}

StatusOr<std::vector<BenchmarkResults>> ExperimentRunner::RunAll() {
  const std::vector<std::string> names = hpc::RegisteredBenchmarks();
  if (config_.sim_threads <= 1 || names.size() <= 1) {
    std::vector<BenchmarkResults> all;
    for (const std::string& name : names) {
      StatusOr<BenchmarkResults> results = RunBenchmark(name);
      if (!results.ok()) return results.status();
      all.push_back(*std::move(results));
    }
    return all;
  }

  // Farm whole benchmarks across workers. Each slot runs with serial device
  // engines (no nested pools); per-cell meter seeding makes every slot's
  // numbers independent of which worker ran it and when.
  std::vector<std::optional<BenchmarkResults>> slots(names.size());
  std::vector<Status> statuses(names.size(), Status::Ok());
  {
    ThreadPool pool(std::min<int>(config_.sim_threads,
                                  static_cast<int>(names.size())));
    for (std::size_t i = 0; i < names.size(); ++i) {
      pool.Submit([this, &names, &slots, &statuses, i] {
        StatusOr<BenchmarkResults> results =
            RunBenchmarkImpl(names[i], /*device_threads=*/1);
        if (results.ok()) {
          slots[i] = *std::move(results);
        } else {
          statuses[i] = results.status();
        }
      });
    }
    pool.WaitIdle();
  }
  std::vector<BenchmarkResults> all;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (!statuses[i].ok()) return statuses[i];  // lowest-index failure
    all.push_back(*std::move(slots[i]));
  }
  return all;
}

}  // namespace malisim::harness
