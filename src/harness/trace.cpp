#include "harness/trace.h"

#include <cstdio>
#include <fstream>

#include "common/table.h"

namespace malisim::harness {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += ch;
    }
  }
  return out;
}

}  // namespace

void TraceBuilder::AddSpan(
    const std::string& name, const std::string& category, int tid,
    double duration_sec,
    std::vector<std::pair<std::string, std::string>> args) {
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.timestamp_us = cursor_us_;
  event.duration_us = duration_sec * 1e6;
  event.tid = tid;
  event.args = std::move(args);
  cursor_us_ += event.duration_us;
  events_.push_back(std::move(event));
}

void TraceBuilder::AddBenchmark(const BenchmarkResults& results) {
  for (hpc::Variant v : hpc::kAllVariants) {
    const VariantResult& r = results.Get(v);
    if (!r.available) continue;
    const bool on_gpu =
        v == hpc::Variant::kOpenCL || v == hpc::Variant::kOpenCLOpt;
    std::vector<std::pair<std::string, std::string>> args = {
        {"power_w", FormatDouble(r.power_mean_w, 3)},
        {"energy_mj", FormatDouble(r.energy_j * 1e3, 3)},
        {"validated", r.validated ? "true" : "false"},
    };
    if (!r.note.empty()) args.push_back({"note", r.note});
    AddSpan(results.name + " / " + std::string(hpc::VariantName(v)),
            on_gpu ? "mali-t604" : "cortex-a15", on_gpu ? 2 : 1, r.seconds,
            std::move(args));
  }
}

std::string TraceBuilder::ToJson() const {
  std::string out = "[\n";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    char head[256];
    std::snprintf(head, sizeof(head),
                  "{\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,"
                  "\"tid\":%d,",
                  e.timestamp_us, e.duration_us, e.pid, e.tid);
    out += head;
    out += "\"name\":\"" + JsonEscape(e.name) + "\",";
    out += "\"cat\":\"" + JsonEscape(e.category) + "\"";
    if (!e.args.empty()) {
      out += ",\"args\":{";
      for (std::size_t a = 0; a < e.args.size(); ++a) {
        if (a > 0) out += ",";
        out += "\"" + JsonEscape(e.args[a].first) + "\":\"" +
               JsonEscape(e.args[a].second) + "\"";
      }
      out += "}";
    }
    out += i + 1 < events_.size() ? "},\n" : "}\n";
  }
  out += "]\n";
  return out;
}

Status TraceBuilder::WriteTo(const std::string& path) const {
  std::ofstream file(path);
  if (!file) {
    return InvalidArgumentError("cannot open trace output '" + path + "'");
  }
  file << ToJson();
  return file.good() ? Status::Ok()
                     : InternalError("short write to '" + path + "'");
}

}  // namespace malisim::harness
