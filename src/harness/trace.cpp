#include "harness/trace.h"

#include "common/table.h"

namespace malisim::harness {

void TraceBuilder::AddBenchmark(const BenchmarkResults& results) {
  for (hpc::Variant v : hpc::kAllVariantsWithHetero) {
    const VariantResult& r = results.Get(v);
    if (!r.available) continue;
    const bool on_gpu =
        v == hpc::Variant::kOpenCL || v == hpc::Variant::kOpenCLOpt;
    const bool hetero = v == hpc::Variant::kHetero;
    std::vector<std::pair<std::string, std::string>> args = {
        {"power_w", FormatDouble(r.power_mean_w, 3)},
        {"energy_mj", FormatDouble(r.energy_j * 1e3, 3)},
        {"validated", r.validated ? "true" : "false"},
    };
    if (!r.note.empty()) args.push_back({"note", r.note});
    AddSpan(results.name + " / " + std::string(hpc::VariantName(v)),
            hetero ? "hetero" : (on_gpu ? "mali-t604" : "cortex-a15"),
            hetero ? 3 : (on_gpu ? 2 : 1), r.seconds, std::move(args));
  }
}

}  // namespace malisim::harness
