// Experiment runner: executes benchmark variants, applies the power model
// and the virtual WT230 meter, and collects per-variant results following
// the paper's methodology (§IV-D): constant problem size across versions,
// measurements over the parallel region only, 20 repetitions with mean and
// standard deviation (our timing model is deterministic; the repetitions
// exercise the meter's 0.1% accuracy noise, and the observed deviations are
// as negligible as the paper reports).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/sim_options.h"
#include "common/status.h"
#include "hpc/benchmark.h"
#include "hpc/problem_sizes.h"
#include "power/power_meter.h"
#include "power/power_model.h"
#include "sim/device.h"

namespace malisim::obs {
class Recorder;
}  // namespace malisim::obs

namespace malisim::harness {

struct ExperimentConfig {
  hpc::ProblemSizes sizes;
  bool fp64 = false;
  std::uint64_t seed = 42;
  /// Backend the OpenCL variants dispatch to: the Mali-T604 model
  /// (default), both A15 cores, or the heterogeneous co-execution backend
  /// splitting each NDRange across both. kMali reproduces the paper runs
  /// byte-for-byte.
  sim::BackendKind device = sim::BackendKind::kMali;
  /// GPU share per NDRange on the hetero backend: 0.0 = all-A15, 1.0 =
  /// all-Mali, negative = self-tuning seeded from modelled throughput.
  double hetero_ratio = -1.0;
  /// Adds the Hetero co-execution column next to the four paper versions
  /// even when `device` is a single-device backend (a second, hetero
  /// context is stood up for that column). With device == kHetero the
  /// column is always present.
  bool include_hetero = false;
  int repetitions = 20;             // paper §IV-D
  double meter_window_sec = 2.0;    // modelled steady-state window per rep
  /// Host threads for the simulation engine. 1 = serial reference engine;
  /// >1 runs work-groups concurrently (and RunAll farms whole benchmarks
  /// across workers). Results are bit-identical for any value — the meter
  /// RNG is keyed per (benchmark, variant) and the devices use
  /// deterministic record/replay.
  int sim_threads = 1;
  /// KIR execution engine handed to the device models (--kir-exec=).
  /// Engine choice never changes modelled numbers, only host-side speed.
  KirExec kir_exec = KirExec::kBytecode;
  power::PowerParams power;
  power::PowerMeterParams meter;
  /// Optional observability recorder. When attached it is wired into the
  /// device models and the OCL runtime for every benchmark, and the runner
  /// adds one power segment per available variant (the §IV-D steady-state
  /// meter window). Recording never changes any modelled second or watt —
  /// golden CSVs are bit-identical with and without it. Note RunAll with
  /// sim_threads > 1 records kernel/segment ORDER nondeterministically;
  /// run benchmarks serially when exporting traces.
  obs::Recorder* recorder = nullptr;
  /// Fault-injection and resilience knobs (DESIGN.md §8). The runner
  /// builds one FaultPlan per (benchmark, precision) cell, with the plan
  /// seed mixed per cell the same way the meter seed is — fault schedules
  /// are independent of host-thread count and execution order. All-zero
  /// rates and spec leave every result bit-identical to a build without
  /// the fault subsystem.
  FaultOptions fault;
  /// Autotuned §III configurations, keyed by benchmark name (the --tune
  /// flag on the figure binaries fills this from harness::TuneBenchmark).
  /// When a benchmark has an entry, its OpenCL-opt column runs
  /// RunTuned(config) instead of the fixed paper kernel; benchmarks
  /// without an entry are untouched, so golden figures stay byte-identical
  /// when the map is empty.
  std::map<std::string, sim::TuningConfig> tuned_configs;
};

struct VariantResult {
  bool available = false;
  std::string unavailable_reason;   // e.g. the amcd FP64 build failure
  double seconds = 0.0;
  double power_mean_w = 0.0;
  double power_stddev_w = 0.0;
  double energy_j = 0.0;            // power * modelled region time
  bool validated = false;
  double max_rel_error = 0.0;
  std::string note;
  StatRegistry stats;
  /// Power-meter repetitions skipped because every sample in the window
  /// was dropped (injected meter dropouts). Skipped reps never enter the
  /// mean/stddev; the figure tables report the count instead.
  int failed_repetitions = 0;
  /// Variant that actually produced these numbers when the harness rung
  /// of the degradation ladder fell (empty = ran as requested).
  std::string degraded_to;
};

struct BenchmarkResults {
  std::string name;
  VariantResult variants[5];  // indexed by hpc::Variant (incl. kHetero)

  const VariantResult& Get(hpc::Variant v) const {
    return variants[static_cast<int>(v)];
  }
  /// Speedup of `v` over Serial; 0 when either side is unavailable.
  double SpeedupVsSerial(hpc::Variant v) const;
  /// Power of `v` normalized to Serial; 0 when unavailable.
  double PowerVsSerial(hpc::Variant v) const;
  /// Energy-to-solution of `v` normalized to Serial; 0 when unavailable.
  double EnergyVsSerial(hpc::Variant v) const;
};

class ExperimentRunner {
 public:
  explicit ExperimentRunner(const ExperimentConfig& config);

  /// Runs one benchmark through all four versions.
  StatusOr<BenchmarkResults> RunBenchmark(const std::string& name);

  /// Runs every registered benchmark in paper order.
  StatusOr<std::vector<BenchmarkResults>> RunAll();

  const ExperimentConfig& config() const { return config_; }

 private:
  /// `device_threads` is the host-thread count handed to the device models;
  /// parallel RunAll passes 1 so concurrently-running benchmarks don't each
  /// spin up a nested pool (results are identical either way).
  StatusOr<BenchmarkResults> RunBenchmarkImpl(const std::string& name,
                                              int device_threads);

  ExperimentConfig config_;
  power::PowerModel power_model_;
};

}  // namespace malisim::harness
