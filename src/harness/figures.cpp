#include "harness/figures.h"

#include <cstdio>
#include <span>
#include <sstream>
#include <vector>

#include "common/stats.h"

namespace malisim::harness {
namespace {

using Metric = double (BenchmarkResults::*)(hpc::Variant) const;

/// The variant columns present in a result set: the four paper versions,
/// plus Hetero when any benchmark's hetero cell was actually run (available
/// or carrying an unavailable reason). Runs without the hetero backend
/// render byte-identically to the historical four-column figures.
std::span<const hpc::Variant> VariantsIn(
    const std::vector<BenchmarkResults>& results) {
  for (const BenchmarkResults& r : results) {
    const VariantResult& h = r.Get(hpc::Variant::kHetero);
    if (h.available || !h.unavailable_reason.empty()) {
      return hpc::kAllVariantsWithHetero;
    }
  }
  return hpc::kAllVariants;
}

Table MetricTable(const std::vector<BenchmarkResults>& results, Metric metric,
                  int precision) {
  const std::span<const hpc::Variant> variants = VariantsIn(results);
  std::vector<std::string> headers{"benchmark"};
  for (hpc::Variant v : variants) headers.emplace_back(hpc::VariantName(v));
  Table table(std::move(headers));
  for (const BenchmarkResults& r : results) {
    table.BeginRow();
    table.AddCell(r.name);
    for (hpc::Variant v : variants) {
      if (!r.Get(v).available) {
        table.AddMissing();
      } else {
        table.AddNumber((r.*metric)(v), precision);
      }
    }
  }
  // Averages over available entries: the arithmetic mean is what the paper
  // reports ("on average 8.7x"); the geometric mean is the statistically
  // conventional choice for ratios, shown for reference.
  for (const bool geometric : {false, true}) {
    table.BeginRow();
    table.AddCell(geometric ? "geomean" : "average (paper's)");
    for (hpc::Variant v : variants) {
      std::vector<double> vals;
      for (const BenchmarkResults& r : results) {
        const double x = (r.*metric)(v);
        if (x > 0.0) vals.push_back(x);
      }
      if (vals.empty()) {
        table.AddMissing();
      } else {
        table.AddNumber(geometric ? GeoMean(vals) : Mean(vals), precision);
      }
    }
  }
  return table;
}

std::vector<double> Collect(const std::vector<BenchmarkResults>& results,
                            Metric metric, hpc::Variant v) {
  std::vector<double> vals;
  for (const BenchmarkResults& r : results) {
    const double x = (r.*metric)(v);
    if (x > 0.0) vals.push_back(x);
  }
  return vals;
}

}  // namespace

Table Fig2Speedup(const std::vector<BenchmarkResults>& results) {
  return MetricTable(results, &BenchmarkResults::SpeedupVsSerial, 2);
}

Table Fig3Power(const std::vector<BenchmarkResults>& results) {
  return MetricTable(results, &BenchmarkResults::PowerVsSerial, 3);
}

Table Fig4Energy(const std::vector<BenchmarkResults>& results) {
  return MetricTable(results, &BenchmarkResults::EnergyVsSerial, 3);
}

Summary ComputeSummary(const std::vector<BenchmarkResults>& results) {
  Summary s;
  // Arithmetic means, matching the paper's "on average" statements.
  auto avg = [&](Metric m, hpc::Variant v) {
    const std::vector<double> vals = Collect(results, m, v);
    return vals.empty() ? 0.0 : Mean(vals);
  };
  s.openmp_avg_speedup =
      avg(&BenchmarkResults::SpeedupVsSerial, hpc::Variant::kOpenMP);
  s.openmp_avg_power =
      avg(&BenchmarkResults::PowerVsSerial, hpc::Variant::kOpenMP);
  s.opencl_avg_energy =
      avg(&BenchmarkResults::EnergyVsSerial, hpc::Variant::kOpenCL);
  s.openclopt_avg_speedup =
      avg(&BenchmarkResults::SpeedupVsSerial, hpc::Variant::kOpenCLOpt);
  s.openclopt_avg_energy =
      avg(&BenchmarkResults::EnergyVsSerial, hpc::Variant::kOpenCLOpt);
  return s;
}

Headline ComputeHeadline(const std::vector<BenchmarkResults>& sp,
                         const std::vector<BenchmarkResults>& dp) {
  std::vector<double> speedups;
  std::vector<double> energies;
  for (const auto* results : {&sp, &dp}) {
    for (const BenchmarkResults& r : *results) {
      const double s = r.SpeedupVsSerial(hpc::Variant::kOpenCLOpt);
      const double e = r.EnergyVsSerial(hpc::Variant::kOpenCLOpt);
      if (s > 0.0) speedups.push_back(s);
      if (e > 0.0) energies.push_back(e);
    }
  }
  Headline h;
  // Arithmetic means over SP+DP, the paper's §V-D averaging.
  if (!speedups.empty()) h.avg_speedup = Mean(speedups);
  if (!energies.empty()) h.avg_energy = Mean(energies);
  return h;
}

std::string RenderFigure(const std::string& title, const Table& table,
                         const std::vector<BenchmarkResults>& results) {
  std::string out = "== " + title + " ==\n";
  out += table.ToAscii();
  for (const BenchmarkResults& r : results) {
    for (hpc::Variant v : VariantsIn(results)) {
      const VariantResult& vr = r.Get(v);
      if (!vr.available) {
        out += "  note: " + r.name + " / " +
               std::string(hpc::VariantName(v)) +
               " unavailable: " + vr.unavailable_reason + "\n";
      } else {
        if (!vr.note.empty()) {
          out += "  note: " + r.name + " / " +
                 std::string(hpc::VariantName(v)) + ": " + vr.note + "\n";
        }
        if (vr.failed_repetitions > 0) {
          out += "  note: " + r.name + " / " +
                 std::string(hpc::VariantName(v)) + ": " +
                 std::to_string(vr.failed_repetitions) +
                 " power repetition(s) failed and were excluded from "
                 "mean/stddev\n";
        }
        if (!vr.validated) {
          out += "  WARNING: " + r.name + " / " +
                 std::string(hpc::VariantName(v)) +
                 " failed validation (max rel err " +
                 FormatDouble(vr.max_rel_error, 6) + ")\n";
        }
      }
    }
  }
  return out;
}

std::string RenderFullPrecisionCsv(const std::vector<BenchmarkResults>& results,
                                   bool fp64) {
  // Locale-independent full precision: golden-CSV byte comparisons must not
  // depend on the host's LC_NUMERIC.
  const auto full = [](double v) { return FormatDoubleFull(v); };
  std::ostringstream csv;
  csv << "benchmark,precision,variant,available,seconds,power_mean_w,"
         "energy_j,fig2_speedup,fig3_power,fig4_energy\n";
  for (const BenchmarkResults& r : results) {
    for (hpc::Variant v : VariantsIn(results)) {
      const VariantResult& vr = r.Get(v);
      csv << r.name << ',' << (fp64 ? "fp64" : "fp32") << ','
          << hpc::VariantName(v) << ',' << (vr.available ? 1 : 0) << ',';
      if (vr.available) {
        csv << full(vr.seconds) << ',' << full(vr.power_mean_w) << ','
            << full(vr.energy_j) << ',' << full(r.SpeedupVsSerial(v)) << ','
            << full(r.PowerVsSerial(v)) << ',' << full(r.EnergyVsSerial(v));
      } else {
        csv << ",,,,,";
      }
      csv << '\n';
    }
  }
  return csv.str();
}

}  // namespace malisim::harness
