// Job-scoped execution for the serve engine (DESIGN.md §14): one benchmark
// variant run end-to-end against fresh device models, with the job's own
// fault schedule, watchdog budget and retry cap.
//
// Isolation contract: every call stands up a fresh Benchmark, CortexA15
// model and ocl::Context (the TuneBenchmark evaluation pattern), so jobs
// never share mutable simulator state and can run concurrently from any
// worker thread. The only shared state is the optional CompileCache, which
// is internally synchronized and never alters results or fault schedules.
//
// Determinism contract: the caller premixes the job id into
// `fault.seed`, so a job's injector decisions depend only on (plan, job),
// not on which worker ran it or what ran before — replaying a single job
// from a soak reproduces its fault schedule bit-identically.
#pragma once

#include <cstdint>
#include <string>

#include "common/sim_options.h"
#include "common/status.h"
#include "fault/retry.h"
#include "hpc/benchmark.h"
#include "hpc/problem_sizes.h"
#include "power/power_model.h"
#include "sim/device.h"
#include "sim/tuner.h"

namespace malisim::mali {
class CompileCache;
}  // namespace malisim::mali

namespace malisim::harness {

struct JobExecRequest {
  std::string benchmark;
  hpc::ProblemSizes sizes;
  bool fp64 = false;
  /// Simulation seed (inputs + reference), per job.
  std::uint64_t seed = 0;
  /// Backend the gpu context dispatches to for GPU variants.
  sim::BackendKind device = sim::BackendKind::kMali;
  hpc::Variant variant = hpc::Variant::kOpenCLOpt;
  /// GPU share for the hetero backend; negative = self-tuning default.
  double hetero_ratio = -1.0;
  /// Fault configuration. `seed` must already be premixed per job;
  /// `watchdog_sec` carries the job's remaining modelled-time budget
  /// (0 = no watchdog).
  FaultOptions fault;
  /// Retry budget for this attempt (RetryPolicy.max_total_backoff_sec):
  /// the job's remaining deadline budget, so backoff can never outlive
  /// the deadline. 0 = unbounded.
  double max_total_backoff_sec = 0.0;
  /// Tuned configuration applied on the kOpenCLOpt rung (nullptr = the
  /// paper's fixed kernel).
  const sim::TuningConfig* tuned = nullptr;
  power::PowerParams power;
  /// Shared pure-compile cache (nullptr = compile from scratch).
  mali::CompileCache* compile_cache = nullptr;
};

struct JobExecResult {
  /// Modelled seconds of the measured region.
  double seconds = 0.0;
  /// Modelled energy over the region (power model, no meter noise — serve
  /// reports true energy per job, not a metered estimate).
  double energy_j = 0.0;
  bool validated = false;
  std::string note;
  /// Transient-retry accounting for this variant attempt.
  fault::RetryStats retry;
};

/// Runs exactly one variant of one job (no ladder — the serve engine owns
/// degradation routing so its circuit breaker sees every per-rung
/// outcome). Transient failures are retried inside, within the request's
/// backoff budget. Error statuses pass through the fault taxonomy
/// unchanged: degradable failures tell the engine to try a lower rung,
/// fatal ones terminate the job. `out->retry` is filled even on failure
/// (the engine accounts failed attempts' backoff against the deadline);
/// the measurement fields are only meaningful on Ok.
Status ExecuteJobVariant(const JobExecRequest& request, JobExecResult* out);

}  // namespace malisim::harness
