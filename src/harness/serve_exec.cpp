#include "harness/serve_exec.h"

#include <memory>
#include <utility>

#include "cpu/a15_device.h"
#include "fault/injector.h"
#include "mali/compiler_cache.h"
#include "ocl/runtime.h"

namespace malisim::harness {

Status ExecuteJobVariant(const JobExecRequest& request, JobExecResult* out) {
  *out = JobExecResult();
  std::unique_ptr<hpc::Benchmark> bench =
      hpc::CreateBenchmark(request.benchmark, request.sizes);
  if (bench == nullptr) {
    return NotFoundError("unknown benchmark '" + request.benchmark + "'");
  }
  MALI_RETURN_IF_ERROR(bench->Setup(request.fp64, request.seed));

  // Fresh board per job: no mutable simulator state crosses jobs.
  cpu::CortexA15Device cpu_device;
  ocl::Context gpu_context(request.device);
  gpu_context.set_hetero_ratio(request.hetero_ratio);
  SimOptions sim_options;
  sim_options.threads = 1;  // jobs fan out across workers; engines serial
  sim_options.fault = request.fault;
  cpu_device.set_sim_options(sim_options);
  gpu_context.set_sim_options(sim_options);
  gpu_context.set_compile_cache(request.compile_cache);

  hpc::Devices devices{&cpu_device, &gpu_context};
  std::unique_ptr<ocl::Context> hetero_context;
  if (request.variant == hpc::Variant::kHetero) {
    if (request.device == sim::BackendKind::kHetero) {
      devices.hetero = &gpu_context;
    } else {
      hetero_context =
          std::make_unique<ocl::Context>(sim::BackendKind::kHetero);
      hetero_context->set_hetero_ratio(request.hetero_ratio);
      hetero_context->set_sim_options(sim_options);
      hetero_context->set_compile_cache(request.compile_cache);
      devices.hetero = hetero_context.get();
    }
  }

  StatusOr<fault::FaultPlan> plan_or =
      fault::FaultPlan::FromOptions(request.fault);
  if (!plan_or.ok()) return plan_or.status();
  fault::FaultPlan plan = *std::move(plan_or);
  plan.retry.max_total_backoff_sec = request.max_total_backoff_sec;
  fault::FaultInjector injector(plan);
  gpu_context.set_fault_injector(&injector);
  if (hetero_context != nullptr) {
    hetero_context->set_fault_injector(&injector);
  }

  StatusOr<hpc::RunOutcome> run = fault::RetryWithBackoff(
      plan.retry,
      [&] {
        if (request.tuned != nullptr &&
            request.variant == hpc::Variant::kOpenCLOpt) {
          return bench->RunTuned(*request.tuned, devices);
        }
        return bench->RunVariant(request.variant, devices);
      },
      &out->retry);
  if (!run.ok()) return run.status();
  if (!run->validated) {
    // A fast-but-wrong result is a failed job, not a success — and not a
    // degradable failure either: nothing suggests a lower rung computes a
    // different answer.
    return InternalError("job failed validation (max_rel_error=" +
                         std::to_string(run->max_rel_error) + ")");
  }

  const power::PowerModel power_model(request.power);
  out->seconds = run->seconds;
  out->energy_j = power_model.Energy(run->profile);
  out->validated = run->validated;
  out->note = run->note;
  return Status::Ok();
}

}  // namespace malisim::harness
