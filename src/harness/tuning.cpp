#include "harness/tuning.h"

#include <cinttypes>
#include <cstdio>
#include <memory>
#include <utility>

#include "common/log.h"
#include "cpu/a15_device.h"
#include "fault/injector.h"
#include "hpc/benchmark.h"
#include "ocl/runtime.h"

namespace malisim::harness {

namespace {

/// The GPU-share axis appended to every space on the hetero backend.
constexpr const char* kHeteroAxis = "hetero_permille";

std::string Hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return std::string(buf);
}

/// Every size field enters the fingerprint, not just the tuned
/// benchmark's: the encoding stays trivially stable as fields are added,
/// and a spurious invalidation costs one re-tune, never a wrong winner.
std::string SizesKey(const hpc::ProblemSizes& s) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "spmv=%u/%u,vecop=%u,hist=%u/%u,stc=%u,red=%u,"
                "amcd=%u/%u/%u,nbody=%u,conv=%u,dmmm=%u",
                s.spmv_rows, s.spmv_avg_nnz_per_row, s.vecop_n, s.hist_n,
                s.hist_bins, s.stencil_dim, s.red_n, s.amcd_chains,
                s.amcd_atoms, s.amcd_steps, s.nbody_n, s.conv_dim, s.dmmm_n);
  return std::string(buf);
}

}  // namespace

StatusOr<std::string> TuningFingerprint(const std::string& benchmark,
                                        const hpc::ProblemSizes& sizes,
                                        bool fp64, std::uint64_t seed) {
  std::unique_ptr<hpc::Benchmark> bench =
      hpc::CreateBenchmark(benchmark, sizes);
  if (bench == nullptr) {
    return NotFoundError("unknown benchmark '" + benchmark + "'");
  }
  // Setup before TunedKernelText: the kernel builders read the precision
  // (and any Setup-derived geometry) from the instance.
  MALI_RETURN_IF_ERROR(bench->Setup(fp64, seed));
  StatusOr<std::string> text =
      bench->TunedKernelText(bench->PaperOptConfig());
  if (!text.ok()) return text.status();
  std::string blob = benchmark;
  blob += fp64 ? "|fp64|" : "|fp32|";
  blob += SizesKey(sizes);
  blob += '|';
  blob += *text;
  return Hex64(sim::Fnv1a64(blob));
}

StatusOr<TuningReport> TuneBenchmark(const TuningRequest& request) {
  std::unique_ptr<hpc::Benchmark> probe =
      hpc::CreateBenchmark(request.benchmark, request.sizes);
  if (probe == nullptr) {
    return NotFoundError("unknown benchmark '" + request.benchmark + "'");
  }
  sim::TuningSpace space = probe->TunableSpace();
  if (space.axes.empty()) {
    return UnimplementedError("benchmark '" + request.benchmark +
                              "' declares no tuning space");
  }
  // On the hetero backend the PR 5 split ratio folds into the same
  // search: every benchmark's space gains a GPU-share axis (permille;
  // 0 = all-A15, 1000 = all-Mali), applied per candidate below. The axis
  // enters the space signature, so hetero winners are cached apart from
  // single-device ones.
  if (request.device == sim::BackendKind::kHetero) {
    space.axes.push_back(
        {kHeteroAxis, {0, 250, 500, 750, 1000}});
  }

  TuningReport report;
  report.paper_config = probe->PaperOptConfig();

  StatusOr<std::string> fingerprint = TuningFingerprint(
      request.benchmark, request.sizes, request.fp64, request.seed);
  if (!fingerprint.ok()) return fingerprint.status();

  // The capability record of the backend the candidates will run on: a
  // modelled-device configuration change invalidates cached winners.
  const sim::DeviceCaps caps =
      ocl::Context(request.device).backend().caps();
  report.cache_key = sim::TuningCacheKey(*fingerprint, caps,
                                         request.tuner.objective, space);

  if (request.cache != nullptr) {
    sim::TuningCacheEntry entry;
    if (request.cache->Lookup(report.cache_key, &entry)) {
      StatusOr<sim::TuningConfig> config =
          sim::ConfigFromKey(space, entry.config_key);
      if (config.ok()) {
        report.result.best = *std::move(config);
        report.result.best_measurement = {entry.seconds, entry.energy_j};
        report.result.best_score = entry.score;
        report.result.space_size = space.Size();
        report.result.from_cache = true;
        return report;
      }
      // A key that no longer resolves against the declared space is a
      // stale entry (the space changed without a fingerprint change, which
      // Signature() in the cache key should prevent): re-tune.
      MALI_LOG_WARN("tuning cache entry for %s does not resolve (%s); "
                    "re-tuning",
                    request.benchmark.c_str(),
                    config.status().ToString().c_str());
    }
  }

  const power::PowerModel power_model(request.power);
  auto eval = [&request, &power_model](const sim::TuningConfig& config)
      -> StatusOr<sim::TuningMeasurement> {
    // Fully self-contained evaluation: fresh benchmark, fresh devices.
    // Runs concurrently from pool workers when the tuner fans out.
    std::unique_ptr<hpc::Benchmark> bench =
        hpc::CreateBenchmark(request.benchmark, request.sizes);
    MALI_CHECK(bench != nullptr);
    MALI_RETURN_IF_ERROR(bench->Setup(request.fp64, request.seed));

    cpu::CortexA15Device cpu_device;
    ocl::Context gpu_context(request.device);
    const std::int64_t permille = config.Get(kHeteroAxis, -1);
    if (permille >= 0) {
      gpu_context.set_hetero_ratio(static_cast<double>(permille) / 1000.0);
    }
    SimOptions sim_options;
    sim_options.threads = 1;  // candidates fan out; engines stay serial
    sim_options.fault = request.fault;
    cpu_device.set_sim_options(sim_options);
    gpu_context.set_sim_options(sim_options);

    // Fault schedule keyed per candidate, so injected faults land on the
    // same candidates regardless of evaluation order or thread count.
    StatusOr<fault::FaultPlan> plan = fault::FaultPlan::FromOptions(
        request.fault);
    if (!plan.ok()) return plan.status();
    plan->seed ^= sim::Fnv1a64(request.benchmark + "/" +
                               config.CanonicalKey());
    fault::FaultInjector injector(*plan);
    gpu_context.set_fault_injector(&injector);

    hpc::Devices devices{&cpu_device, &gpu_context};
    StatusOr<hpc::RunOutcome> run = bench->RunTuned(config, devices);
    if (!run.ok()) return run.status();
    if (!run->validated) {
      // An invalid result must read as a skipped candidate, never a
      // winner — a fast-but-wrong kernel is not an optimization.
      return InternalError("candidate " + config.CanonicalKey() +
                           " failed validation (max_rel_error=" +
                           std::to_string(run->max_rel_error) + ")");
    }
    sim::TuningMeasurement m;
    m.seconds = run->seconds;
    m.energy_j = power_model.Energy(run->profile);
    return m;
  };

  const sim::Tuner tuner(request.tuner);
  StatusOr<sim::TunerResult> result = tuner.Search(space, eval);
  if (!result.ok()) return result.status();
  report.result = *std::move(result);

  if (request.cache != nullptr) {
    sim::TuningCacheEntry entry;
    entry.config_key = report.result.best.CanonicalKey();
    entry.objective = std::string(sim::ObjectiveName(request.tuner.objective));
    entry.score = report.result.best_score;
    entry.seconds = report.result.best_measurement.seconds;
    entry.energy_j = report.result.best_measurement.energy_j;
    request.cache->Insert(report.cache_key, std::move(entry));
  }
  return report;
}

}  // namespace malisim::harness
