// Harness adapter between sim::Tuner and the nine paper benchmarks.
//
// TuneBenchmark stands up one complete, self-contained evaluation pipeline
// per candidate configuration: a fresh Benchmark instance (Setup included),
// a fresh Cortex-A15 device and a fresh ocl::Context, so candidate
// evaluations are thread-safe under the tuner's fan-out and bit-identical
// for any host thread count. Energy comes straight from the power model
// over the candidate's activity profile — no meter noise enters the search,
// matching the §IV-D observation that the modelled deviations are
// negligible.
//
// Candidates that fail to build (the amcd FP64 erratum), exhaust modelled
// resources, hit injected faults, or produce an invalid result
// (!outcome.validated) are reported as skipped to the tuner — they are
// counted, never winners, and never enter the cache.
#pragma once

#include <cstdint>
#include <string>

#include "common/sim_options.h"
#include "common/status.h"
#include "hpc/problem_sizes.h"
#include "power/power_model.h"
#include "sim/device.h"
#include "sim/tuner.h"

namespace malisim::harness {

struct TuningRequest {
  /// Registry name of the benchmark to tune ("vecop", "spmv", ...).
  std::string benchmark;
  hpc::ProblemSizes sizes;
  bool fp64 = false;
  /// Benchmark Setup seed (input data), independent of the search seed in
  /// `tuner.seed`.
  std::uint64_t seed = 42;
  /// Backend the candidates dispatch to. kMali reproduces the paper's
  /// target; the DeviceCaps of this backend enter the cache key. On
  /// kHetero the PR 5 split ratio folds into the search: the space gains
  /// a "hetero_permille" GPU-share axis {0,250,500,750,1000} applied per
  /// candidate.
  sim::BackendKind device = sim::BackendKind::kMali;
  power::PowerParams power;
  /// Search options: objective, search seed, candidate fan-out threads,
  /// exhaustive limit, hill-climb budget.
  sim::TunerOptions tuner;
  /// Fault-injection knobs applied to every candidate evaluation. The
  /// fault schedule is keyed per candidate (benchmark + config key), so it
  /// is independent of evaluation order and thread count.
  FaultOptions fault;
  /// Optional persistent winner cache. A hit returns the cached winner
  /// without evaluating anything; after a successful search the winner is
  /// inserted. Never written on failed searches.
  sim::TuningCache* cache = nullptr;
};

struct TuningReport {
  sim::TunerResult result;
  /// The paper's hand-picked §III configuration for this benchmark — what
  /// the conformance battery checks the winner against.
  sim::TuningConfig paper_config;
  /// Content address of this tuning problem in the cache.
  std::string cache_key;
};

/// Content fingerprint of one tuning problem: hex FNV-1a over the
/// benchmark's tuned-kernel text at the paper configuration (the code-gen
/// identity), every problem-size field and the precision. Any change to
/// the kernel builders, the sizes or the precision invalidates cached
/// winners.
StatusOr<std::string> TuningFingerprint(const std::string& benchmark,
                                        const hpc::ProblemSizes& sizes,
                                        bool fp64, std::uint64_t seed);

/// Tunes one benchmark end to end: space declaration, cache lookup,
/// search, cache insert. NotFound for an unknown benchmark name or a
/// search in which every candidate failed; Unimplemented when the
/// benchmark declares no tuning space.
StatusOr<TuningReport> TuneBenchmark(const TuningRequest& request);

}  // namespace malisim::harness
