// Figure reproduction: renders experiment results as the tables behind the
// paper's Figs. 2-4 and computes the §V-D summary statistics.
#pragma once

#include <string>
#include <vector>

#include "common/table.h"
#include "harness/experiment.h"

namespace malisim::harness {

/// Fig. 2 (a/b): speedup over the Serial version, per benchmark x version.
Table Fig2Speedup(const std::vector<BenchmarkResults>& results);

/// Fig. 3 (a/b): board power normalized to the Serial version.
Table Fig3Power(const std::vector<BenchmarkResults>& results);

/// Fig. 4 (a/b): energy-to-solution normalized to the Serial version.
Table Fig4Energy(const std::vector<BenchmarkResults>& results);

/// §V-D summary statistics. Averages are arithmetic means over the
/// benchmarks where the variant is available, matching the paper's "on
/// average" convention (its 8.7x headline is the arithmetic mean of the
/// per-benchmark speedups); the figure tables also print geometric means.
struct Summary {
  double openmp_avg_speedup = 0.0;        // paper SP: 1.7x
  double openmp_avg_power = 0.0;          // paper SP: 1.31x
  double opencl_avg_energy = 0.0;         // paper: 0.56
  double openclopt_avg_speedup = 0.0;     // paper SP+DP: 8.7x
  double openclopt_avg_energy = 0.0;      // paper SP: 0.28, DP: 0.36
};

Summary ComputeSummary(const std::vector<BenchmarkResults>& results);

/// Combined SP+DP headline pair (8.7x speedup at 32% energy in the paper).
struct Headline {
  double avg_speedup = 0.0;
  double avg_energy = 0.0;
};
Headline ComputeHeadline(const std::vector<BenchmarkResults>& sp,
                         const std::vector<BenchmarkResults>& dp);

/// Renders a figure table plus annotations (validation failures, fallback
/// notes, unavailable variants) as printable text.
std::string RenderFigure(const std::string& title, const Table& table,
                         const std::vector<BenchmarkResults>& results);

/// Full-precision (%.17g) CSV of a sweep: raw per-variant metrics plus the
/// derived figure ratios. This is the golden-file regression format — any
/// change to a modelled second, watt or joule changes the string, which is
/// also what the observability determinism test compares across profiling
/// on/off and host thread counts.
std::string RenderFullPrecisionCsv(const std::vector<BenchmarkResults>& results,
                                   bool fp64);

}  // namespace malisim::harness
