// Chrome-tracing export of experiment timelines: each benchmark variant
// becomes a span on its device's track, so a whole figure run can be
// inspected as a timeline (who ran where, for how long, at what power).
//
// The builder itself lives in obs/trace.h and carries a cursor per
// (pid, tid) track, so the CPU (tid 1) and GPU (tid 2) tracks are
// independent timelines: variants of the same device run back-to-back,
// while the two devices' spans both start at t = 0. (An earlier version
// used one global cursor, which made independent CPU and GPU runs look
// sequential in the viewer.)
#pragma once

#include "harness/experiment.h"
#include "obs/trace.h"

namespace malisim::harness {

/// Alias so existing includes keep working; the event/JSON format is the
/// shared obs one (which also carries counter and metadata phases).
using TraceEvent = obs::TraceEvent;

class TraceBuilder : public obs::TraceBuilder {
 public:
  /// Lays out a benchmark's four variants back-to-back per device: CPU
  /// variants on the A15 track (tid 1), GPU variants on the Mali track
  /// (tid 2).
  void AddBenchmark(const BenchmarkResults& results);
};

}  // namespace malisim::harness
