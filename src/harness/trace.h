// Chrome-tracing export: renders experiment timelines as a trace JSON
// loadable in chrome://tracing / Perfetto. Each benchmark variant becomes a
// span on its device's track, so a whole figure run can be inspected as a
// timeline (who ran where, for how long, at what power).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "harness/experiment.h"

namespace malisim::harness {

/// One complete event ("ph":"X") in the Chrome trace event format.
struct TraceEvent {
  std::string name;
  std::string category;
  double timestamp_us = 0;   // "ts"
  double duration_us = 0;    // "dur"
  int pid = 1;
  int tid = 1;
  /// Extra key/value args shown in the inspector ("args").
  std::vector<std::pair<std::string, std::string>> args;
};

class TraceBuilder {
 public:
  /// Appends a span and advances the track cursor.
  void AddSpan(const std::string& name, const std::string& category, int tid,
               double duration_sec,
               std::vector<std::pair<std::string, std::string>> args = {});

  /// Lays out a benchmark's four variants back-to-back: CPU variants on the
  /// A15 track (tid 1), GPU variants on the Mali track (tid 2).
  void AddBenchmark(const BenchmarkResults& results);

  const std::vector<TraceEvent>& events() const { return events_; }

  /// Serializes to the Chrome trace event JSON array format.
  std::string ToJson() const;

  /// Writes ToJson() to a file.
  Status WriteTo(const std::string& path) const;

 private:
  std::vector<TraceEvent> events_;
  double cursor_us_ = 0;
};

}  // namespace malisim::harness
