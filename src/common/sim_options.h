// Host-side execution options for the simulation engine itself (not the
// modelled hardware): how many host worker threads a device model may use
// to execute work-groups concurrently.
//
// The determinism contract (DESIGN.md §6): modelled results — output
// buffers, operation histograms, cycles, power, energy — are bit-identical
// for every `threads` value. Parallel runs execute work-groups
// concurrently but buffer their memory-event streams and replay them into
// the order-dependent cache/DRAM models in the canonical serial order.
#pragma once

#include <cstdint>
#include <string>

namespace malisim {

/// Configuration of the deterministic fault-injection subsystem
/// (src/fault/). Plain data so every layer can carry it without depending
/// on the fault library; fault::FaultPlan::FromOptions() interprets it.
///
/// Defaults model a healthy board: no injected faults, no watchdog. The
/// two paper-documented quirks (amcd FP64 compiler erratum, per-thread
/// register budget) are always-on FaultPlan entries and are NOT governed
/// by these knobs — golden figures reproduce with everything here at its
/// default.
struct FaultOptions {
  /// Seed of the fault decision streams (--fault-seed). Identical
  /// (sim seed, fault seed, threads) triples replay bit-identically.
  std::uint64_t seed = 0;

  /// Uniform per-site trip probability in [0, 1] applied to every
  /// injection site (--fault-rate). 0 disables injection.
  double rate = 0.0;

  /// Per-site overrides, e.g. "build=0.1,map=0.05" or "all=0.02"
  /// (--fault-spec). Applied on top of `rate`. Site names:
  /// alloc, write, read, copy, fill, map, unmap, ndrange, build,
  /// regsqueeze, throttle, meter.
  std::string spec;

  /// Per-kernel watchdog: a GPU launch whose modelled time exceeds this
  /// budget fails with DeadlineExceeded and the harness degrades the
  /// variant. 0 = no watchdog.
  double watchdog_sec = 0.0;

  /// True when any fault can actually fire.
  bool InjectionActive() const { return rate > 0.0 || !spec.empty(); }
  /// True when the harness resilience ladder (retry + degrade through
  /// OpenMP/Serial) should engage. Kept off on a healthy board so the
  /// paper's missing bars (amcd FP64) stay missing.
  bool ResilienceActive() const {
    return InjectionActive() || watchdog_sec > 0.0;
  }
};

/// Which KIR execution engine the device models drive (--kir-exec=).
/// Both engines execute work-items in the same program order and emit the
/// same memory-access streams, opcode tallies and operation histograms, so
/// every modelled number is bit-identical between them (pinned by the
/// `ctest -L kirvm` differential suite). kBytecode is the compile-once
/// register VM (DESIGN.md §16); kInterp is the reference tree-walk.
enum class KirExec : std::uint8_t { kBytecode = 0, kInterp };

struct SimOptions {
  /// Host worker threads for parallel simulation. 1 = the serial engine
  /// (inline cache accesses, no buffering); >1 = record/replay engine.
  /// 0 = one worker per available hardware thread.
  int threads = 1;

  /// Chunks a worker may run ahead of the in-order replay cursor before it
  /// blocks, per Run() call. Bounds buffered memory-event storage.
  /// 0 = auto (2x the worker count, minimum 8).
  int replay_window = 0;

  /// Fault-injection and resilience configuration (see FaultOptions).
  FaultOptions fault;

  /// KIR execution engine (see KirExec above). Engine choice never changes
  /// modelled numbers, only host-side speed.
  KirExec kir_exec = KirExec::kBytecode;

  /// Resolved worker count (applies the `threads == 0` rule).
  int ResolvedThreads() const;
  /// Resolved replay window for the resolved worker count.
  int ResolvedWindow() const;
};

}  // namespace malisim
