// Host-side execution options for the simulation engine itself (not the
// modelled hardware): how many host worker threads a device model may use
// to execute work-groups concurrently.
//
// The determinism contract (DESIGN.md §6): modelled results — output
// buffers, operation histograms, cycles, power, energy — are bit-identical
// for every `threads` value. Parallel runs execute work-groups
// concurrently but buffer their memory-event streams and replay them into
// the order-dependent cache/DRAM models in the canonical serial order.
#pragma once

namespace malisim {

struct SimOptions {
  /// Host worker threads for parallel simulation. 1 = the serial engine
  /// (inline cache accesses, no buffering); >1 = record/replay engine.
  /// 0 = one worker per available hardware thread.
  int threads = 1;

  /// Chunks a worker may run ahead of the in-order replay cursor before it
  /// blocks, per Run() call. Bounds buffered memory-event storage.
  /// 0 = auto (2x the worker count, minimum 8).
  int replay_window = 0;

  /// Resolved worker count (applies the `threads == 0` rule).
  int ResolvedThreads() const;
  /// Resolved replay window for the resolved worker count.
  int ResolvedWindow() const;
};

}  // namespace malisim
