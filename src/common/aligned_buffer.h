// Cache-line-aligned, type-erased host memory. tinycl buffers and the device
// models share these so that the simulated address of an element is stable
// for the lifetime of the buffer (the cache models key on addresses).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <span>

#include "common/status.h"

namespace malisim {

inline constexpr std::size_t kCacheLineBytes = 64;

/// Owning, 64-byte-aligned byte buffer. Move-only.
class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  explicit AlignedBuffer(std::size_t size_bytes) { Allocate(size_bytes); }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(other.data_), size_(other.size_) {
    other.data_ = nullptr;
    other.size_ = 0;
  }
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      Free();
      data_ = other.data_;
      size_ = other.size_;
      other.data_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }

  ~AlignedBuffer() { Free(); }

  std::byte* data() { return data_; }
  const std::byte* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  std::span<std::byte> bytes() { return {data_, size_}; }
  std::span<const std::byte> bytes() const { return {data_, size_}; }

  /// Typed view. The requested element count must fit.
  template <typename T>
  std::span<T> as(std::size_t count) {
    MALI_CHECK(count * sizeof(T) <= size_);
    return {reinterpret_cast<T*>(data_), count};
  }
  template <typename T>
  std::span<const T> as(std::size_t count) const {
    MALI_CHECK(count * sizeof(T) <= size_);
    return {reinterpret_cast<const T*>(data_), count};
  }

  void ZeroFill() {
    if (size_ > 0) std::memset(data_, 0, size_);
  }

 private:
  void Allocate(std::size_t size_bytes) {
    size_ = size_bytes;
    if (size_bytes == 0) return;
    // Round up so the allocation size is a multiple of the alignment, as
    // required by aligned allocation.
    const std::size_t rounded =
        (size_bytes + kCacheLineBytes - 1) / kCacheLineBytes * kCacheLineBytes;
    data_ = static_cast<std::byte*>(
        ::operator new(rounded, std::align_val_t(kCacheLineBytes)));
  }
  void Free() {
    if (data_ != nullptr) {
      ::operator delete(data_, std::align_val_t(kCacheLineBytes));
      data_ = nullptr;
    }
    size_ = 0;
  }

  std::byte* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace malisim
