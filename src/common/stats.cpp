#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace malisim {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStat::Reset() { *this = RunningStat(); }

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double Mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double StdDev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = Mean(xs);
  double m2 = 0.0;
  for (double x : xs) m2 += (x - m) * (x - m);
  return std::sqrt(m2 / static_cast<double>(xs.size() - 1));
}

double GeoMean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) {
    MALI_CHECK_MSG(x > 0.0, "GeoMean requires positive values");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double Median(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  if (n % 2 == 1) return sorted[n / 2];
  return 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

double RelativeDifference(double a, double b) {
  const double scale = std::max({std::fabs(a), std::fabs(b), 1e-300});
  return std::fabs(a - b) / scale;
}

void StatRegistry::Increment(const std::string& name, double amount) {
  const std::size_t i = IndexOf(name);
  if (i == static_cast<std::size_t>(-1)) {
    entries_.push_back({name, amount});
  } else {
    entries_[i].value += amount;
  }
}

void StatRegistry::Set(const std::string& name, double value) {
  const std::size_t i = IndexOf(name);
  if (i == static_cast<std::size_t>(-1)) {
    entries_.push_back({name, value});
  } else {
    entries_[i].value = value;
  }
}

double StatRegistry::Get(const std::string& name) const {
  const std::size_t i = IndexOf(name);
  return i == static_cast<std::size_t>(-1) ? 0.0 : entries_[i].value;
}

bool StatRegistry::Has(const std::string& name) const {
  return IndexOf(name) != static_cast<std::size_t>(-1);
}

void StatRegistry::Clear() { entries_.clear(); }

std::vector<StatRegistry::Entry> StatRegistry::Entries() const {
  return entries_;
}

void StatRegistry::MergeFrom(const StatRegistry& other) {
  for (const Entry& e : other.entries_) Increment(e.name, e.value);
}

std::size_t StatRegistry::IndexOf(const std::string& name) const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].name == name) return i;
  }
  return static_cast<std::size_t>(-1);
}

}  // namespace malisim
