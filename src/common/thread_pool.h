// A small fixed-size thread pool plus the ordered-pipeline primitive the
// parallel simulation engine is built on.
//
// RunOrderedPipeline() is the deterministic core: independent task bodies
// run concurrently on the pool, while a replay stage consumes their results
// on the calling thread in strictly increasing task order — exactly the
// order the serial engine would have produced them in. A sliding window
// bounds how far execution may run ahead of replay, capping buffered state.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace malisim {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1; values < 1 are clamped to 1).
  explicit ThreadPool(int num_threads);
  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. Tasks may not throw.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void WaitIdle();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for tasks
  std::condition_variable idle_cv_;   // WaitIdle waits for drain
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // popped but not yet finished
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Runs `run(i)` for i in [0, n) across `pool` workers, then `replay(i)` on
/// the calling thread in strictly increasing i as soon as task i finishes.
/// At most `window` tasks are started beyond the replay cursor. When `pool`
/// is null the whole pipeline runs inline (run(0), replay(0), run(1), ...).
///
/// Statuses are combined deterministically: the non-OK status of the
/// lowest-numbered failing task is returned, regardless of completion
/// order. Replay stops at the first failing task; already-started later
/// tasks are awaited (their side effects may have happened, as with any
/// failed partial execution) but never replayed.
Status RunOrderedPipeline(ThreadPool* pool, std::size_t n, std::size_t window,
                          const std::function<Status(std::size_t)>& run,
                          const std::function<Status(std::size_t)>& replay);

}  // namespace malisim
