// Build provenance for machine-readable artifacts. The git revision is
// captured at CMake configure time (see the execute_process block in the
// top-level CMakeLists.txt) and baked in as a compile definition, so every
// BENCH_*.json record and results/ CSV can say which tree produced it.
// Builds outside a git checkout (or from a tarball) report "unknown".
//
// The sha is configure-time state: committing on top of an already
// configured build tree leaves the old value until CMake re-runs. That is
// fine for its only consumers — provenance stamps that are deliberately
// excluded from byte-identity comparisons (malisim-bench compares metric
// values, never provenance).
#pragma once

namespace malisim {

#ifndef MALISIM_GIT_SHA
#define MALISIM_GIT_SHA "unknown"
#endif

/// Short git revision of the configured source tree, or "unknown".
inline const char* GitSha() { return MALISIM_GIT_SHA; }

}  // namespace malisim
