// Descriptive statistics helpers used by the experiment harness
// (paper §IV-D: 20 repetitions, mean and standard deviation reported)
// and by the simulator's internal stat registries.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace malisim {

/// Online mean / variance accumulator (Welford's algorithm).
class RunningStat {
 public:
  void Add(double x);
  void Reset();

  std::size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Compensated (Kahan-Neumaier) summation. The device models accumulate
/// millions of per-instruction slot costs into doubles; plain `+=` loses
/// low-order bits once the running sum dwarfs the addends, and — worse for
/// the parallel engine's determinism contract — makes the total depend on
/// accumulation order. All engine-side floating-point accumulation happens
/// in canonical order AND through this accumulator, so totals are both
/// accurate and bit-stable across refactors that regroup the loop.
class KahanSum {
 public:
  void Add(double x) {
    const double t = sum_ + x;
    if (std::abs(sum_) >= std::abs(x)) {
      comp_ += (sum_ - t) + x;
    } else {
      comp_ += (x - t) + sum_;
    }
    sum_ = t;
  }
  KahanSum& operator+=(double x) {
    Add(x);
    return *this;
  }
  double value() const { return sum_ + comp_; }

 private:
  double sum_ = 0.0;
  double comp_ = 0.0;
};

/// Arithmetic mean of a sample; 0 for an empty span.
double Mean(std::span<const double> xs);

/// Sample standard deviation (n-1); 0 for fewer than two values.
double StdDev(std::span<const double> xs);

/// Geometric mean; requires all values > 0. Used for figure summary rows
/// ("on average 8.7x speedup") as is conventional for speedup ratios.
double GeoMean(std::span<const double> xs);

/// Median (averages the middle pair for even sizes); 0 for empty.
double Median(std::span<const double> xs);

/// Relative difference |a-b| / max(|a|,|b|, eps).
double RelativeDifference(double a, double b);

/// A named counter bag for simulator statistics. Counters are created on
/// first use; iteration order is insertion order for stable report output.
class StatRegistry {
 public:
  void Increment(const std::string& name, double amount = 1.0);
  void Set(const std::string& name, double value);
  double Get(const std::string& name) const;  // 0 if absent
  bool Has(const std::string& name) const;
  void Clear();

  struct Entry {
    std::string name;
    double value;
  };
  /// Entries in insertion order.
  std::vector<Entry> Entries() const;

  /// Merge another registry into this one (summing shared counters).
  void MergeFrom(const StatRegistry& other);

 private:
  std::size_t IndexOf(const std::string& name) const;  // npos if absent

  std::vector<Entry> entries_;
};

}  // namespace malisim
