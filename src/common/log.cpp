#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace malisim {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelPrefix(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "[debug] ";
    case LogLevel::kInfo:
      return "[info ] ";
    case LogLevel::kWarning:
      return "[warn ] ";
    case LogLevel::kError:
      return "[error] ";
    case LogLevel::kOff:
      return "";
  }
  return "";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

bool ParseLogLevel(std::string_view text, LogLevel* out) {
  if (text == "debug" || text == "0") {
    *out = LogLevel::kDebug;
  } else if (text == "info" || text == "1") {
    *out = LogLevel::kInfo;
  } else if (text == "warn" || text == "warning" || text == "2") {
    *out = LogLevel::kWarning;
  } else if (text == "error" || text == "3") {
    *out = LogLevel::kError;
  } else if (text == "off" || text == "4") {
    *out = LogLevel::kOff;
  } else {
    return false;
  }
  return true;
}

void InitLogLevelFromEnv() {
  const char* env = std::getenv("MALISIM_LOG_LEVEL");
  if (env == nullptr) return;
  LogLevel level;
  if (ParseLogLevel(env, &level)) {
    SetLogLevel(level);
  } else {
    MALI_LOG_WARN("ignoring invalid MALISIM_LOG_LEVEL='%s' "
                  "(want debug|info|warn|error|off)",
                  env);
  }
}

bool ApplyLogLevelFlag(std::string_view value) {
  LogLevel level;
  if (!ParseLogLevel(value, &level)) return false;
  SetLogLevel(level);
  return true;
}

void Logf(LogLevel level, const char* fmt, ...) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  std::fputs(LevelPrefix(level), stderr);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace malisim
