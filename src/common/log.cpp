#include "common/log.h"

#include <atomic>
#include <cstdio>

namespace malisim {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelPrefix(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "[debug] ";
    case LogLevel::kInfo:
      return "[info ] ";
    case LogLevel::kWarning:
      return "[warn ] ";
    case LogLevel::kError:
      return "[error] ";
    case LogLevel::kOff:
      return "";
  }
  return "";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void Logf(LogLevel level, const char* fmt, ...) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  std::fputs(LevelPrefix(level), stderr);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace malisim
