// Minimal leveled logger. Simulation libraries stay quiet by default;
// harness binaries raise the level for progress reporting.
#pragma once

#include <cstdarg>
#include <cstdint>
#include <string_view>

namespace malisim {

enum class LogLevel : std::uint8_t { kDebug = 0, kInfo, kWarning, kError, kOff };

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses "debug" / "info" / "warn[ing]" / "error" / "off" (or a numeric
/// level). Returns false and leaves `out` untouched on anything else.
bool ParseLogLevel(std::string_view text, LogLevel* out);

/// Applies the MALISIM_LOG_LEVEL environment variable, if set and valid.
/// Harness/bench binaries call this before parsing their own flags so the
/// environment provides the default and --log-level style flags still win.
void InitLogLevelFromEnv();

/// Applies a --log-level=VALUE flag ("debug"/"info"/"warn[ing]"/"error"/
/// "off" or the numeric level). Returns false — leaving the level
/// unchanged — on an unrecognized value. Binaries call this after
/// InitLogLevelFromEnv(), so the flag wins over the environment.
bool ApplyLogLevelFlag(std::string_view value);

/// printf-style logging to stderr with a level prefix.
void Logf(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace malisim

#define MALI_LOG_DEBUG(...) ::malisim::Logf(::malisim::LogLevel::kDebug, __VA_ARGS__)
#define MALI_LOG_INFO(...) ::malisim::Logf(::malisim::LogLevel::kInfo, __VA_ARGS__)
#define MALI_LOG_WARN(...) ::malisim::Logf(::malisim::LogLevel::kWarning, __VA_ARGS__)
#define MALI_LOG_ERROR(...) ::malisim::Logf(::malisim::LogLevel::kError, __VA_ARGS__)
