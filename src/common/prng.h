// Deterministic pseudo-random number generation.
//
// All stochastic pieces of the reproduction (workload generation, the
// Metropolis Monte-Carlo benchmark, the virtual power meter's accuracy noise)
// draw from these generators so that experiments are repeatable bit-for-bit
// given a seed. xoshiro256++ is used for its quality and speed; SplitMix64
// seeds it and derives independent streams.
#pragma once

#include <cmath>
#include <cstdint>

namespace malisim {

/// SplitMix64: used to expand a single user seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ PRNG (Blackman & Vigna). Not cryptographic.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  std::uint64_t NextU64() {
    const std::uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double NextDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound) {
    // Lemire's nearly-divisionless method would be overkill; modulo bias is
    // negligible for the bounds used here (<< 2^32), but we reject anyway.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      const std::uint64_t r = NextU64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Standard normal via Marsaglia polar method.
  double NextGaussian() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = NextDouble(-1.0, 1.0);
      v = NextDouble(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    have_spare_ = true;
    return u * m;
  }

  /// Derive an independent stream (distinct SplitMix64 expansion).
  Xoshiro256 Fork() { return Xoshiro256(NextU64() ^ 0xa5a5a5a5deadbeefULL); }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace malisim
