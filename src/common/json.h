// Minimal JSON support shared by every machine-readable artifact:
//  * JsonWriter — append-only streaming writer (was private to obs/export;
//    promoted here so the profiler export, the bench-report emitter and the
//    harness trace all produce JSON the same way).
//  * JsonValue / ParseJson — a small recursive-descent parser for the
//    tools that *read* our artifacts back (malisim-bench loads two
//    BENCH_*.json records and diffs them). Objects preserve insertion
//    order; numbers are doubles.
//
// All formatting is locale-independent (std::to_chars): a BENCH record or
// golden CSV written under a de_DE.UTF-8 locale is byte-identical to one
// written under C — see JsonNumber() and FormatDouble() in common/table.h.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace malisim {

/// Escapes a string for inclusion in a JSON string literal (quotes,
/// backslashes, newlines and other control characters).
std::string JsonEscape(const std::string& s);

/// Locale-independent shortest-faithful rendering of a double with up to
/// 17 significant digits (printf %.17g semantics under the C locale).
/// Non-finite values render as "0": JSON has no inf/nan and our metrics
/// treat them as absent signal.
std::string JsonNumber(double v);

/// Minimal streaming JSON writer: tracks whether the current aggregate
/// needs a comma. The caller is responsible for well-formedness (matching
/// Begin/End calls, Key before value inside objects).
class JsonWriter {
 public:
  void BeginObject() { Open('{'); }
  void EndObject() { Close('}'); }
  void BeginArray() { Open('['); }
  void EndArray() { Close(']'); }
  void Key(const std::string& k) {
    Comma();
    out_ += '"';
    out_ += JsonEscape(k);
    out_ += "\":";
    pending_value_ = true;
  }
  void String(const std::string& v) {
    Comma();
    out_ += '"';
    out_ += JsonEscape(v);
    out_ += '"';
  }
  void Number(double v) {
    Comma();
    out_ += JsonNumber(v);
  }
  void Number(std::uint64_t v) {
    Comma();
    out_ += std::to_string(v);
  }
  void Bool(bool v) {
    Comma();
    out_ += v ? "true" : "false";
  }
  const std::string& str() const { return out_; }

 private:
  void Open(char c) {
    Comma();
    out_ += c;
    need_comma_.push_back(false);
  }
  void Close(char c) {
    need_comma_.pop_back();
    out_ += c;
    if (!need_comma_.empty()) need_comma_.back() = true;
  }
  void Comma() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    if (!need_comma_.empty()) {
      if (need_comma_.back()) out_ += ',';
      need_comma_.back() = true;
    }
  }

  std::string out_;
  std::vector<bool> need_comma_;
  bool pending_value_ = false;
};

/// Parsed JSON value. A deliberately small surface: kind tag plus typed
/// accessors that return fallbacks instead of throwing, so report loaders
/// can probe optional fields without ceremony.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  /// Insertion-ordered object members (duplicate keys keep the last).
  std::vector<std::pair<std::string, JsonValue>> members;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Typed lookups with fallbacks, for optional report fields.
  double NumberOr(std::string_view key, double fallback) const;
  std::string StringOr(std::string_view key, const std::string& fallback) const;
};

/// Parses a complete JSON document. Trailing non-whitespace after the root
/// value, unterminated aggregates and malformed literals are
/// InvalidArgument with a byte offset in the message.
StatusOr<JsonValue> ParseJson(std::string_view text);

}  // namespace malisim
