// Unit conversion helpers and physical constants shared by the timing and
// power models. Frequencies/time are kept in double precision seconds/Hz;
// cycle counts in std::uint64_t.
#pragma once

#include <cstdint>

namespace malisim {

inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;

inline constexpr std::uint64_t KiB(std::uint64_t n) { return n << 10; }
inline constexpr std::uint64_t MiB(std::uint64_t n) { return n << 20; }
inline constexpr std::uint64_t GiB(std::uint64_t n) { return n << 30; }

/// Seconds taken by `cycles` at clock `hz`.
inline constexpr double CyclesToSeconds(double cycles, double hz) {
  return cycles / hz;
}

/// Cycles elapsed in `seconds` at clock `hz` (not rounded).
inline constexpr double SecondsToCycles(double seconds, double hz) {
  return seconds * hz;
}

/// Joules from average watts over seconds.
inline constexpr double Energy(double watts, double seconds) {
  return watts * seconds;
}

}  // namespace malisim
