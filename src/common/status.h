// Lightweight status / error-propagation types used across the library.
//
// The library avoids exceptions on hot simulation paths; fallible operations
// return `Status` or `StatusOr<T>`. Construction-time programming errors
// (verifier violations, bad indices) abort via MALI_CHECK, matching the
// fail-fast style of the rest of the codebase.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace malisim {

enum class ErrorCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,  // maps to CL_OUT_OF_RESOURCES at the tinycl boundary
  kUnimplemented,
  kInternal,
  kBuildFailure,  // maps to CL_BUILD_PROGRAM_FAILURE (compiler erratum)
  kUnavailable,         // transient runtime failure; retrying may succeed
  kAllocationFailure,   // maps to CL_MEM_OBJECT_ALLOCATION_FAILURE
  kDeadlineExceeded,    // watchdog: modelled-time budget exceeded
  kOverloaded,          // admission control shed the request (backpressure)
};

/// Human-readable name of an ErrorCode ("Ok", "InvalidArgument", ...).
std::string_view ErrorCodeName(ErrorCode code);

/// Value-semantic status: either OK or an error code plus message.
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

Status InvalidArgumentError(std::string message);
Status OutOfRangeError(std::string message);
Status FailedPreconditionError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status ResourceExhaustedError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status BuildFailureError(std::string message);
Status UnavailableError(std::string message);
Status AllocationFailureError(std::string message);
Status DeadlineExceededError(std::string message);
Status OverloadedError(std::string message);

namespace internal {
/// Logs the error behind a StatusOr::value() misuse, then aborts.
[[noreturn]] void StatusOrValueFailed(const Status& status);
}  // namespace internal

/// Either a value or an error Status. Minimal absl::StatusOr analogue.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = InternalError("StatusOr constructed from OK status");
    }
  }
  StatusOr(T value) : value_(std::move(value)) {}

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckHasValue();
    return *value_;
  }
  T& value() & {
    CheckHasValue();
    return *value_;
  }
  T&& value() && {
    CheckHasValue();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckHasValue() const {
    if (!value_.has_value()) {
      internal::StatusOrValueFailed(status_);
    }
  }

  Status status_;
  std::optional<T> value_;
};

namespace internal {
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);
}  // namespace internal

}  // namespace malisim

/// Fail-fast invariant check, active in all build types.
#define MALI_CHECK(expr)                                                  \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::malisim::internal::CheckFailed(__FILE__, __LINE__, #expr, "");    \
    }                                                                     \
  } while (0)

#define MALI_CHECK_MSG(expr, msg)                                         \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::malisim::internal::CheckFailed(__FILE__, __LINE__, #expr, (msg)); \
    }                                                                     \
  } while (0)

/// Propagate a non-OK Status to the caller.
#define MALI_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::malisim::Status _status = (expr);       \
    if (!_status.ok()) return _status;        \
  } while (0)
