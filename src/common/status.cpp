#include "common/status.h"

#include <cstdlib>

#include "common/log.h"

namespace malisim {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "Ok";
    case ErrorCode::kInvalidArgument:
      return "InvalidArgument";
    case ErrorCode::kOutOfRange:
      return "OutOfRange";
    case ErrorCode::kFailedPrecondition:
      return "FailedPrecondition";
    case ErrorCode::kNotFound:
      return "NotFound";
    case ErrorCode::kAlreadyExists:
      return "AlreadyExists";
    case ErrorCode::kResourceExhausted:
      return "ResourceExhausted";
    case ErrorCode::kUnimplemented:
      return "Unimplemented";
    case ErrorCode::kInternal:
      return "Internal";
    case ErrorCode::kBuildFailure:
      return "BuildFailure";
    case ErrorCode::kUnavailable:
      return "Unavailable";
    case ErrorCode::kAllocationFailure:
      return "AllocationFailure";
    case ErrorCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case ErrorCode::kOverloaded:
      return "Overloaded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out(ErrorCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

Status InvalidArgumentError(std::string message) {
  return Status(ErrorCode::kInvalidArgument, std::move(message));
}
Status OutOfRangeError(std::string message) {
  return Status(ErrorCode::kOutOfRange, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(ErrorCode::kFailedPrecondition, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(ErrorCode::kNotFound, std::move(message));
}
Status AlreadyExistsError(std::string message) {
  return Status(ErrorCode::kAlreadyExists, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(ErrorCode::kResourceExhausted, std::move(message));
}
Status UnimplementedError(std::string message) {
  return Status(ErrorCode::kUnimplemented, std::move(message));
}
Status InternalError(std::string message) {
  return Status(ErrorCode::kInternal, std::move(message));
}
Status BuildFailureError(std::string message) {
  return Status(ErrorCode::kBuildFailure, std::move(message));
}
Status UnavailableError(std::string message) {
  return Status(ErrorCode::kUnavailable, std::move(message));
}
Status AllocationFailureError(std::string message) {
  return Status(ErrorCode::kAllocationFailure, std::move(message));
}
Status DeadlineExceededError(std::string message) {
  return Status(ErrorCode::kDeadlineExceeded, std::move(message));
}
Status OverloadedError(std::string message) {
  return Status(ErrorCode::kOverloaded, std::move(message));
}

namespace internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& message) {
  MALI_LOG_ERROR("MALI_CHECK failed at %s:%d: %s%s%s", file, line, expr,
                 message.empty() ? "" : " — ", message.c_str());
  std::abort();
}

void StatusOrValueFailed(const Status& status) {
  MALI_LOG_ERROR("StatusOr::value() on error status: %s (code %d)",
                 status.ToString().c_str(), static_cast<int>(status.code()));
  std::abort();
}

}  // namespace internal
}  // namespace malisim
