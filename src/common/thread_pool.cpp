#include "common/thread_pool.h"

#include <algorithm>

#include "common/sim_options.h"

namespace malisim {

int SimOptions::ResolvedThreads() const {
  if (threads > 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int SimOptions::ResolvedWindow() const {
  if (replay_window > 0) return replay_window;
  return std::max(8, 2 * ResolvedThreads());
}

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

Status RunOrderedPipeline(ThreadPool* pool, std::size_t n, std::size_t window,
                          const std::function<Status(std::size_t)>& run,
                          const std::function<Status(std::size_t)>& replay) {
  if (pool == nullptr || pool->num_workers() <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      MALI_RETURN_IF_ERROR(run(i));
      MALI_RETURN_IF_ERROR(replay(i));
    }
    return Status::Ok();
  }

  window = std::max<std::size_t>(window, 1);
  std::mutex mu;
  std::condition_variable done_cv;
  std::vector<Status> statuses(n, Status::Ok());
  std::vector<bool> done(n, false);

  std::size_t submitted = 0;
  auto submit_one = [&] {
    const std::size_t i = submitted++;
    pool->Submit([&, i] {
      Status s = run(i);
      std::lock_guard<std::mutex> lock(mu);
      statuses[i] = std::move(s);
      done[i] = true;
      // Notify while holding the lock: the caller destroys `done_cv` as
      // soon as it observes every task done, and it can only observe that
      // under `mu` — so the notify must complete before `mu` is released
      // or the condvar could be destroyed mid-broadcast.
      done_cv.notify_all();
    });
  };

  Status first_error = Status::Ok();
  for (std::size_t r = 0; r < n; ++r) {
    // Keep up to `window` tasks at or beyond the replay cursor in flight.
    while (submitted < n && submitted < r + window) submit_one();
    {
      std::unique_lock<std::mutex> lock(mu);
      done_cv.wait(lock, [&] { return done[r]; });
      if (!statuses[r].ok()) {
        first_error = statuses[r];
        break;
      }
    }
    first_error = replay(r);
    if (!first_error.ok()) break;
  }
  // Await stragglers so no task touches its capture state after return.
  {
    std::unique_lock<std::mutex> lock(mu);
    done_cv.wait(lock, [&] {
      for (std::size_t i = 0; i < submitted; ++i) {
        if (!done[i]) return false;
      }
      return true;
    });
  }
  return first_error;
}

}  // namespace malisim
