#include "common/table.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/status.h"

namespace malisim {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  MALI_CHECK_MSG(!headers_.empty(), "table needs at least one column");
}

void Table::BeginRow() { rows_.emplace_back(); }

void Table::AddCell(std::string value) {
  MALI_CHECK_MSG(!rows_.empty(), "BeginRow before AddCell");
  MALI_CHECK_MSG(rows_.back().size() < headers_.size(), "row overflow");
  rows_.back().push_back(std::move(value));
}

void Table::AddNumber(double value, int precision) {
  AddCell(FormatDouble(value, precision));
}

void Table::AddMissing() { AddCell("n/a"); }

void Table::AddRow(std::vector<std::string> cells) {
  MALI_CHECK_MSG(cells.size() == headers_.size(), "row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::ToAscii() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto rule = [&] {
    std::string out = "+";
    for (std::size_t w : widths) {
      out.append(w + 2, '-');
      out += '+';
    }
    out += '\n';
    return out;
  };
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string out = "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      out += ' ';
      out += cell;
      out.append(widths[c] - cell.size() + 1, ' ');
      out += '|';
    }
    out += '\n';
    return out;
  };

  std::string out = rule();
  out += render_row(headers_);
  out += rule();
  for (const auto& row : rows_) out += render_row(row);
  out += rule();
  return out;
}

namespace {

std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

std::string Table::ToCsv() const {
  std::string out;
  auto append_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) out += ',';
      out += CsvEscape(cells[c]);
    }
    out += '\n';
  };
  append_row(headers_);
  for (const auto& row : rows_) append_row(row);
  return out;
}

std::string FormatDouble(double value, int precision) {
  if (!std::isfinite(value)) {
    // Match printf's spelling for the rare non-finite diagnostic cells.
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%f", value);
    return buf;
  }
  // std::to_chars(fixed) formats "as if by printf %f in the C locale":
  // byte-identical to the historical snprintf path, but immune to
  // LC_NUMERIC (no "1,50" under European locales).
  char buf[512];  // %f of huge doubles needs ~310 integral digits
  const auto res = std::to_chars(buf, buf + sizeof(buf), value,
                                 std::chars_format::fixed,
                                 precision < 0 ? 0 : precision);
  if (res.ec != std::errc()) {
    char fallback[64];
    std::snprintf(fallback, sizeof(fallback), "%.*f", precision, value);
    return fallback;
  }
  return std::string(buf, res.ptr);
}

std::string FormatDoubleFull(double value) {
  if (!std::isfinite(value)) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%g", value);
    return buf;
  }
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), value,
                                 std::chars_format::general, 17);
  return std::string(buf, res.ptr);
}

}  // namespace malisim
