// ASCII table and CSV rendering for figure reproduction output.
//
// The bench harness prints each paper figure both as an aligned ASCII table
// (human inspection) and as CSV (plotting). Cells are strings; numeric
// convenience setters format with a fixed precision.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace malisim {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  std::size_t num_columns() const { return headers_.size(); }
  std::size_t num_rows() const { return rows_.size(); }

  /// Starts a new row; subsequent Add* calls fill it left to right.
  void BeginRow();
  void AddCell(std::string value);
  void AddNumber(double value, int precision = 2);
  /// "n/a" cell (paper figures have missing bars, e.g. amcd FP64 on GPU).
  void AddMissing();

  /// Complete row added at once; must match the header width.
  void AddRow(std::vector<std::string> cells);

  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Aligned, boxed ASCII rendering.
  std::string ToAscii() const;
  /// RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  std::string ToCsv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `value` with `precision` digits after the decimal point.
/// Locale-independent (std::to_chars): the decimal separator is always '.'
/// regardless of LC_NUMERIC, so golden CSVs cannot break on locale.
std::string FormatDouble(double value, int precision);

/// Full-precision (17 significant digits, printf %.17g style) rendering,
/// also locale-independent. This is the golden-file number format: any
/// change to a modelled double changes the string.
std::string FormatDoubleFull(double value);

}  // namespace malisim
