#include "common/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace malisim {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  // to_chars with chars_format::general formats "as if by printf %g in the
  // C locale" — same digits as the historical %.17g path, but immune to
  // LC_NUMERIC (no "1,5" under European locales).
  const auto res = std::to_chars(buf, buf + sizeof(buf), v,
                                 std::chars_format::general, 17);
  return std::string(buf, res.ptr);
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    SkipWs();
    JsonValue root;
    MALI_RETURN_IF_ERROR(ParseValue(&root));
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing content after JSON document");
    }
    return root;
  }

 private:
  Status Error(const std::string& message) const {
    return InvalidArgumentError("JSON parse error at byte " +
                                std::to_string(pos_) + ": " + message);
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out) {
    if (depth_ > kMaxDepth) return Error("nesting too deep");
    SkipWs();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string_value);
      case 't':
        MALI_RETURN_IF_ERROR(ParseLiteral("true"));
        out->kind = JsonValue::Kind::kBool;
        out->bool_value = true;
        return Status::Ok();
      case 'f':
        MALI_RETURN_IF_ERROR(ParseLiteral("false"));
        out->kind = JsonValue::Kind::kBool;
        out->bool_value = false;
        return Status::Ok();
      case 'n':
        MALI_RETURN_IF_ERROR(ParseLiteral("null"));
        out->kind = JsonValue::Kind::kNull;
        return Status::Ok();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      return Error("invalid literal");
    }
    pos_ += lit.size();
    return Status::Ok();
  }

  Status ParseNumber(JsonValue* out) {
    const char* begin = text_.data() + pos_;
    const char* end = text_.data() + text_.size();
    double value = 0.0;
    // from_chars is locale-independent; it accepts the JSON number grammar
    // plus a few extensions (hex floats) we never emit.
    const auto res = std::from_chars(begin, end, value);
    if (res.ec != std::errc() || res.ptr == begin) {
      return Error("invalid number");
    }
    pos_ += static_cast<std::size_t>(res.ptr - begin);
    out->kind = JsonValue::Kind::kNumber;
    out->number_value = value;
    return Status::Ok();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          *out += '"';
          break;
        case '\\':
          *out += '\\';
          break;
        case '/':
          *out += '/';
          break;
        case 'n':
          *out += '\n';
          break;
        case 'r':
          *out += '\r';
          break;
        case 't':
          *out += '\t';
          break;
        case 'b':
          *out += '\b';
          break;
        case 'f':
          *out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + static_cast<std::size_t>(i)];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("invalid \\u escape");
            }
          }
          pos_ += 4;
          // UTF-8 encode the BMP code point (we never emit surrogates).
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Error("invalid escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseObject(JsonValue* out) {
    ++depth_;
    out->kind = JsonValue::Kind::kObject;
    Consume('{');
    SkipWs();
    if (Consume('}')) {
      --depth_;
      return Status::Ok();
    }
    while (true) {
      SkipWs();
      std::string key;
      MALI_RETURN_IF_ERROR(ParseString(&key));
      SkipWs();
      if (!Consume(':')) return Error("expected ':'");
      JsonValue value;
      MALI_RETURN_IF_ERROR(ParseValue(&value));
      out->members.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) {
        --depth_;
        return Status::Ok();
      }
      return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out) {
    ++depth_;
    out->kind = JsonValue::Kind::kArray;
    Consume('[');
    SkipWs();
    if (Consume(']')) {
      --depth_;
      return Status::Ok();
    }
    while (true) {
      JsonValue value;
      MALI_RETURN_IF_ERROR(ParseValue(&value));
      out->array.push_back(std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) {
        --depth_;
        return Status::Ok();
      }
      return Error("expected ',' or ']'");
    }
  }

  static constexpr int kMaxDepth = 128;

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  const JsonValue* found = nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) found = &value;  // duplicate keys: last wins
  }
  return found;
}

double JsonValue::NumberOr(std::string_view key, double fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->number_value : fallback;
}

std::string JsonValue::StringOr(std::string_view key,
                                const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->string_value : fallback;
}

StatusOr<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace malisim
