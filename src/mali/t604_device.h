// Mali-T604 device model: executes compiled KIR kernels over an NDRange,
// models elapsed time from tri-pipe occupancy, job-manager dispatch, cache
// behaviour, occupancy-dependent latency hiding and atomic serialization,
// and reports the activity profile for the power model.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/sim_options.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "kir/exec_types.h"
#include "kir/interp.h"
#include "kir/program.h"
#include "mali/compiler.h"
#include "mali/t604_params.h"
#include "power/profile.h"
#include "sim/device.h"
#include "sim/memory_system.h"

namespace malisim::obs {
class Recorder;
}  // namespace malisim::obs

namespace malisim::fault {
class FaultInjector;
}  // namespace malisim::fault

namespace malisim::mali {

struct GpuRunResult {
  /// Modelled kernel execution time, including driver launch overhead.
  double seconds = 0.0;
  /// Activity profile for the power model (CPU cores idle, GPU on).
  power::ActivityProfile profile;
  /// Functional execution counts aggregated over all shader cores.
  kir::WorkGroupRun run;
  /// Breakdown: per-core cycles, miss counts, bottleneck identification.
  StatRegistry stats;
};

class MaliT604Device : public sim::Device {
 public:
  explicit MaliT604Device(const MaliTimingParams& timing = MaliTimingParams(),
                          const MaliMemoryConfig& memory = MaliMemoryConfig());

  /// Executes the kernel over the config's active group sub-range (the
  /// full NDRange by default). Work-groups are distributed round-robin
  /// across shader cores by the Job Manager model. Fails with
  /// ResourceExhausted (CL_OUT_OF_RESOURCES) when the compiled kernel
  /// exceeded the per-thread register budget.
  StatusOr<GpuRunResult> Run(const CompiledKernel& kernel,
                             const kir::LaunchConfig& config,
                             kir::Bindings bindings);

  // --- sim::Device ------------------------------------------------------
  const sim::DeviceCaps& caps() const override { return caps_; }
  /// The uniform backend entry point: `kernel.compiled` must be the
  /// mali::CompiledKernel* the tinycl build produced.
  StatusOr<sim::DeviceRunResult> RunKernel(
      const sim::KernelHandle& kernel, const kir::LaunchConfig& config,
      kir::Bindings bindings) override;
  void FlushCaches() override { hierarchy_.Flush(); }

  const MaliTimingParams& timing() const { return timing_; }

  /// Host-side execution options. With threads == 1 (default) work-groups
  /// execute inline against the cache hierarchy, exactly as the original
  /// serial engine did. With threads > 1 the functional phase runs
  /// concurrently on a pool while recorded memory-event streams are
  /// replayed into the caches in the serial engine's canonical order, so
  /// modelled cycles/power/energy stay bit-identical. Host threads never
  /// change the four modelled shader cores.
  void set_sim_options(const SimOptions& options) override {
    options_ = options;
  }
  const SimOptions& sim_options() const { return options_; }

  /// Attaches an observability recorder (nullptr detaches). When attached,
  /// each Run() appends a KernelRecord with per-core counters and the
  /// interpreter's per-opcode tally. Strictly read-only with respect to the
  /// simulation: modelled seconds/power never depend on the recorder.
  void set_recorder(obs::Recorder* recorder) override {
    recorder_ = recorder;
  }

  /// Attaches a fault injector (nullptr detaches). The device consults it
  /// once per Run() for a modelled thermal-throttle/DVFS event that scales
  /// the launch's modelled seconds. The decision is taken on the serial
  /// launch path, so it is invariant under the host thread count.
  void set_fault_injector(fault::FaultInjector* injector) override {
    fault_injector_ = injector;
  }

  /// Execution-scope tag stamped onto emitted KernelRecords (see
  /// sim::Device::set_record_scope).
  void set_record_scope(std::string_view scope) override {
    record_scope_ = std::string(scope);
  }

  /// The §III-A work-group-size heuristic the driver applies when the host
  /// passes local_size = NULL: a modest power-of-two divisor of the global
  /// size, bounded by `budget` (callers shrink the budget per dimension so
  /// the product never exceeds it). It deliberately mirrors the paper's
  /// observation that "the driver is not always capable of doing a good
  /// selection" — it never picks more than 64 work-items total and so
  /// over-fragments large launches.
  static std::uint64_t DriverPickLocalSize(std::uint64_t global_size,
                                           std::uint64_t budget = 64);

 private:
  /// Functional results for one modelled shader core, produced by the
  /// execution phase (serial or parallel) and consumed by the timing phase.
  struct CoreAggregate {
    kir::WorkGroupRun run;
    std::uint64_t l1_misses = 0;
    std::uint64_t l2_misses = 0;
    std::uint64_t groups = 0;
    /// Per-opcode dynamic counts; only filled while a recorder is attached.
    std::array<std::uint64_t, kir::kNumOpcodeValues> opcode_tally{};
  };

  /// Record/replay execution across `host_threads` pool workers. `bytecode`
  /// is the shared VM compilation when `engine` is kBytecode (null under
  /// the interpreter).
  Status RunGroupsParallel(
      const kir::Program& program, const kir::LaunchConfig& config,
      const kir::Bindings& bindings, std::uint64_t local_bytes,
      int host_threads, KirExec engine,
      std::shared_ptr<const kir::vm::CompiledProgram> bytecode,
      std::vector<CoreAggregate>* agg,
      std::unordered_map<std::uint64_t, std::uint64_t>* atomic_lines);

  MaliTimingParams timing_;
  sim::DeviceCaps caps_;
  sim::MemoryHierarchy hierarchy_;
  sim::DramModel dram_;
  SimOptions options_;
  obs::Recorder* recorder_ = nullptr;
  fault::FaultInjector* fault_injector_ = nullptr;
  std::string record_scope_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::unique_ptr<std::byte[]>> scratch_;
  std::uint64_t scratch_bytes_ = 0;
};

}  // namespace malisim::mali
