// Mali kernel compiler model: the device-side half of the runtime kernel
// compilation the ARM driver performs (paper §II-B). Runs the generic IR
// passes, register-allocates (liveness-based footprint), derives thread
// occupancy, applies the qualifier scheduling bonuses, and reproduces the
// documented FP64 erratum and CL_OUT_OF_RESOURCES behaviours.
#pragma once

#include <cstdint>
#include <memory>

#include "common/status.h"
#include "kir/passes.h"
#include "kir/program.h"
#include "mali/t604_params.h"

namespace malisim::kir::vm {
struct CompiledProgram;
}  // namespace malisim::kir::vm

namespace malisim::mali {

struct CompiledKernel {
  const kir::Program* program = nullptr;
  kir::ProgramFeatures features;
  /// Bytecode for the kir VM (kir/vm/bytecode.h), compiled once per kernel
  /// as part of the pure analysis and shared by every executor the device
  /// models create for it (cache hits inherit it). Null only for kernels
  /// built before the bytecode layer existed or when compilation is
  /// bypassed; kir::Executor then compiles on the spot.
  std::shared_ptr<const kir::vm::CompiledProgram> bytecode;
  /// Register allocation result (peak live bytes per work-item).
  std::uint32_t live_reg_bytes = 0;
  /// Resident work-items per shader core at this register footprint.
  std::uint32_t threads_per_core = 0;
  /// True when the kernel exceeds the per-thread register budget; build
  /// succeeds (matching the ARM driver) but any enqueue fails with
  /// CL_OUT_OF_RESOURCES.
  bool exceeds_resources = false;
  /// Arithmetic-issue scale from aliasing/const guarantees (§III-B
  /// "Directives and Type Qualifiers"); 1.0 = no bonus.
  double sched_factor = 1.0;
};

/// The pure half of the compile: verification, feature analysis, register
/// allocation, occupancy and scheduling bonuses — a deterministic function
/// of (program, timing) with no fault-injection involvement, so its result
/// is content-addressable (mali::CompileCache). `exceeds_resources` is
/// computed against the nominal register budget; ApplyBuildFaults may
/// tighten it.
StatusOr<CompiledKernel> AnalyzeForMali(const kir::Program& program,
                                        const MaliTimingParams& timing);

/// The fault-gate half: probabilistic kBuild compiler crashes, the FP64
/// erratum quirk, and the (possibly kRegSqueeze-squeezed) register budget.
/// Consumes the injector's kBuild and kRegSqueeze decision streams in the
/// same order whether the analysis came from a fresh compile or a cache
/// hit — per-job fault schedules are independent of cache warmth.
Status ApplyBuildFaults(CompiledKernel* k, const kir::Program& program,
                        const MaliTimingParams& timing,
                        const MaliCompilerParams& params);

/// Compiles `program` for the T604: AnalyzeForMali + ApplyBuildFaults.
/// Fails with BuildFailure when the FP64 erratum triggers
/// (emulate_fp64_erratum). The program must outlive the compiled kernel.
StatusOr<CompiledKernel> CompileForMali(const kir::Program& program,
                                        const MaliTimingParams& timing,
                                        const MaliCompilerParams& params);

}  // namespace malisim::mali
