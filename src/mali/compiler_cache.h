// Content-addressed cache for Mali kernel compiles.
//
// The serve engine (DESIGN.md §14) builds the same handful of KIR programs
// thousands of times — once per job per attempt, because every job gets
// fresh devices for isolation. The pure half of the compile
// (mali::AnalyzeForMali plus the generic IR passes that precede it) is a
// deterministic function of the kernel text and the compile-relevant
// timing parameters, so it is shared process-wide through this cache. The
// fault-gate half (mali::ApplyBuildFaults) is *never* cached: it is
// re-applied on every build, hit or miss, so a job's fault schedule —
// which injector decisions fire, in which order — is bit-identical
// regardless of cache warmth. That property is what keeps per-seed replay
// exact while the cache is shared between concurrent workers.
//
// Thread safety: all methods are safe to call concurrently; entries are
// immutable once published (shared_ptr<const Entry>).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "kir/program.h"
#include "mali/compiler.h"
#include "mali/t604_params.h"

namespace malisim::mali {

class CompileCache {
 public:
  struct Entry {
    /// The program after the generic optimization passes (ConstantFold,
    /// DeadCodeElim) ran over the source text behind the key.
    kir::Program transformed;
    /// Pure analysis of `transformed` (AnalyzeForMali). `program` is null
    /// in the stored copy; consumers repoint it at their own copy of
    /// `transformed` before use. `analyzed.bytecode` (the VM lowering) is
    /// shared as-is: consumer copies of `transformed` are code-identical to
    /// it, so one compiled stream serves every hit.
    CompiledKernel analyzed;
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };

  /// Cache key: FNV-1a over the *pre-pass* kernel text plus every timing
  /// parameter the pure compile reads. Keying on the source (not post-pass)
  /// text lets a hit skip the passes too.
  static std::uint64_t Key(const kir::Program& program,
                           const MaliTimingParams& timing);

  /// Returns the entry for `key`, or nullptr on a miss.
  std::shared_ptr<const Entry> Lookup(std::uint64_t key);

  /// Publishes an entry for `key`. First writer wins on a race; returns
  /// the entry that ended up in the cache (the analysis is deterministic,
  /// so racing writers always carry equal payloads).
  std::shared_ptr<const Entry> Insert(std::uint64_t key, Entry entry);

  Stats stats() const;
  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const Entry>> entries_;
  Stats stats_;
};

}  // namespace malisim::mali
