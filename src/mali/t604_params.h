// Timing parameters of the Mali-T604 GPU model (4 shader cores @ 533 MHz,
// tri-pipe: 2x arithmetic + 1x load/store + 1x texturing, 128-bit vector
// ALUs, hardware atomics, 16 KB per-core L1, shared SCU-coherent L2).
//
// Modelling choices tied to paper §II-A / §III:
//  * Arithmetic work is counted in 128-bit pipe slots: a f32x4 op is one
//    slot, a scalar f32 op is *also* one slot — un-vectorized code wastes
//    3/4 of the ALU, which is the §III-B vectorization payoff.
//  * The LS pipe moves up to 128 bits per slot, so vloadN/vstoreN amortize
//    issue slots ("more efficient use of the available bandwidth").
//  * There is no warp divergence penalty anywhere: work-items are
//    independent hardware threads (§III-B "Thread Divergence").
//  * The Job Manager charges a fixed dispatch cost per work-group; fewer,
//    larger work-groups (vectorization, tuned local sizes) amortize it
//    ("reduction of the run-time scheduling overheads").
//  * Occupancy comes from register pressure: threads per core =
//    register-file bytes / live register bytes, capped at 256. Fewer
//    resident threads hide less memory latency.
//
// Values were calibrated jointly with the A15 parameters against the
// paper's Fig. 2-4 ratios; see EXPERIMENTS.md for paper-vs-model tables.
#pragma once

#include <cstdint>

#include "sim/cache.h"
#include "sim/dram.h"

namespace malisim::fault {
class FaultInjector;
}  // namespace malisim::fault

namespace malisim::mali {

struct MaliTimingParams {
  double clock_hz = 533e6;
  std::uint32_t num_cores = 4;
  std::uint32_t arith_pipes_per_core = 2;
  double pipe_width_bytes = 16.0;  // 128-bit vector registers/ALUs

  // Arithmetic-pipe slot multipliers per 128-bit chunk.
  double slots_arith = 0.5;   // VLIW bundles ~2 simple ops per slot
  double slots_mul = 0.5;
  double slots_special_f32 = 1.3;   // rsqrt/div/exp on the SFU path
  double slots_special_f64 = 3.5;   // fp64 special functions iterate
  double slots_special_int = 2.0;
  /// Splat (scalar -> vector broadcast): Midgard encodes scalar operands
  /// with a broadcast modifier, so it is nearly free.
  double slots_broadcast = 0.15;
  double slots_control = 1.5;       // loop/branch bookkeeping per op (scalar
                                    // loops starve the VLIW packer)
  double f64_chunk_factor = 1.6;    // fp64 ALU chunks run below f32 rate

  // Load/store pipe.
  double ls_bytes_per_slot = 16.0;  // 128 bits per LS slot
  double slots_ls_min = 1.0;        // every access costs at least one slot
  /// Extra LS-pipe occupancy per L1 miss: the access is replayed when the
  /// line returns. This is what makes scattered scalar gathers (spmv's
  /// x[col[k]], amcd's interleaved atom arrays) expensive on the T604 even
  /// though the L2 absorbs them.
  double ls_l1_miss_replay_slots = 1.2;
  double slots_atomic = 2.5;        // LS-pipe cost of an atomic
  /// Serialization cost per atomic on the hottest cache line (the L2
  /// atomic unit processes same-line atomics one at a time).
  double atomic_serialize_cycles = 10.0;

  // Barrier cost per work-group crossing.
  double barrier_cycles = 96.0;

  // Occupancy / latency hiding.
  std::uint32_t max_threads_per_core = 256;
  std::uint32_t reg_file_bytes_per_core = 64 * 1024;
  /// Hard per-thread budget; kernels above it fail with CL_OUT_OF_RESOURCES.
  /// 384 bytes separates the kernel population exactly as the paper reports:
  /// every single-precision kernel fits (heaviest: the nbody vector-gather
  /// kernel at ~304 B), the FP64 dmmm float4 kernel fits (~148 B), while the
  /// FP64 nbody (~592 B) and 2dcon (~472 B) optimized kernels exceed it and
  /// fail at enqueue (paper §V-A, Fig. 2(b)).
  std::uint32_t max_thread_reg_bytes = 384;
  double l2_hit_latency_sec = 50e-9;   // L1 miss, L2 hit
  double dram_latency_sec = 120e-9;    // L2 miss
  /// Misses overlapped = min(cap, resident_threads / threads_per_mlp).
  double latency_hiding_cap = 24.0;
  double threads_per_mlp = 8.0;

  // Job manager.
  double wg_dispatch_cycles = 600.0;    // per work-group, on its core
  double kernel_launch_overhead_sec = 45e-6;  // driver + job-chain setup

  // Modelled benefit of §III-B "Directives and Type Qualifiers": aliasing
  // guarantees (restrict on every buffer) let the compiler schedule across
  // memory operations; const adds a smaller gain.
  double restrict_sched_factor = 0.93;
  double const_sched_factor = 0.97;
};

/// GPU-side cache geometry (per-core L1, shared coherent L2) and the DRAM
/// view of the GPU. The T604's memory path is less prefetch-friendly than
/// the A15's, hence the lower streaming efficiency.
struct MaliMemoryConfig {
  // 8 KiB effective: half the physical 16 KiB, a proxy for the dilution
  // caused by up to 256 interleaved threads sharing it (the sequential
  // interpreter otherwise overstates per-thread locality; see DESIGN.md).
  sim::CacheConfig l1{/*size_bytes=*/8 * 1024, /*line_bytes=*/64,
                      /*associativity=*/4, /*write_allocate=*/true};
  sim::CacheConfig l2{/*size_bytes=*/1024 * 1024, /*line_bytes=*/64,
                      /*associativity=*/16, /*write_allocate=*/true};
  sim::DramConfig dram{/*peak_bandwidth_bytes_per_sec=*/12.8e9,
                       /*streaming_efficiency=*/0.65,
                       /*scattered_efficiency=*/0.22,
                       /*first_word_latency_sec=*/120e-9,
                       /*line_bytes=*/64};
};

/// Kernel-compiler behaviour switches.
struct MaliCompilerParams {
  /// Reproduce the documented 2013 driver erratum: FP64 special functions
  /// inside a data-dependent loop (the amcd Metropolis shape) fail to
  /// compile (paper §V-A). Disable to see what the fixed compiler would do.
  bool emulate_fp64_erratum = true;

  /// Optional fault injector (Context::set_fault_injector wires it). When
  /// set, the erratum and register-budget quirks route through its
  /// FaultPlan and the compiler additionally honours probabilistic kBuild
  /// failures and kRegSqueeze budget squeezes. Null = the quirks apply
  /// with their structural conditions alone (identical behaviour).
  fault::FaultInjector* injector = nullptr;
};

}  // namespace malisim::mali
