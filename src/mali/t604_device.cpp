#include "mali/t604_device.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/log.h"
#include "fault/injector.h"
#include "kir/vm/bytecode.h"
#include "obs/recorder.h"

namespace malisim::mali {
namespace {

constexpr std::uint64_t kScratchSimBase = 0x7e00'0000'0000ULL;
constexpr std::uint64_t kScratchStride = 16ULL << 20;

/// Per-shader-core memory sink; also feeds the device-wide atomic
/// contention tracker.
class ShaderCoreSink final : public kir::MemorySink {
 public:
  ShaderCoreSink(sim::MemoryHierarchy* hierarchy, std::uint32_t core,
                 std::unordered_map<std::uint64_t, std::uint64_t>* atomic_lines)
      : hierarchy_(hierarchy), core_(core), atomic_lines_(atomic_lines) {}

  void OnAccess(std::uint64_t addr, std::uint32_t bytes, bool is_write) override {
    const sim::AccessOutcome out = hierarchy_->Access(core_, addr, bytes, is_write);
    l1_misses += out.l1_misses;
    l2_misses += out.l2_misses;
  }

  void OnAtomic(std::uint64_t addr, std::uint32_t bytes) override {
    OnAccess(addr, bytes, false);
    OnAccess(addr, bytes, true);
    // Contention is only meaningful for addresses shared across work-groups;
    // __local privatized bins (scratch range) never contend between the
    // groups that reuse the same per-core scratch over time.
    if (addr < kScratchSimBase) ++(*atomic_lines_)[addr / 64];
  }

  std::uint64_t l1_misses = 0;
  std::uint64_t l2_misses = 0;

 private:
  sim::MemoryHierarchy* hierarchy_;
  std::uint32_t core_;
  std::unordered_map<std::uint64_t, std::uint64_t>* atomic_lines_;
};

struct PipeSlots {
  double arith = 0.0;
  double ls = 0.0;
};

PipeSlots CountSlots(const MaliTimingParams& t, const kir::OpHistogram& ops) {
  // Compensated sums: histogram entries span many orders of magnitude
  // (billions of cheap slots next to a handful of expensive ones), and the
  // totals feed straight into the cycle/energy model.
  KahanSum arith;
  KahanSum ls;
  ops.ForEach([&](kir::OpClass c, kir::ScalarType st, std::uint8_t lanes,
                  std::uint64_t n) {
    const double bytes = static_cast<double>(lanes) * kir::ScalarBytes(st);
    const double chunks = std::max(1.0, std::ceil(bytes / t.pipe_width_bytes));
    const bool f64 = st == kir::ScalarType::kF64;
    const double dn = static_cast<double>(n);
    switch (c) {
      case kir::OpClass::kArithSimple:
        arith += dn * chunks * t.slots_arith * (f64 ? t.f64_chunk_factor : 1.0);
        break;
      case kir::OpClass::kArithMul:
        arith += dn * chunks * t.slots_mul * (f64 ? t.f64_chunk_factor : 1.0);
        break;
      case kir::OpClass::kArithSpecial: {
        double mult = t.slots_special_int;
        if (st == kir::ScalarType::kF32) mult = t.slots_special_f32;
        if (f64) mult = t.slots_special_f64;
        arith += dn * chunks * mult;
        break;
      }
      case kir::OpClass::kBroadcast:
        arith += dn * t.slots_broadcast;
        break;
      case kir::OpClass::kControl:
        arith += dn * t.slots_control;
        break;
      case kir::OpClass::kLoad:
      case kir::OpClass::kStore:
        ls += dn * std::max(t.slots_ls_min,
                            std::ceil(bytes / t.ls_bytes_per_slot));
        break;
      case kir::OpClass::kAtomic:
        ls += dn * t.slots_atomic;
        break;
      case kir::OpClass::kBarrier:
        // Charged separately per work-group crossing.
        break;
      case kir::OpClass::kNumClasses:
        break;
    }
  });
  return {arith.value(), ls.value()};
}

}  // namespace

MaliT604Device::MaliT604Device(const MaliTimingParams& timing,
                               const MaliMemoryConfig& memory)
    : timing_(timing),
      hierarchy_(sim::HierarchyConfig{/*has_l1=*/true, timing.num_cores,
                                      memory.l1, memory.l2}),
      dram_(memory.dram) {
  caps_.name = "Mali-T604 (modelled)";
  caps_.kind = sim::BackendKind::kMali;
  caps_.compute_units = timing_.num_cores;
  caps_.max_work_group_size = 256;  // CL_DEVICE_MAX_WORK_GROUP_SIZE
  caps_.fp64 = true;  // OpenCL Full Profile (the paper's premise)
  caps_.clock_hz = timing_.clock_hz;
  caps_.unified_memory = true;  // Exynos 5250: one DRAM for CPU and GPU
  caps_.throughput_hint = timing_.clock_hz *
                          static_cast<double>(timing_.num_cores) *
                          timing_.arith_pipes_per_core;
}

StatusOr<sim::DeviceRunResult> MaliT604Device::RunKernel(
    const sim::KernelHandle& kernel, const kir::LaunchConfig& config,
    kir::Bindings bindings) {
  if (kernel.compiled == nullptr) {
    return InvalidArgumentError(
        "mali-t604: RunKernel needs the compiled kernel handle");
  }
  StatusOr<GpuRunResult> run =
      Run(*static_cast<const CompiledKernel*>(kernel.compiled), config,
          std::move(bindings));
  if (!run.ok()) return run.status();
  return sim::DeviceRunResult{run->seconds, run->profile,
                              std::move(run->run), std::move(run->stats)};
}

std::uint64_t MaliT604Device::DriverPickLocalSize(std::uint64_t global_size,
                                                  std::uint64_t budget) {
  // Largest power-of-two divisor of the global size within the budget.
  std::uint64_t pick = 1;
  while (pick * 2 <= budget && global_size % (pick * 2) == 0) pick *= 2;
  return pick;
}

StatusOr<GpuRunResult> MaliT604Device::Run(const CompiledKernel& kernel,
                                           const kir::LaunchConfig& config,
                                           kir::Bindings bindings) {
  MALI_CHECK(kernel.program != nullptr);
  if (kernel.exceeds_resources) {
    MALI_LOG_WARN("mali: kernel '%s' exceeds the register budget "
                  "(%u bytes/work-item, budget %u) -> CL_OUT_OF_RESOURCES",
                  kernel.program->name.c_str(), kernel.live_reg_bytes,
                  timing_.max_thread_reg_bytes);
    return ResourceExhaustedError(
        "CL_OUT_OF_RESOURCES: kernel '" + kernel.program->name + "' needs " +
        std::to_string(kernel.live_reg_bytes) +
        " bytes of registers per work-item (budget " +
        std::to_string(timing_.max_thread_reg_bytes) + ")");
  }
  hierarchy_.ResetStats();
  dram_.ResetStats();

  const kir::Program& program = *kernel.program;
  std::uint64_t local_bytes = 0;
  for (const kir::LocalArrayDecl& local : program.locals) {
    local_bytes += static_cast<std::uint64_t>(local.elems) *
                   kir::ScalarBytes(local.elem);
  }
  const std::uint32_t cores = timing_.num_cores;
  if (local_bytes > scratch_bytes_ || scratch_.empty()) {
    scratch_.clear();
    for (std::uint32_t c = 0; c < cores; ++c) {
      scratch_.push_back(std::make_unique<std::byte[]>(local_bytes + 64));
    }
    scratch_bytes_ = local_bytes;
  }

  const std::uint64_t active_groups = config.active_groups();
  const auto group_dims = config.num_groups();

  GpuRunResult result;
  std::unordered_map<std::uint64_t, std::uint64_t> atomic_lines;
  std::vector<CoreAggregate> agg(cores);

  // Phase 1 — functional execution + cache simulation, filling one
  // CoreAggregate per modelled shader core. With one host thread this is
  // the original inline engine; with more, work-groups execute
  // concurrently and their recorded memory streams are replayed into the
  // (order-dependent) cache hierarchy in this exact serial order.
  // Host-time attribution (HostProf) samples the interpreter only on the
  // serial engine path; the record/replay path is still covered by the
  // enclosing execute-phase span.
  obs::HostProf* host_prof =
      recorder_ != nullptr ? recorder_->host_prof() : nullptr;
  obs::InterpProfile interp_prof(host_prof, program,
                                 static_cast<int>(cores));
  const int host_threads = options_.ResolvedThreads();
  const KirExec engine = options_.kir_exec;
  std::shared_ptr<const kir::vm::CompiledProgram> bytecode = kernel.bytecode;
  if (engine == KirExec::kBytecode && bytecode == nullptr) {
    // Kernels built through tinycl carry bytecode already; compile here for
    // direct CompileForMali-era callers that predate the field.
    obs::HostProf::PhaseSpan vm_span(host_prof, obs::HostPhase::kVmCompile);
    StatusOr<std::shared_ptr<const kir::vm::CompiledProgram>> compiled =
        kir::vm::CompileProgram(program);
    if (!compiled.ok()) return compiled.status();
    bytecode = *std::move(compiled);
  }
  {
    obs::HostProf::PhaseSpan execute_span(host_prof,
                                          obs::HostPhase::kExecute);
    if (host_threads <= 1) {
      // The vm/exec span nests inside execute on the serial path only; pool
      // workers must not open spans (they would close with no enclosing
      // frame and pollute root coverage).
      obs::HostProf::PhaseSpan vm_exec_span(
          engine == KirExec::kBytecode ? host_prof : nullptr,
          obs::HostPhase::kVmExec);
      for (std::uint32_t c = 0; c < cores; ++c) {
        kir::Bindings core_bindings = bindings;
        core_bindings.local_scratch = {scratch_[c].get(),
                                       kScratchSimBase + c * kScratchStride,
                                       local_bytes + 64};
        StatusOr<kir::Executor> executor = kir::Executor::Create(
            &program, config, std::move(core_bindings), engine, bytecode);
        if (!executor.ok()) return executor.status();
        if (recorder_ != nullptr && recorder_->counters_enabled()) {
          executor->set_opcode_tally(agg[c].opcode_tally.data());
        }
        executor->set_host_time(interp_prof.sink(static_cast<int>(c)));

        ShaderCoreSink sink(&hierarchy_, c, &atomic_lines);
        // Job Manager: round-robin distribution across shader cores, over
        // the launch's active group sub-range (the whole grid unless a
        // co-execution backend split it).
        for (std::uint64_t k = c; k < active_groups; k += cores) {
          const std::uint64_t g = config.group_begin + k;
          const std::uint64_t gx = g % group_dims[0];
          const std::uint64_t gy = (g / group_dims[0]) % group_dims[1];
          const std::uint64_t gz = g / (group_dims[0] * group_dims[1]);
          MALI_RETURN_IF_ERROR(
              executor->RunGroup({gx, gy, gz}, &sink, &agg[c].run));
          ++agg[c].groups;
        }
        agg[c].l1_misses = sink.l1_misses;
        agg[c].l2_misses = sink.l2_misses;
      }
    } else {
      MALI_RETURN_IF_ERROR(RunGroupsParallel(program, config, bindings,
                                             local_bytes, host_threads, engine,
                                             bytecode, &agg, &atomic_lines));
    }
  }
  interp_prof.Merge(program.name);

  // Phase 2 — timing model over the per-core aggregates.
  obs::HostProf::PhaseSpan merge_span(host_prof, obs::HostPhase::kMerge);
  double core_sec_max = 0.0;
  double busy_sec[power::kNumMaliCores] = {};
  const bool recording = recorder_ != nullptr && recorder_->counters_enabled();
  std::vector<obs::CoreKernelCounters> core_counters(recording ? cores : 0);

  // Latency hiding from occupancy: resident threads overlap misses. The
  // resident count is limited by the register file (compiler) AND by how
  // many work-items the launch actually puts on a core (§III-A: "the
  // global work size must be in the order of several thousands").
  const double items_per_core =
      static_cast<double>(config.active_work_items()) / cores;
  const double resident =
      std::min(static_cast<double>(kernel.threads_per_core), items_per_core);
  const double hiding = std::max(
      1.0, std::min(timing_.latency_hiding_cap,
                    resident / timing_.threads_per_mlp));

  for (std::uint32_t c = 0; c < cores; ++c) {
    const kir::WorkGroupRun& core_run = agg[c].run;
    const std::uint64_t groups_on_core = agg[c].groups;
    const std::uint64_t core_l1_misses = agg[c].l1_misses;
    const std::uint64_t core_l2_misses = agg[c].l2_misses;

    const PipeSlots slots = CountSlots(timing_, core_run.ops);
    // Intra-group load imbalance stretches issue time: the Job Manager
    // retires a work-group only when its heaviest work-item finishes.
    const double imbalance = core_run.imbalance_factor();
    // The qualifier scheduling bonus applies to both pipes: aliasing
    // guarantees (restrict) are what let the compiler reorder across
    // memory operations.
    const double arith_cycles = slots.arith * kernel.sched_factor *
                                imbalance / timing_.arith_pipes_per_core;
    const double ls_cycles =
        (slots.ls + static_cast<double>(core_l1_misses) *
                        timing_.ls_l1_miss_replay_slots) *
        kernel.sched_factor * imbalance;
    const double issue_cycles = std::max(arith_cycles, ls_cycles);
    const double dispatch_cycles =
        static_cast<double>(groups_on_core) * timing_.wg_dispatch_cycles;
    const double barrier_cycles =
        static_cast<double>(core_run.barriers_crossed) * timing_.barrier_cycles;

    const double l2_hits =
        static_cast<double>(core_l1_misses - core_l2_misses);
    const double stall_sec =
        (l2_hits * timing_.l2_hit_latency_sec +
         static_cast<double>(core_l2_misses) * timing_.dram_latency_sec) /
        hiding;

    const double cycles = issue_cycles + dispatch_cycles + barrier_cycles;
    const double core_sec = cycles / timing_.clock_hz + stall_sec;
    // Power-relevant utilization: raw pipe activity. Imbalance waits,
    // dispatch gaps and memory stalls clock-gate the pipes.
    busy_sec[c] = std::max(slots.arith * kernel.sched_factor /
                               timing_.arith_pipes_per_core,
                           slots.ls) /
                  timing_.clock_hz;
    core_sec_max = std::max(core_sec_max, core_sec);

    if (recording) {
      obs::CoreKernelCounters& cc = core_counters[c];
      cc.groups = groups_on_core;
      cc.l1_misses = core_l1_misses;
      cc.l2_misses = core_l2_misses;
      cc.arith_cycles = arith_cycles;
      cc.ls_cycles = ls_cycles;
      cc.dispatch_cycles = dispatch_cycles;
      cc.stall_sec = stall_sec;
      cc.busy_sec = busy_sec[c];
      cc.core_sec = core_sec;
      cc.imbalance = imbalance;
    }

    result.run.MergeFrom(core_run);
    const std::string prefix = "mali.core" + std::to_string(c);
    result.stats.Set(prefix + ".arith_cycles", arith_cycles);
    result.stats.Set(prefix + ".ls_cycles", ls_cycles);
    result.stats.Set(prefix + ".dispatch_cycles", dispatch_cycles);
    result.stats.Set(prefix + ".stall_sec", stall_sec);
    result.stats.Set(prefix + ".l1_misses",
                     static_cast<double>(core_l1_misses));
    result.stats.Set(prefix + ".l2_misses",
                     static_cast<double>(core_l2_misses));
    result.stats.Set(prefix + ".imbalance", imbalance);
  }

  // Device-wide floors: DRAM bandwidth and atomic serialization on the
  // hottest line.
  const double dram_sec = dram_.TransferTime(hierarchy_.dram_fill_lines(),
                                             hierarchy_.dram_writeback_lines(),
                                             hierarchy_.sequential_fraction());
  std::uint64_t hottest_line = 0;
  for (const auto& [line, count] : atomic_lines) {
    hottest_line = std::max(hottest_line, count);
  }
  const double atomic_sec = static_cast<double>(hottest_line) *
                            timing_.atomic_serialize_cycles / timing_.clock_hz;

  double seconds = std::max({core_sec_max, dram_sec, atomic_sec});
  seconds += timing_.kernel_launch_overhead_sec;

  // Modelled thermal-throttle/DVFS event: the governor drops the clock for
  // this launch, stretching elapsed time (pipes busy the same absolute
  // time, so utilization fractions fall — the throttled core idles more).
  if (fault_injector_ != nullptr) {
    const double throttle = fault_injector_->ThrottleTimeFactor(program.name);
    seconds *= throttle;
    if (throttle != 1.0) {
      result.stats.Set("mali.throttle_factor", throttle);
    }
  }

  result.seconds = seconds;
  result.profile.seconds = seconds;
  result.profile.gpu_on = true;
  for (std::uint32_t c = 0; c < cores && c < power::kNumMaliCores; ++c) {
    result.profile.gpu_core_busy[c] = std::clamp(busy_sec[c] / seconds, 0.0, 1.0);
  }
  // Host core 0 babysits the queue (blocking clFinish, mostly WFI).
  result.profile.cpu_busy[0] = 0.02;
  result.profile.dram_bytes = hierarchy_.dram_bytes();

  result.stats.Set("mali.seconds", seconds);
  result.stats.Set("mali.dram_bw_floor_sec", dram_sec);
  result.stats.Set("mali.atomic_floor_sec", atomic_sec);
  result.stats.Set("mali.seq_fraction", hierarchy_.sequential_fraction());
  result.stats.Set("mali.dram_bytes", static_cast<double>(hierarchy_.dram_bytes()));
  result.stats.Set("mali.threads_per_core",
                   static_cast<double>(kernel.threads_per_core));
  result.stats.Set("mali.live_reg_bytes",
                   static_cast<double>(kernel.live_reg_bytes));

  if (recording) {
    obs::KernelRecord record;
    record.kernel = program.name;
    record.device = "mali-t604";
    record.scope = record_scope_;
    record.seconds = seconds;
    record.cores = std::move(core_counters);
    for (const CoreAggregate& a : agg) {
      for (std::size_t op = 0; op < record.opcode_counts.size(); ++op) {
        record.opcode_counts[op] += a.opcode_tally[op];
      }
    }
    record.ops = result.run.ops;
    record.loads = result.run.loads;
    record.stores = result.run.stores;
    record.load_bytes = result.run.load_bytes;
    record.store_bytes = result.run.store_bytes;
    record.atomics = result.run.atomics;
    record.barriers_crossed = result.run.barriers_crossed;
    record.work_items = result.run.work_items;
    record.dram_bytes = hierarchy_.dram_bytes();
    record.dram_bw_floor_sec = dram_sec;
    record.atomic_floor_sec = atomic_sec;
    record.live_reg_bytes = kernel.live_reg_bytes;
    record.threads_per_core = kernel.threads_per_core;
    record.sched_factor = kernel.sched_factor;
    record.profile = result.profile;
    // What limited this launch: a device-wide floor if one of them won the
    // max() above, otherwise the dominant cost on the slowest core.
    if (dram_sec >= core_sec_max && dram_sec >= atomic_sec) {
      record.bottleneck = "dram-bandwidth";
    } else if (atomic_sec >= core_sec_max) {
      record.bottleneck = "atomic-serialization";
    } else {
      double worst_issue_sec = 0.0;
      double worst_stall_sec = 0.0;
      bool arith_bound = true;
      for (const obs::CoreKernelCounters& cc : record.cores) {
        const double issue_sec =
            (std::max(cc.arith_cycles, cc.ls_cycles) + cc.dispatch_cycles) /
            timing_.clock_hz;
        if (issue_sec + cc.stall_sec >
            worst_issue_sec + worst_stall_sec) {
          worst_issue_sec = issue_sec;
          worst_stall_sec = cc.stall_sec;
          arith_bound = cc.arith_cycles >= cc.ls_cycles;
        }
      }
      if (worst_stall_sec > worst_issue_sec) {
        record.bottleneck = "memory-latency";
      } else {
        record.bottleneck = arith_bound ? "arith-pipe" : "ls-pipe";
      }
    }
    recorder_->AddKernel(std::move(record));
  }
  return result;
}

Status MaliT604Device::RunGroupsParallel(
    const kir::Program& program, const kir::LaunchConfig& config,
    const kir::Bindings& bindings, std::uint64_t local_bytes, int host_threads,
    KirExec engine, std::shared_ptr<const kir::vm::CompiledProgram> bytecode,
    std::vector<CoreAggregate>* agg,
    std::unordered_map<std::uint64_t, std::uint64_t>* atomic_lines) {
  const std::uint32_t cores = timing_.num_cores;
  const std::uint64_t active_groups = config.active_groups();
  const auto group_dims = config.num_groups();

  // One task = (modelled core, contiguous chunk of that core's round-robin
  // group list). Tasks are ordered core-major so replaying them in task
  // order reproduces the serial engine's cache access order exactly.
  struct GroupTask {
    std::uint32_t core = 0;
    std::uint64_t begin = 0;  // index into the core's round-robin sequence
    std::uint64_t end = 0;
  };
  const std::uint64_t chunks_per_core = std::max<std::uint64_t>(
      1, (4 * static_cast<std::uint64_t>(host_threads) + cores - 1) / cores);
  std::vector<GroupTask> tasks;
  for (std::uint32_t c = 0; c < cores; ++c) {
    const std::uint64_t groups_on_core =
        c < active_groups ? (active_groups - c + cores - 1) / cores : 0;
    const std::uint64_t chunks =
        std::min<std::uint64_t>(chunks_per_core,
                                std::max<std::uint64_t>(groups_on_core, 1));
    for (std::uint64_t k = 0; k < chunks; ++k) {
      tasks.push_back({c, groups_on_core * k / chunks,
                       groups_on_core * (k + 1) / chunks});
    }
  }

  if (pool_ == nullptr || pool_->num_workers() != host_threads) {
    pool_ = std::make_unique<ThreadPool>(host_threads);
  }

  std::vector<std::vector<kir::MemEvent>> task_events(tasks.size());
  std::vector<kir::WorkGroupRun> task_runs(tasks.size());
  std::vector<std::vector<std::byte>> task_scratch(tasks.size());
  // Per-task opcode tallies (integer, hence commutative): workers fill them
  // race-free and the canonical-order replay merges them per modelled core.
  const bool recording = recorder_ != nullptr && recorder_->counters_enabled();
  std::vector<std::array<std::uint64_t, kir::kNumOpcodeValues>> task_tallies(
      recording ? tasks.size() : 0);

  auto run_task = [&](std::size_t i) -> Status {
    const GroupTask& task = tasks[i];
    kir::Bindings task_bindings = bindings;
    // Private zeroed __local backing; the simulated address stays the
    // modelled core's scratch address so recorded streams match the serial
    // engine's byte-for-byte.
    task_scratch[i].assign(local_bytes + 64, std::byte{0});
    task_bindings.local_scratch = {task_scratch[i].data(),
                                   kScratchSimBase + task.core * kScratchStride,
                                   local_bytes + 64};
    StatusOr<kir::Executor> executor = kir::Executor::Create(
        &program, config, std::move(task_bindings), engine, bytecode);
    if (!executor.ok()) return executor.status();
    if (recording) executor->set_opcode_tally(task_tallies[i].data());

    kir::RecordingMemorySink sink(&task_events[i]);
    for (std::uint64_t k = task.begin; k < task.end; ++k) {
      const std::uint64_t g = config.group_begin + task.core + k * cores;
      const std::uint64_t gx = g % group_dims[0];
      const std::uint64_t gy = (g / group_dims[0]) % group_dims[1];
      const std::uint64_t gz = g / (group_dims[0] * group_dims[1]);
      MALI_RETURN_IF_ERROR(executor->RunGroup({gx, gy, gz}, &sink, &task_runs[i]));
    }
    return Status::Ok();
  };

  auto replay_task = [&](std::size_t i) -> Status {
    const GroupTask& task = tasks[i];
    CoreAggregate& a = (*agg)[task.core];
    for (const kir::MemEvent& e : task_events[i]) {
      if (e.kind == kir::MemEvent::kAtomic) {
        const sim::AccessOutcome rd =
            hierarchy_.Access(task.core, e.addr, e.bytes, /*is_write=*/false);
        const sim::AccessOutcome wr =
            hierarchy_.Access(task.core, e.addr, e.bytes, /*is_write=*/true);
        a.l1_misses += rd.l1_misses + wr.l1_misses;
        a.l2_misses += rd.l2_misses + wr.l2_misses;
        if (e.addr < kScratchSimBase) ++(*atomic_lines)[e.addr / 64];
      } else {
        const sim::AccessOutcome out = hierarchy_.Access(
            task.core, e.addr, e.bytes, e.kind == kir::MemEvent::kWrite);
        a.l1_misses += out.l1_misses;
        a.l2_misses += out.l2_misses;
      }
    }
    a.run.MergeFrom(task_runs[i]);
    a.groups += task.end - task.begin;
    if (recording) {
      for (std::size_t op = 0; op < a.opcode_tally.size(); ++op) {
        a.opcode_tally[op] += task_tallies[i][op];
      }
    }
    // Release buffered state as the replay cursor passes.
    task_events[i] = {};
    task_scratch[i] = {};
    return Status::Ok();
  };

  return RunOrderedPipeline(pool_.get(), tasks.size(),
                            static_cast<std::size_t>(options_.ResolvedWindow()),
                            run_task, replay_task);
}

}  // namespace malisim::mali
