#include "mali/compiler_cache.h"

#include <cstring>

namespace malisim::mali {
namespace {

std::uint64_t Fnv1a64Bytes(std::uint64_t h, const void* data,
                           std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t MixU32(std::uint64_t h, std::uint32_t v) {
  return Fnv1a64Bytes(h, &v, sizeof(v));
}

std::uint64_t MixDouble(std::uint64_t h, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return Fnv1a64Bytes(h, &bits, sizeof(bits));
}

}  // namespace

std::uint64_t CompileCache::Key(const kir::Program& program,
                                const MaliTimingParams& timing) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  const std::string text = kir::ToText(program);
  h = Fnv1a64Bytes(h, text.data(), text.size());
  // Every timing field the pure compile (AnalyzeForMali) reads. The fault
  // gates read more (via the injector), but those run outside the cache.
  h = MixU32(h, timing.max_thread_reg_bytes);
  h = MixU32(h, timing.reg_file_bytes_per_core);
  h = MixU32(h, timing.max_threads_per_core);
  h = MixDouble(h, timing.restrict_sched_factor);
  h = MixDouble(h, timing.const_sched_factor);
  return h;
}

std::shared_ptr<const CompileCache::Entry> CompileCache::Lookup(
    std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return it->second;
}

std::shared_ptr<const CompileCache::Entry> CompileCache::Insert(
    std::uint64_t key, Entry entry) {
  auto shared = std::make_shared<const Entry>(std::move(entry));
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = entries_.emplace(key, std::move(shared));
  return it->second;
}

CompileCache::Stats CompileCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t CompileCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace malisim::mali
