#include "mali/compiler.h"

#include <algorithm>

#include "fault/injector.h"
#include "kir/vm/bytecode.h"

namespace malisim::mali {

StatusOr<CompiledKernel> AnalyzeForMali(const kir::Program& program,
                                        const MaliTimingParams& timing) {
  if (!program.finalized()) {
    return FailedPreconditionError("program not finalized: " + program.name);
  }
  MALI_RETURN_IF_ERROR(kir::Verify(program));

  CompiledKernel k;
  k.program = &program;
  k.features = kir::AnalyzeFeatures(program);

  k.live_reg_bytes = std::max(16u, kir::MaxLiveRegisterBytes(program));
  // Nominal per-thread register budget; ApplyBuildFaults re-evaluates it
  // under a possible kRegSqueeze trip.
  k.exceeds_resources = k.live_reg_bytes > timing.max_thread_reg_bytes;

  std::uint32_t threads = timing.reg_file_bytes_per_core / k.live_reg_bytes;
  threads = threads / 4 * 4;  // thread groups of 4 in the tripipe frontend
  k.threads_per_core =
      std::clamp<std::uint32_t>(threads, 4, timing.max_threads_per_core);

  bool all_restrict = true;
  bool all_ro_const = true;
  bool any_buffer = false;
  bool any_ro_buffer = false;
  for (const kir::ArgDecl& arg : program.args) {
    if (arg.kind == kir::ArgKind::kScalar) continue;
    any_buffer = true;
    if (!arg.is_restrict) all_restrict = false;
    if (arg.kind == kir::ArgKind::kBufferRO) {
      any_ro_buffer = true;
      if (!arg.is_const) all_ro_const = false;
    }
  }
  k.sched_factor = 1.0;
  if (any_buffer && all_restrict) k.sched_factor *= timing.restrict_sched_factor;
  if (any_ro_buffer && all_ro_const) k.sched_factor *= timing.const_sched_factor;
  return k;
}

Status ApplyBuildFaults(CompiledKernel* k, const kir::Program& program,
                        const MaliTimingParams& timing,
                        const MaliCompilerParams& params) {
  fault::FaultInjector* injector = params.injector;
  if (injector != nullptr &&
      injector->Trip(fault::FaultSite::kBuild, program.name)) {
    return BuildFailureError(
        "CL_BUILD_PROGRAM_FAILURE (injected fault): mali kernel compiler "
        "crashed building '" +
        program.name + "'");
  }

  // The amcd FP64 erratum, generalized as an always-on FaultPlan quirk:
  // the injector (when attached) decides whether the structural condition
  // fires; a null injector preserves the bare condition.
  const bool erratum_trips =
      injector != nullptr
          ? injector->TripFp64Erratum(
                k->features.has_f64_special_in_divergent_loop)
          : k->features.has_f64_special_in_divergent_loop;
  if (params.emulate_fp64_erratum && erratum_trips) {
    return BuildFailureError(
        "mali kernel compiler erratum: double-precision special function "
        "inside data-dependent control flow in a loop does not terminate "
        "compilation (kernel '" +
        program.name + "'); see DESIGN.md and paper §V-A");
  }

  // The per-thread register budget is the second always-on quirk; a
  // kRegSqueeze trip models a pessimistic-allocator event that tightens
  // it for this one kernel.
  std::uint32_t reg_budget = timing.max_thread_reg_bytes;
  if (injector != nullptr) {
    reg_budget = injector->EffectiveRegBudget(reg_budget, program.name);
  }
  k->exceeds_resources = k->live_reg_bytes > reg_budget;
  return Status::Ok();
}

StatusOr<CompiledKernel> CompileForMali(const kir::Program& program,
                                        const MaliTimingParams& timing,
                                        const MaliCompilerParams& params) {
  StatusOr<CompiledKernel> analyzed = AnalyzeForMali(program, timing);
  if (!analyzed.ok()) return analyzed.status();
  CompiledKernel k = *std::move(analyzed);
  MALI_RETURN_IF_ERROR(ApplyBuildFaults(&k, program, timing, params));
  // Lower to VM bytecode while the program is verified and in hand, so the
  // device models never compile per launch. ApplyBuildFaults only flips
  // budget/erratum flags — it never rewrites code — so the bytecode is
  // valid across fault schedules.
  StatusOr<std::shared_ptr<const kir::vm::CompiledProgram>> bytecode =
      kir::vm::CompileProgram(program);
  if (!bytecode.ok()) return bytecode.status();
  k.bytecode = *std::move(bytecode);
  return k;
}

}  // namespace malisim::mali
