#include "mali/compiler.h"

#include <algorithm>

namespace malisim::mali {

StatusOr<CompiledKernel> CompileForMali(const kir::Program& program,
                                        const MaliTimingParams& timing,
                                        const MaliCompilerParams& params) {
  if (!program.finalized()) {
    return FailedPreconditionError("program not finalized: " + program.name);
  }
  MALI_RETURN_IF_ERROR(kir::Verify(program));

  CompiledKernel k;
  k.program = &program;
  k.features = kir::AnalyzeFeatures(program);

  if (params.emulate_fp64_erratum &&
      k.features.has_f64_special_in_divergent_loop) {
    return BuildFailureError(
        "mali kernel compiler erratum: double-precision special function "
        "inside data-dependent control flow in a loop does not terminate "
        "compilation (kernel '" +
        program.name + "'); see DESIGN.md and paper §V-A");
  }

  k.live_reg_bytes = std::max(16u, kir::MaxLiveRegisterBytes(program));
  k.exceeds_resources = k.live_reg_bytes > timing.max_thread_reg_bytes;

  std::uint32_t threads = timing.reg_file_bytes_per_core / k.live_reg_bytes;
  threads = threads / 4 * 4;  // thread groups of 4 in the tripipe frontend
  k.threads_per_core =
      std::clamp<std::uint32_t>(threads, 4, timing.max_threads_per_core);

  bool all_restrict = true;
  bool all_ro_const = true;
  bool any_buffer = false;
  bool any_ro_buffer = false;
  for (const kir::ArgDecl& arg : program.args) {
    if (arg.kind == kir::ArgKind::kScalar) continue;
    any_buffer = true;
    if (!arg.is_restrict) all_restrict = false;
    if (arg.kind == kir::ArgKind::kBufferRO) {
      any_ro_buffer = true;
      if (!arg.is_const) all_ro_const = false;
    }
  }
  k.sched_factor = 1.0;
  if (any_buffer && all_restrict) k.sched_factor *= timing.restrict_sched_factor;
  if (any_ro_buffer && all_ro_const) k.sched_factor *= timing.const_sched_factor;
  return k;
}

}  // namespace malisim::mali
