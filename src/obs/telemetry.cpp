#include "obs/telemetry.h"

#include <algorithm>
#include <array>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/json.h"
#include "common/log.h"

namespace malisim::obs {

namespace {

constexpr std::string_view kSchema = "malisim-telemetry-v1";

const char* const kStateNames[] = {"ok", "degraded", "shed",
                                   "deadline-exceeded", "failed"};

}  // namespace

// ---------------------------------------------------------------------------
// RollingWindow
// ---------------------------------------------------------------------------

RollingWindow::RollingWindow(int capacity, const LogHistogram::Layout& layout)
    : capacity_(std::max(1, capacity)), layout_(layout) {
  ring_.resize(static_cast<std::size_t>(capacity_));
}

void RollingWindow::Advance(std::uint64_t window_index) {
  if (started_ && window_index == current_) return;
  MALI_CHECK_MSG(!started_ || window_index > current_,
                 "RollingWindow::Advance must be monotonic");
  const std::uint64_t from = started_ ? current_ + 1 : window_index;
  if (!started_ || window_index - from >=
                       static_cast<std::uint64_t>(capacity_)) {
    for (Bucket& b : ring_) b = Bucket{};
  } else {
    for (std::uint64_t w = from; w <= window_index; ++w) {
      ring_[static_cast<std::size_t>(
          w % static_cast<std::uint64_t>(capacity_))] = Bucket{};
    }
  }
  current_ = window_index;
  started_ = true;
  Bucket& b = CurrentBucket();
  b.used = true;
  b.index = current_;
}

void RollingWindow::AddCounter(const std::string& name, double delta) {
  MALI_CHECK_MSG(started_, "Advance before AddCounter");
  CurrentBucket().counters[name] += delta;
}

void RollingWindow::Observe(const std::string& name, double value) {
  MALI_CHECK_MSG(started_, "Advance before Observe");
  Bucket& b = CurrentBucket();
  auto it = b.hists.find(name);
  if (it == b.hists.end()) {
    it = b.hists.emplace(name, LogHistogram(layout_)).first;
  }
  it->second.Add(value);
}

double RollingWindow::CounterOver(const std::string& name, int windows) const {
  if (!started_) return 0.0;
  windows = std::clamp(windows, 1, capacity_);
  double sum = 0.0;
  for (int i = 0; i < windows; ++i) {
    if (static_cast<std::uint64_t>(i) > current_) break;
    const Bucket& b = ring_[static_cast<std::size_t>(
        (current_ - static_cast<std::uint64_t>(i)) %
        static_cast<std::uint64_t>(capacity_))];
    if (!b.used || b.index != current_ - static_cast<std::uint64_t>(i)) {
      continue;
    }
    const auto it = b.counters.find(name);
    if (it != b.counters.end()) sum += it->second;
  }
  return sum;
}

LogHistogram RollingWindow::HistogramOver(const std::string& name,
                                          int windows) const {
  LogHistogram merged(layout_);
  if (!started_) return merged;
  windows = std::clamp(windows, 1, capacity_);
  // Merge oldest-first so the Kahan-summed `sum` is reproducible for a
  // given ring state (percentiles/extremes are order-independent anyway).
  for (int i = windows - 1; i >= 0; --i) {
    if (static_cast<std::uint64_t>(i) > current_) continue;
    const Bucket& b = ring_[static_cast<std::size_t>(
        (current_ - static_cast<std::uint64_t>(i)) %
        static_cast<std::uint64_t>(capacity_))];
    if (!b.used || b.index != current_ - static_cast<std::uint64_t>(i)) {
      continue;
    }
    const auto it = b.hists.find(name);
    if (it != b.hists.end()) merged.Merge(it->second);
  }
  return merged;
}

// ---------------------------------------------------------------------------
// SLO spec + tracker
// ---------------------------------------------------------------------------

namespace {

bool KnownSloMetric(std::string_view metric) {
  return metric == "p50_latency_sec" || metric == "p99_latency_sec" ||
         metric == "shed_ratio" || metric == "deadline_miss_ratio" ||
         metric == "failed_ratio";
}

std::string TenantSeries(const std::string& tenant, const char* name) {
  if (tenant.empty()) return name;
  return "tenant/" + tenant + "/" + name;
}

double SloMetricValue(const SloObjective& objective, const RollingWindow& ring,
                      int horizon) {
  const std::string& t = objective.tenant;
  if (objective.metric == "p50_latency_sec" ||
      objective.metric == "p99_latency_sec") {
    const LogHistogram hist =
        ring.HistogramOver(TenantSeries(t, "latency_sec"), horizon);
    return hist.Percentile(objective.metric[1] == '5' ? 50.0 : 99.0);
  }
  const double jobs = ring.CounterOver(TenantSeries(t, "jobs"), horizon);
  if (jobs <= 0.0) return 0.0;
  const char* numerator = objective.metric == "shed_ratio" ? "shed"
                          : objective.metric == "deadline_miss_ratio"
                              ? "deadline_miss"
                              : "failed";
  return ring.CounterOver(TenantSeries(t, numerator), horizon) / jobs;
}

}  // namespace

std::string SloObjective::Name() const {
  // Shortest round-trip rendering so Name() echoes the spec the user
  // wrote: 0.1 stays "0.1", not its 17-digit expansion.
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), threshold);
  std::string name;
  if (!tenant.empty()) name += tenant + ":";
  name += metric + "<=" + std::string(buf, res.ptr);
  return name;
}

StatusOr<SloSpec> SloSpec::Parse(std::string_view spec) {
  SloSpec out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t end = spec.find_first_of(",;", pos);
    if (end == std::string_view::npos) end = spec.size();
    std::string entry;
    for (char c : spec.substr(pos, end - pos)) {
      if (c != ' ' && c != '\t') entry += c;
    }
    pos = end + 1;
    if (entry.empty()) {
      if (pos > spec.size()) break;
      continue;
    }
    SloObjective objective;
    const std::size_t le = entry.find("<=");
    if (le == std::string::npos) {
      return InvalidArgumentError("slo entry '" + entry +
                                  "' lacks '<=' (want metric<=value)");
    }
    std::string lhs = entry.substr(0, le);
    const std::size_t colon = lhs.rfind(':');
    if (colon != std::string::npos) {
      objective.tenant = lhs.substr(0, colon);
      lhs = lhs.substr(colon + 1);
    }
    if (!KnownSloMetric(lhs)) {
      return InvalidArgumentError(
          "unknown slo metric '" + lhs +
          "' (want p50_latency_sec|p99_latency_sec|shed_ratio|"
          "deadline_miss_ratio|failed_ratio)");
    }
    objective.metric = lhs;
    const std::string rhs = entry.substr(le + 2);
    char* parse_end = nullptr;
    objective.threshold = std::strtod(rhs.c_str(), &parse_end);
    if (rhs.empty() || parse_end != rhs.c_str() + rhs.size() ||
        !(objective.threshold >= 0.0)) {
      return InvalidArgumentError("slo threshold '" + rhs +
                                  "' is not a number >= 0");
    }
    out.objectives.push_back(std::move(objective));
  }
  return out;
}

SloTracker::SloTracker(const SloSpec& spec, int long_windows)
    : spec_(spec),
      long_windows_(std::max(1, long_windows)),
      breached_(spec.objectives.size(), false) {}

std::vector<SloWindowStatus> SloTracker::Evaluate(
    std::uint64_t window, const RollingWindow& ring,
    std::vector<SloRecord>* events) {
  std::vector<SloWindowStatus> statuses;
  statuses.reserve(spec_.objectives.size());
  for (std::size_t i = 0; i < spec_.objectives.size(); ++i) {
    const SloObjective& objective = spec_.objectives[i];
    SloWindowStatus status;
    status.objective = objective;
    status.short_value = SloMetricValue(objective, ring, 1);
    status.long_value = SloMetricValue(objective, ring, long_windows_);
    const bool over_short = status.short_value > objective.threshold;
    const bool over_long = status.long_value > objective.threshold;
    const bool was = breached_[i];
    const bool now = was ? (over_short || over_long)  // recover on both-clear
                         : (over_short && over_long);  // page on both-burning
    if (now != was && events != nullptr) {
      SloRecord record;
      record.name = objective.Name();
      record.action = now ? "breach" : "recover";
      record.window = window;
      record.threshold = objective.threshold;
      record.short_value = status.short_value;
      record.long_value = status.long_value;
      events->push_back(std::move(record));
    }
    breached_[i] = now;
    status.breached = now;
    statuses.push_back(std::move(status));
  }
  return statuses;
}

// ---------------------------------------------------------------------------
// FileTelemetrySink
// ---------------------------------------------------------------------------

FileTelemetrySink::~FileTelemetrySink() {
  if (jsonl_ != nullptr) std::fclose(jsonl_);
}

Status FileTelemetrySink::Open(const std::string& jsonl_path) {
  jsonl_path_ = jsonl_path;
  prom_path_ = jsonl_path + ".prom";
  jsonl_ = std::fopen(jsonl_path.c_str(), "wb");
  if (jsonl_ == nullptr) {
    status_ = InternalError("cannot open '" + jsonl_path + "' for writing");
    return status_;
  }
  return Status::Ok();
}

void FileTelemetrySink::NoteError(Status status) {
  if (status_.ok()) {
    MALI_LOG_WARN("telemetry: %s", status.ToString().c_str());
    status_ = std::move(status);
  }
}

void FileTelemetrySink::AppendSnapshot(const std::string& line) {
  if (jsonl_ == nullptr) return;
  if (std::fwrite(line.data(), 1, line.size(), jsonl_) != line.size() ||
      std::fputc('\n', jsonl_) == EOF || std::fflush(jsonl_) != 0) {
    NoteError(InternalError("short write to '" + jsonl_path_ + "'"));
  }
}

void FileTelemetrySink::WriteExposition(const std::string& text) {
  if (jsonl_path_.empty()) return;
  const std::string tmp = prom_path_ + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    NoteError(InternalError("cannot open '" + tmp + "' for writing"));
    return;
  }
  const bool ok =
      std::fwrite(text.data(), 1, text.size(), f) == text.size() &&
      std::fflush(f) == 0;
  std::fclose(f);
  if (!ok || std::rename(tmp.c_str(), prom_path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    NoteError(InternalError("cannot replace '" + prom_path_ + "'"));
  }
}

void FileTelemetrySink::WriteExemplar(const std::string& name,
                                      const std::string& json) {
  const std::string path = jsonl_path_ + "." + name;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    NoteError(InternalError("cannot open '" + path + "' for writing"));
    return;
  }
  const bool ok =
      std::fwrite(json.data(), 1, json.size(), f) == json.size() &&
      std::fflush(f) == 0;
  std::fclose(f);
  if (!ok) NoteError(InternalError("short write to '" + path + "'"));
}

// ---------------------------------------------------------------------------
// TelemetryPlane
// ---------------------------------------------------------------------------

double ExactPercentile(const std::vector<double>& sorted_values, double p) {
  if (sorted_values.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted_values.size())));
  if (rank == 0) rank = 1;
  return sorted_values[rank - 1];
}

TelemetryPlane::TelemetryPlane(const TelemetryOptions& options,
                               TelemetrySink* sink)
    : options_(options),
      sink_(sink),
      ring_(std::max(options.ring_capacity, options.long_windows + 1)),
      slo_tracker_(options.slo, options.long_windows) {
  const double interval = options_.arrival_interval_sec > 0.0
                              ? options_.arrival_interval_sec
                              : 0.02;
  const double window = options_.window_sec > 0.0 ? options_.window_sec : 1.0;
  options_.arrival_interval_sec = interval;
  options_.window_sec = window;
  jobs_per_window_ = static_cast<std::uint64_t>(
      std::max(1.0, std::floor(window / interval + 0.5)));
  const int shards = std::max(1, options_.collector_shards);
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

void TelemetryPlane::NoteSubmitted(std::uint64_t id) {
  std::uint64_t seen = watermark_.load(std::memory_order_relaxed);
  while (id + 1 > seen && !watermark_.compare_exchange_weak(
                              seen, id + 1, std::memory_order_relaxed)) {
  }
}

void TelemetryPlane::SetStateProber(StateProber prober) {
  std::lock_guard<std::mutex> lock(prober_mu_);
  prober_ = std::move(prober);
}

void TelemetryPlane::Record(TelemetrySample sample) {
  const std::uint64_t window = WindowOf(sample.id);
  Shard& shard = *shards_[static_cast<std::size_t>(
      sample.id % static_cast<std::uint64_t>(shards_.size()))];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.open[window].push_back(std::move(sample));
  }
  MaybeFlush();
}

void TelemetryPlane::MaybeFlush() {
  if (!flush_mu_.try_lock()) return;  // someone else is flushing — move on
  std::lock_guard<std::mutex> lock(flush_mu_, std::adopt_lock);
  FlushReadyLocked(/*drain=*/false);
}

void TelemetryPlane::FinalFlush() {
  std::lock_guard<std::mutex> lock(flush_mu_);
  FlushReadyLocked(/*drain=*/true);
}

void TelemetryPlane::FlushReadyLocked(bool drain) {
  for (;;) {
    const std::uint64_t w = next_window_;
    // Collect this window's sample count and (when flushing) the samples.
    std::size_t count = 0;
    bool any_open_beyond = false;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      const auto it = shard->open.find(w);
      if (it != shard->open.end()) count += it->second.size();
      if (!shard->open.empty() && shard->open.rbegin()->first > w) {
        any_open_beyond = true;
      }
    }
    bool ready;
    if (drain) {
      // Everything flushes on drain; skip windows nothing landed in
      // (sparse ids) but keep scanning while later windows hold samples.
      if (count == 0) {
        if (!any_open_beyond) return;
        ++next_window_;
        continue;
      }
      ready = true;
    } else {
      const bool sealed =
          watermark_.load(std::memory_order_relaxed) >=
          (w + 1) * jobs_per_window_;
      ready = sealed && count == jobs_per_window_;
    }
    if (!ready) return;

    std::vector<TelemetrySample> samples;
    samples.reserve(count);
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      const auto it = shard->open.find(w);
      if (it != shard->open.end()) {
        for (TelemetrySample& s : it->second) {
          samples.push_back(std::move(s));
        }
        shard->open.erase(it);
      }
    }
    FlushWindowLocked(w, std::move(samples));
    ++next_window_;
  }
}

void TelemetryPlane::FlushWindowLocked(std::uint64_t window,
                                       std::vector<TelemetrySample> samples) {
  // Canonical order: everything downstream (sums, percentiles, exemplar
  // pick, ring feed) sees id-sorted samples regardless of arrival order.
  std::sort(samples.begin(), samples.end(),
            [](const TelemetrySample& a, const TelemetrySample& b) {
              return a.id < b.id;
            });

  // Feed the rolling ring (the SLO tracker's view).
  ring_.Advance(window);
  for (const TelemetrySample& s : samples) {
    ring_.AddCounter("jobs");
    ring_.AddCounter(TenantSeries(s.tenant, "jobs"));
    if (s.shed) {
      ring_.AddCounter("shed");
      ring_.AddCounter(TenantSeries(s.tenant, "shed"));
    } else {
      ring_.Observe("latency_sec", s.consumed_sec);
      ring_.Observe(TenantSeries(s.tenant, "latency_sec"), s.consumed_sec);
    }
    if (s.deadline_missed) {
      ring_.AddCounter("deadline_miss");
      ring_.AddCounter(TenantSeries(s.tenant, "deadline_miss"));
    }
    if (s.failed) {
      ring_.AddCounter("failed");
      ring_.AddCounter(TenantSeries(s.tenant, "failed"));
    }
  }

  // Evaluate SLOs; transitions go to the recorder and into the snapshot.
  std::vector<SloRecord> events;
  const std::vector<SloWindowStatus> slo =
      slo_tracker_.Evaluate(window, ring_, &events);
  if (options_.recorder != nullptr) {
    for (const SloRecord& event : events) options_.recorder->AddSlo(event);
  }

  // Tail exemplars: jobs at or above the window's exact p99 of consumed
  // modelled seconds, worst-first, budgeted. Shed jobs never ran and
  // span-less jobs have nothing to draw.
  std::vector<std::pair<std::uint64_t, std::string>> exemplar_refs;
  if (options_.exemplars_per_window > 0) {
    std::vector<double> latencies;
    for (const TelemetrySample& s : samples) {
      if (!s.shed) latencies.push_back(s.consumed_sec);
    }
    std::sort(latencies.begin(), latencies.end());
    const double p99 = ExactPercentile(latencies, 99.0);
    std::vector<const TelemetrySample*> tail;
    for (const TelemetrySample& s : samples) {
      if (!s.shed && !s.spans.empty() && s.consumed_sec >= p99 &&
          !latencies.empty()) {
        tail.push_back(&s);
      }
    }
    std::stable_sort(tail.begin(), tail.end(),
                     [](const TelemetrySample* a, const TelemetrySample* b) {
                       if (a->consumed_sec != b->consumed_sec) {
                         return a->consumed_sec > b->consumed_sec;
                       }
                       return a->id < b->id;
                     });
    if (tail.size() >
        static_cast<std::size_t>(options_.exemplars_per_window)) {
      tail.resize(static_cast<std::size_t>(options_.exemplars_per_window));
    }
    for (const TelemetrySample* s : tail) {
      const std::string name = "exemplar-w" + std::to_string(window) +
                               "-job" + std::to_string(s->id) + ".json";
      if (sink_ != nullptr) {
        sink_->WriteExemplar(name, ExemplarTraceJson(*s, window));
      }
      exemplar_refs.emplace_back(s->id, name);
    }
  }

  // Cumulative totals advance in window order => deterministic.
  {
    std::lock_guard<std::mutex> lock(totals_mu_);
    totals_.jobs += samples.size();
    for (const TelemetrySample& s : samples) {
      ++totals_.by_state[s.state];
      if (s.completed && !s.rung.empty()) ++totals_.by_rung[s.rung];
      totals_.retries += static_cast<std::uint64_t>(std::max(0, s.retries));
      totals_.attempts += static_cast<std::uint64_t>(std::max(0, s.attempts));
      if (s.breaker_rerouted) ++totals_.breaker_reroutes;
      totals_.modelled_sec.Add(s.modelled_sec);
      totals_.energy_j.Add(s.energy_j);
    }
    ++totals_.windows;
    totals_.exemplars += exemplar_refs.size();
    for (const SloRecord& event : events) {
      if (event.action == "breach") {
        ++totals_.slo_breaches;
      } else {
        ++totals_.slo_recoveries;
      }
    }
  }

  if (sink_ != nullptr) {
    sink_->AppendSnapshot(
        RenderSnapshotLocked(window, samples, slo, events, exemplar_refs));
    sink_->WriteExposition(RenderExpositionLocked());
  }
}

namespace {

struct TenantWindowStats {
  std::uint64_t jobs = 0;
  std::array<std::uint64_t, 5> by_state{};  // kStateNames order
  std::vector<double> latencies;            // non-shed consumed_sec
};

int StateIndex(const std::string& state) {
  for (int i = 0; i < 5; ++i) {
    if (state == kStateNames[i]) return i;
  }
  return 4;  // unknown counts as failed — snapshots must stay consistent
}

}  // namespace

std::string TelemetryPlane::RenderSnapshotLocked(
    std::uint64_t window, const std::vector<TelemetrySample>& samples,
    const std::vector<SloWindowStatus>& slo,
    const std::vector<SloRecord>& events,
    const std::vector<std::pair<std::uint64_t, std::string>>& exemplars) {
  std::array<std::uint64_t, 5> by_state{};
  std::map<std::string, std::uint64_t> by_rung;
  std::map<std::string, TenantWindowStats> tenants;
  std::uint64_t retries = 0;
  std::uint64_t attempts = 0;
  std::uint64_t reroutes = 0;
  KahanSum backoff_sum;
  KahanSum modelled_sum;
  KahanSum energy_sum;
  std::vector<double> latencies;
  for (const TelemetrySample& s : samples) {
    const int state = StateIndex(s.state);
    ++by_state[static_cast<std::size_t>(state)];
    if (s.completed && !s.rung.empty()) ++by_rung[s.rung];
    retries += static_cast<std::uint64_t>(std::max(0, s.retries));
    attempts += static_cast<std::uint64_t>(std::max(0, s.attempts));
    if (s.breaker_rerouted) ++reroutes;
    backoff_sum.Add(s.backoff_sec);
    modelled_sum.Add(s.modelled_sec);
    energy_sum.Add(s.energy_j);
    TenantWindowStats& t = tenants[s.tenant];
    ++t.jobs;
    ++t.by_state[static_cast<std::size_t>(state)];
    if (!s.shed) {
      t.latencies.push_back(s.consumed_sec);
      latencies.push_back(s.consumed_sec);
    }
  }
  std::sort(latencies.begin(), latencies.end());

  JsonWriter w;
  w.BeginObject();
  w.Key("schema");
  w.String(std::string(kSchema));
  w.Key("window");
  w.Number(window);
  w.Key("t_start_sec");
  w.Number(static_cast<double>(window * jobs_per_window_) *
           options_.arrival_interval_sec);
  w.Key("t_end_sec");
  w.Number(static_cast<double>((window + 1) * jobs_per_window_) *
           options_.arrival_interval_sec);
  w.Key("jobs");
  w.Number(static_cast<std::uint64_t>(samples.size()));
  w.Key("states");
  w.BeginObject();
  for (int i = 0; i < 5; ++i) {
    w.Key(kStateNames[i]);
    w.Number(by_state[static_cast<std::size_t>(i)]);
  }
  w.EndObject();
  w.Key("completed_on");
  w.BeginObject();
  for (const auto& [rung, count] : by_rung) {
    w.Key(rung);
    w.Number(count);
  }
  w.EndObject();
  w.Key("retries");
  w.Number(retries);
  w.Key("rung_attempts");
  w.Number(attempts);
  w.Key("breaker_reroutes");
  w.Number(reroutes);
  w.Key("backoff_sec_sum");
  w.Number(backoff_sum.value());
  w.Key("modelled_sec_sum");
  w.Number(modelled_sum.value());
  w.Key("energy_j_sum");
  w.Number(energy_sum.value());
  w.Key("latency");
  w.BeginObject();
  w.Key("count");
  w.Number(static_cast<std::uint64_t>(latencies.size()));
  w.Key("min");
  w.Number(latencies.empty() ? 0.0 : latencies.front());
  w.Key("max");
  w.Number(latencies.empty() ? 0.0 : latencies.back());
  w.Key("p50");
  w.Number(ExactPercentile(latencies, 50.0));
  w.Key("p90");
  w.Number(ExactPercentile(latencies, 90.0));
  w.Key("p99");
  w.Number(ExactPercentile(latencies, 99.0));
  w.EndObject();
  w.Key("tenants");
  w.BeginObject();
  for (auto& [tenant, t] : tenants) {
    std::sort(t.latencies.begin(), t.latencies.end());
    w.Key(tenant);
    w.BeginObject();
    w.Key("jobs");
    w.Number(t.jobs);
    for (int i = 0; i < 5; ++i) {
      w.Key(kStateNames[i]);
      w.Number(t.by_state[static_cast<std::size_t>(i)]);
    }
    const double jobs = static_cast<double>(t.jobs);
    w.Key("shed_ratio");
    w.Number(jobs > 0.0 ? static_cast<double>(t.by_state[2]) / jobs : 0.0);
    w.Key("deadline_miss_ratio");
    w.Number(jobs > 0.0 ? static_cast<double>(t.by_state[3]) / jobs : 0.0);
    w.Key("p50_sec");
    w.Number(ExactPercentile(t.latencies, 50.0));
    w.Key("p99_sec");
    w.Number(ExactPercentile(t.latencies, 99.0));
    w.EndObject();
  }
  w.EndObject();
  {
    std::lock_guard<std::mutex> lock(prober_mu_);
    if (prober_) {
      w.Key("breakers");
      w.BeginObject();
      for (const auto& [rung, state] : prober_()) {
        w.Key(rung);
        w.String(state);
      }
      w.EndObject();
    }
  }
  w.Key("slo");
  w.BeginArray();
  for (const SloWindowStatus& s : slo) {
    w.BeginObject();
    w.Key("objective");
    w.String(s.objective.Name());
    if (!s.objective.tenant.empty()) {
      w.Key("tenant");
      w.String(s.objective.tenant);
    }
    w.Key("metric");
    w.String(s.objective.metric);
    w.Key("threshold");
    w.Number(s.objective.threshold);
    w.Key("short");
    w.Number(s.short_value);
    w.Key("long");
    w.Number(s.long_value);
    w.Key("breached");
    w.Bool(s.breached);
    w.EndObject();
  }
  w.EndArray();
  w.Key("events");
  w.BeginArray();
  for (const SloRecord& e : events) {
    w.BeginObject();
    w.Key("action");
    w.String(e.action);
    w.Key("objective");
    w.String(e.name);
    w.Key("short");
    w.Number(e.short_value);
    w.Key("long");
    w.Number(e.long_value);
    w.EndObject();
  }
  w.EndArray();
  w.Key("exemplars");
  w.BeginArray();
  for (const auto& [id, name] : exemplars) {
    w.BeginObject();
    w.Key("job");
    w.Number(id);
    w.Key("file");
    w.String(name);
    w.EndObject();
  }
  w.EndArray();
  w.Key("cum");
  w.BeginObject();
  {
    std::lock_guard<std::mutex> lock(totals_mu_);
    w.Key("jobs");
    w.Number(totals_.jobs);
    for (int i = 0; i < 5; ++i) {
      const auto it = totals_.by_state.find(kStateNames[i]);
      w.Key(kStateNames[i]);
      w.Number(it == totals_.by_state.end() ? std::uint64_t{0} : it->second);
    }
    w.Key("retries");
    w.Number(totals_.retries);
    w.Key("breaker_reroutes");
    w.Number(totals_.breaker_reroutes);
    w.Key("modelled_sec_sum");
    w.Number(totals_.modelled_sec.value());
    w.Key("energy_j_sum");
    w.Number(totals_.energy_j.value());
    w.Key("windows");
    w.Number(totals_.windows);
    w.Key("exemplars");
    w.Number(totals_.exemplars);
    w.Key("slo_breaches");
    w.Number(totals_.slo_breaches);
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

std::string TelemetryPlane::RenderExpositionLocked() const {
  std::lock_guard<std::mutex> lock(totals_mu_);
  std::string out;
  out += "# malisim-serve live telemetry (";
  out += kSchema;
  out += ")\n";
  out += "# TYPE malisim_serve_jobs_total counter\n";
  for (int i = 0; i < 5; ++i) {
    const auto it = totals_.by_state.find(kStateNames[i]);
    out += "malisim_serve_jobs_total{state=\"";
    out += kStateNames[i];
    out += "\"} ";
    out += std::to_string(it == totals_.by_state.end() ? std::uint64_t{0}
                                                       : it->second);
    out += '\n';
  }
  out += "# TYPE malisim_serve_completed_on_total counter\n";
  for (const auto& [rung, count] : totals_.by_rung) {
    out += "malisim_serve_completed_on_total{rung=\"" + rung + "\"} " +
           std::to_string(count) + '\n';
  }
  out += "# TYPE malisim_serve_retries_total counter\n";
  out += "malisim_serve_retries_total " + std::to_string(totals_.retries) +
         '\n';
  out += "# TYPE malisim_serve_breaker_reroutes_total counter\n";
  out += "malisim_serve_breaker_reroutes_total " +
         std::to_string(totals_.breaker_reroutes) + '\n';
  out += "# TYPE malisim_serve_energy_joules_total counter\n";
  out += "malisim_serve_energy_joules_total " +
         JsonNumber(totals_.energy_j.value()) + '\n';
  out += "# TYPE malisim_serve_modelled_seconds_total counter\n";
  out += "malisim_serve_modelled_seconds_total " +
         JsonNumber(totals_.modelled_sec.value()) + '\n';
  out += "# TYPE malisim_serve_windows_total counter\n";
  out += "malisim_serve_windows_total " + std::to_string(totals_.windows) +
         '\n';
  out += "# TYPE malisim_serve_slo_breaches_total counter\n";
  out += "malisim_serve_slo_breaches_total " +
         std::to_string(totals_.slo_breaches) + '\n';
  out += "# TYPE malisim_serve_exemplars_total counter\n";
  out += "malisim_serve_exemplars_total " +
         std::to_string(totals_.exemplars) + '\n';
  return out;
}

TelemetryTotals TelemetryPlane::Totals() const {
  std::lock_guard<std::mutex> lock(totals_mu_);
  return totals_;
}

// ---------------------------------------------------------------------------
// Exemplar traces
// ---------------------------------------------------------------------------

std::string ExemplarTraceJson(const TelemetrySample& sample,
                              std::uint64_t window) {
  // Chrome/Perfetto trace-event JSON on the job's consumed-budget
  // timeline (microseconds). One lane ("ladder") carries the rung spans;
  // retries surface as instant events at the span start.
  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents");
  w.BeginArray();
  w.BeginObject();
  w.Key("ph");
  w.String("M");
  w.Key("pid");
  w.Number(std::uint64_t{1});
  w.Key("name");
  w.String("process_name");
  w.Key("args");
  w.BeginObject();
  w.Key("name");
  w.String("malisim-serve job " + std::to_string(sample.id) + " (window " +
           std::to_string(window) + ")");
  w.EndObject();
  w.EndObject();
  w.BeginObject();
  w.Key("ph");
  w.String("M");
  w.Key("pid");
  w.Number(std::uint64_t{1});
  w.Key("tid");
  w.Number(std::uint64_t{1});
  w.Key("name");
  w.String("thread_name");
  w.Key("args");
  w.BeginObject();
  w.Key("name");
  w.String("ladder");
  w.EndObject();
  w.EndObject();
  for (const JobRungSpan& span : sample.spans) {
    w.BeginObject();
    w.Key("ph");
    w.String("X");
    w.Key("pid");
    w.Number(std::uint64_t{1});
    w.Key("tid");
    w.Number(std::uint64_t{1});
    w.Key("name");
    w.String(span.rung + " [" + span.outcome + "]");
    w.Key("ts");
    w.Number(span.start_sec * 1e6);
    w.Key("dur");
    w.Number(std::max(0.0, span.end_sec - span.start_sec) * 1e6);
    w.Key("args");
    w.BeginObject();
    w.Key("outcome");
    w.String(span.outcome);
    w.Key("retries");
    w.Number(static_cast<std::uint64_t>(std::max(0, span.retries)));
    w.Key("backoff_sec");
    w.Number(span.backoff_sec);
    w.EndObject();
    w.EndObject();
    if (span.retries > 0) {
      w.BeginObject();
      w.Key("ph");
      w.String("i");
      w.Key("s");
      w.String("t");
      w.Key("pid");
      w.Number(std::uint64_t{1});
      w.Key("tid");
      w.Number(std::uint64_t{1});
      w.Key("name");
      w.String("retried x" + std::to_string(span.retries));
      w.Key("ts");
      w.Number(span.start_sec * 1e6);
      w.EndObject();
    }
  }
  w.EndArray();
  w.Key("metadata");
  w.BeginObject();
  w.Key("tenant");
  w.String(sample.tenant);
  w.Key("state");
  w.String(sample.state);
  w.Key("consumed_sec");
  w.Number(sample.consumed_sec);
  w.Key("energy_j");
  w.Number(sample.energy_j);
  w.EndObject();
  w.EndObject();
  return w.str();
}

}  // namespace malisim::obs
