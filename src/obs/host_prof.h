// HostProf: host-side self-profiling for the simulator process itself.
//
// Everything else in obs/ measures *modelled* Mali/A15 time; HostProf
// measures where the simulator burns real host cycles, so the interpreter
// hot loop can be found before it is replaced (ROADMAP "compile KIR to a
// fused bytecode"). Three collection surfaces:
//
//  * Phase spans (PhaseSpan): RAII wall-clock spans over named pipeline
//    phases (compile, enqueue, schedule, execute, merge, power-accounting,
//    tune, setup, variant). A thread-local frame stack splits cumulative
//    ("total") from exclusive ("self") time; spans that close with no
//    enclosing frame count toward the root coverage used by
//    AttributedFraction().
//  * Interpreter attribution (InterpProfile + kir::HostTimeSink): cheap
//    sampled per-opcode / per-basic-block host-time attribution inside
//    kir::Executor::Step. Period N reads the clock once per N executed
//    instructions and charges the window to the instruction live at the
//    previous tick; period 1 is the exact-tally fallback. Selected via
//    ObsOptions::{host_prof_exact, host_prof_period}.
//  * Overhead self-accounting: the per-sample clock cost is calibrated at
//    construction, so SampleOverheadFraction() reports HostProf's own
//    estimated share of attributed interpreter time — the ≤ 3 % contract
//    checked by tests/obs/host_prof_test.
//
// Determinism contract: HostProf is a read-only tap like every other obs
// component. Host nanoseconds never flow into modelled seconds/watts or
// any deterministic output; they surface only through malisim-prof
// --hotspots, the collapsed-stack dump and the measured-host fields of the
// bench JSON (which the byte-identity test explicitly masks out).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "kir/interp.h"
#include "kir/opcode.h"
#include "kir/program.h"

namespace malisim::obs {

/// Host pipeline phases a span can attribute time to.
enum class HostPhase : int {
  kSetup = 0,        // benchmark Setup (input generation, host buffers)
  kCompile,          // ocl::Program::Build (const-fold, DCE, Mali compile)
  kEnqueue,          // host runtime command dispatch (EnqueueNDRange etc.)
  kSchedule,         // event-graph list scheduling
  kExecute,          // device-model kernel execution (interpreter inside)
  kMerge,            // cross-core / hetero result + counter merging
  kPowerAccounting,  // power-model evaluation + meter-window accounting
  kTune,             // autotuner search (candidate fan-out included)
  kVariant,          // one benchmark variant end to end (root span)
  kVmCompile,        // KIR -> VM bytecode lowering (kir::vm::CompileProgram)
  kVmExec,           // bytecode-VM kernel execution (nested under execute)
  kNumPhases,
};

inline constexpr int kNumHostPhases = static_cast<int>(HostPhase::kNumPhases);

std::string_view HostPhaseName(HostPhase phase);

class HostProf {
 public:
  HostProf();

  /// Interp sampling knobs, mirrored from ObsOptions at recorder
  /// construction. period() is what InterpProfile arms sinks with.
  void set_period(std::uint32_t period) {
    period_ = period == 0 ? 1 : period;
  }
  std::uint32_t period() const { return period_; }

  /// RAII phase span. Null-safe: a span built on a null HostProf is inert,
  /// so instrumentation sites need no branches. Strictly LIFO per thread.
  class PhaseSpan {
   public:
    PhaseSpan(HostProf* prof, HostPhase phase);
    ~PhaseSpan();
    PhaseSpan(const PhaseSpan&) = delete;
    PhaseSpan& operator=(const PhaseSpan&) = delete;

   private:
    HostProf* prof_;
  };

  /// Merges one interpreter sampling sink (per-opcode / per-block ns plus
  /// sample counts) collected for `kernel`. Thread-safe; addition-only, so
  /// per-core sinks may merge in any order.
  void MergeInterp(const std::string& kernel,
                   const std::vector<kir::BlockSpan>& blocks,
                   const kir::HostTimeSink& sink,
                   const std::uint64_t* op_ns, const std::uint64_t* block_ns);

  /// --- Reporting ------------------------------------------------------
  struct PhaseStat {
    std::string name;
    std::uint64_t total_ns = 0;  // cumulative (children included)
    std::uint64_t self_ns = 0;   // exclusive
    std::uint64_t count = 0;     // span closes
  };
  struct OpcodeStat {
    std::string name;
    std::uint64_t ns = 0;
  };
  struct BlockStat {
    std::string kernel;
    std::uint32_t begin = 0;  // [begin, end) instruction span
    std::uint32_t end = 0;
    std::uint64_t ns = 0;
  };
  struct Snapshot {
    std::vector<PhaseStat> phases;    // indexed by HostPhase
    std::vector<OpcodeStat> opcodes;  // nonzero only, sorted by ns desc
    std::vector<BlockStat> blocks;    // sorted by ns desc
    std::uint64_t root_total_ns = 0;  // sum of top-level span time
    std::uint64_t interp_ns = 0;      // total attributed interpreter ns
    std::uint64_t interp_samples = 0;
    std::uint64_t interp_steps = 0;
    double sample_cost_ns = 0.0;      // calibrated per-clock-read cost
  };
  Snapshot TakeSnapshot() const;

  /// Fraction of `wall_sec` covered by top-level phase spans — the
  /// "≥ 90 % of measured host time attributed" acceptance criterion.
  double AttributedFraction(double wall_sec) const;

  /// Estimated profiler self-cost as a fraction of attributed interpreter
  /// time: samples * calibrated clock cost / attributed ns. 0 when nothing
  /// was attributed.
  double SampleOverheadFraction() const;

  /// Ranked phase/opcode/block table (the malisim-prof --hotspots body).
  static std::string HotspotsTable(const Snapshot& snapshot, double wall_sec);

  /// Collapsed-stack (Brendan Gregg flamegraph) dump. Two roots:
  /// "malisim;..." — phase self times with interpreter opcode time nested
  /// under execute (execute self is reduced by the nested interp time so
  /// the root sums stay disjoint) — and "malisim-blocks;..." — the same
  /// interpreter time re-keyed by kernel basic block.
  static std::string Collapsed(const Snapshot& snapshot);

 private:
  friend class PhaseSpan;

  void CloseSpan(HostPhase phase, std::uint64_t elapsed_ns,
                 std::uint64_t child_ns, bool root);

  struct PhaseCell {
    std::atomic<std::uint64_t> total_ns{0};
    std::atomic<std::uint64_t> self_ns{0};
    std::atomic<std::uint64_t> count{0};
  };

  std::uint32_t period_ = 256;
  double sample_cost_ns_ = 0.0;
  std::array<PhaseCell, kNumHostPhases> phases_{};
  std::atomic<std::uint64_t> root_total_ns_{0};
  std::array<std::atomic<std::uint64_t>, kir::kNumOpcodeValues> op_ns_{};
  std::atomic<std::uint64_t> interp_ns_{0};
  std::atomic<std::uint64_t> interp_samples_{0};
  std::atomic<std::uint64_t> interp_steps_{0};
  /// (kernel, block begin) -> BlockStat; cold path, mutex-protected.
  mutable std::mutex blocks_mutex_;
  std::map<std::pair<std::string, std::uint32_t>, BlockStat> blocks_;
};

/// Per-launch interpreter sampling state: owns the op/block nanosecond
/// arrays and one armed kir::HostTimeSink per core, sharing a pc -> block
/// map built from kir::BasicBlocks. Inert when `prof` is null: sink()
/// returns nullptr (so executors skip sampling entirely) and Merge() is a
/// no-op — call sites stay branch-free.
class InterpProfile {
 public:
  InterpProfile(HostProf* prof, const kir::Program& program, int cores);

  /// Sink to arm core `core`'s executor with, or nullptr when inactive.
  kir::HostTimeSink* sink(int core) {
    return prof_ == nullptr ? nullptr : &sinks_[static_cast<std::size_t>(core)];
  }

  /// Folds every core's sink into the profiler under `kernel`.
  void Merge(const std::string& kernel);

 private:
  HostProf* prof_;
  std::vector<kir::BlockSpan> blocks_;
  std::vector<std::uint16_t> block_of_pc_;
  std::vector<std::vector<std::uint64_t>> op_ns_;
  std::vector<std::vector<std::uint64_t>> block_ns_;
  std::vector<kir::HostTimeSink> sinks_;
};

}  // namespace malisim::obs
