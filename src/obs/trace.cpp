#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace malisim::obs {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += ch;
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  std::string out = buf;
  // JSON has no inf/nan literals; clamp to null-safe zero.
  if (out.find("inf") != std::string::npos ||
      out.find("nan") != std::string::npos) {
    out = "0";
  }
  return out;
}

}  // namespace

void TraceBuilder::AddSpan(
    const std::string& name, const std::string& category, int tid,
    double duration_sec,
    std::vector<std::pair<std::string, std::string>> args) {
  double& cursor = cursors_us_[{1, tid}];
  AddSpanAt(name, category, 1, tid, cursor, duration_sec * 1e6,
            std::move(args));
}

void TraceBuilder::AddSpanAt(
    const std::string& name, const std::string& category, int pid, int tid,
    double timestamp_us, double duration_us,
    std::vector<std::pair<std::string, std::string>> args,
    std::vector<std::pair<std::string, double>> metrics) {
  TraceEvent event;
  event.phase = 'X';
  event.name = name;
  event.category = category;
  event.timestamp_us = timestamp_us;
  event.duration_us = duration_us;
  event.pid = pid;
  event.tid = tid;
  event.args = std::move(args);
  event.metrics = std::move(metrics);
  double& cursor = cursors_us_[{pid, tid}];
  cursor = std::max(cursor, timestamp_us + duration_us);
  events_.push_back(std::move(event));
}

void TraceBuilder::AddFlow(const std::string& name,
                           const std::string& category, std::uint64_t flow_id,
                           int pid, int src_tid, double src_ts_us, int dst_tid,
                           double dst_ts_us) {
  TraceEvent start;
  start.phase = 's';
  start.name = name;
  start.category = category;
  start.timestamp_us = src_ts_us;
  start.pid = pid;
  start.tid = src_tid;
  start.flow_id = flow_id;
  events_.push_back(std::move(start));
  TraceEvent finish;
  finish.phase = 'f';
  finish.name = name;
  finish.category = category;
  finish.timestamp_us = dst_ts_us;
  finish.pid = pid;
  finish.tid = dst_tid;
  finish.flow_id = flow_id;
  events_.push_back(std::move(finish));
}

void TraceBuilder::AddCounter(
    const std::string& name, int pid, double timestamp_us,
    std::vector<std::pair<std::string, double>> metrics) {
  TraceEvent event;
  event.phase = 'C';
  event.name = name;
  event.timestamp_us = timestamp_us;
  event.pid = pid;
  event.tid = 0;  // counter tracks hang off the process, not a thread
  event.metrics = std::move(metrics);
  events_.push_back(std::move(event));
}

void TraceBuilder::SetProcessName(int pid, const std::string& name) {
  TraceEvent event;
  event.phase = 'M';
  event.name = "process_name";
  event.pid = pid;
  event.tid = 0;
  event.args = {{"name", name}};
  events_.push_back(std::move(event));
}

void TraceBuilder::SetThreadName(int pid, int tid, const std::string& name) {
  TraceEvent event;
  event.phase = 'M';
  event.name = "thread_name";
  event.pid = pid;
  event.tid = tid;
  event.args = {{"name", name}};
  events_.push_back(std::move(event));
}

double TraceBuilder::cursor_us(int pid, int tid) const {
  const auto it = cursors_us_.find({pid, tid});
  return it == cursors_us_.end() ? 0.0 : it->second;
}

std::string TraceBuilder::ToJson() const {
  std::string out = "[\n";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    char head[256];
    if (e.phase == 'X') {
      std::snprintf(head, sizeof(head),
                    "{\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,"
                    "\"tid\":%d,",
                    e.timestamp_us, e.duration_us, e.pid, e.tid);
    } else if (e.phase == 's' || e.phase == 'f') {
      // Flow finishes bind to the enclosing span ("bp":"e") so the arrow
      // lands on the dependent command rather than on a point event.
      std::snprintf(head, sizeof(head),
                    "{\"ph\":\"%c\",%s\"id\":%llu,\"ts\":%.3f,\"pid\":%d,"
                    "\"tid\":%d,",
                    e.phase, e.phase == 'f' ? "\"bp\":\"e\"," : "",
                    static_cast<unsigned long long>(e.flow_id),
                    e.timestamp_us, e.pid, e.tid);
    } else {
      std::snprintf(head, sizeof(head),
                    "{\"ph\":\"%c\",\"ts\":%.3f,\"pid\":%d,\"tid\":%d,",
                    e.phase, e.timestamp_us, e.pid, e.tid);
    }
    out += head;
    out += "\"name\":\"";
    out += JsonEscape(e.name);
    out += "\"";
    if (!e.category.empty()) {
      out += ",\"cat\":\"";
      out += JsonEscape(e.category);
      out += "\"";
    }
    if (!e.args.empty() || !e.metrics.empty()) {
      out += ",\"args\":{";
      bool first = true;
      for (const auto& [key, value] : e.args) {
        if (!first) out += ",";
        first = false;
        out += "\"";
        out += JsonEscape(key);
        out += "\":\"";
        out += JsonEscape(value);
        out += "\"";
      }
      for (const auto& [key, value] : e.metrics) {
        if (!first) out += ",";
        first = false;
        out += "\"";
        out += JsonEscape(key);
        out += "\":";
        out += JsonNumber(value);
      }
      out += "}";
    }
    out += i + 1 < events_.size() ? "},\n" : "}\n";
  }
  out += "]\n";
  return out;
}

Status TraceBuilder::WriteTo(const std::string& path) const {
  std::ofstream file(path);
  if (!file) {
    return InvalidArgumentError("cannot open trace output '" + path + "'");
  }
  file << ToJson();
  return file.good() ? Status::Ok()
                     : InternalError("short write to '" + path + "'");
}

}  // namespace malisim::obs
