// Live telemetry plane (DESIGN.md §15): in-situ, low-overhead metrics for
// the serve engine, emitted WHILE a run is in flight instead of after the
// drain — rolling-window aggregates, declarative SLO tracking with
// multi-window burn rates, and tail-exemplar traces for jobs that land
// above the rolling p99.
//
// Determinism contract (deterministic BY CONSTRUCTION, not by luck): the
// window axis is modelled time, never the host clock. Job id `i` arrives
// at modelled time `i * arrival_interval_sec`, so the window a job belongs
// to is a pure function of its id, and a window's snapshot is a pure
// function of the samples in it (aggregated in id-sorted order, Kahan
// sums over the sorted stream). A window is emitted once every job in its
// id range has a terminal sample, and windows are emitted strictly in
// order — therefore the full JSONL snapshot stream is byte-identical for
// any worker/shard/collector count, provided job results themselves are
// deterministic (breakers disabled or never tripping; see engine.h).
// Host wall-clock values are deliberately absent from snapshots.
//
// Lock-cheapness: producers (serve workers) only ever touch one collector
// shard mutex (uncontended in the common case) to append a sample; the
// window-close scan and snapshot emission run on whichever producer
// trips the completion check, guarded by a try-lock so nobody queues
// behind a flush. A final flush at drain time picks up any window a
// try-lock race left behind.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "obs/recorder.h"

namespace malisim::obs {

// ---------------------------------------------------------------------------
// RollingWindow: a ring of per-window buckets (counters + log-scale
// histograms) keyed on a monotonically advancing modelled-time window
// index, merged on read over the newest N windows. Single-writer (the
// flush path); reads happen on the same thread.
// ---------------------------------------------------------------------------

class RollingWindow {
 public:
  explicit RollingWindow(int capacity,
                         const LogHistogram::Layout& layout = {});

  /// Makes `window_index` the current bucket, retiring buckets that fall
  /// off the ring. Indices must be non-decreasing; gaps leave empty
  /// buckets (a window with no traffic contributes nothing).
  void Advance(std::uint64_t window_index);

  /// Accumulate into the current bucket.
  void AddCounter(const std::string& name, double delta = 1.0);
  void Observe(const std::string& name, double value);

  /// Merged reads over the newest `windows` buckets (clamped to the ring
  /// capacity), current bucket included. Counter merges are sums;
  /// histogram merges are bucket-wise — both order-independent.
  double CounterOver(const std::string& name, int windows) const;
  LogHistogram HistogramOver(const std::string& name, int windows) const;

  int capacity() const { return capacity_; }
  std::uint64_t current() const { return current_; }
  bool started() const { return started_; }

 private:
  struct Bucket {
    bool used = false;
    std::uint64_t index = 0;
    std::map<std::string, double> counters;
    std::map<std::string, LogHistogram> hists;
  };

  Bucket& CurrentBucket() { return ring_[static_cast<std::size_t>(
      current_ % static_cast<std::uint64_t>(capacity_))]; }

  int capacity_;
  LogHistogram::Layout layout_;
  std::vector<Bucket> ring_;
  std::uint64_t current_ = 0;
  bool started_ = false;
};

// ---------------------------------------------------------------------------
// SLO tracking: declarative objectives over rolling-window burn rates.
// ---------------------------------------------------------------------------

/// One declarative objective: `metric <= threshold`, optionally scoped to
/// one tenant. Supported metrics: p50_latency_sec, p99_latency_sec (of
/// per-job consumed modelled seconds), shed_ratio, deadline_miss_ratio,
/// failed_ratio.
struct SloObjective {
  std::string tenant;  // "" = all traffic
  std::string metric;
  double threshold = 0.0;

  /// Canonical spelling, e.g. "batch-a:p99_latency_sec<=0.5".
  std::string Name() const;
};

struct SloSpec {
  std::vector<SloObjective> objectives;

  bool empty() const { return objectives.empty(); }

  /// Parses "metric<=value[,tenant:metric<=value,...]" (',' or ';'
  /// separated, spaces ignored). InvalidArgument on unknown metric names
  /// or malformed entries.
  static StatusOr<SloSpec> Parse(std::string_view spec);
};

/// Per-objective evaluation at one window.
struct SloWindowStatus {
  SloObjective objective;
  double short_value = 0.0;  // over the newest window
  double long_value = 0.0;   // over the long burn-rate horizon
  bool breached = false;     // sticky state AFTER this evaluation
};

/// Evaluates objectives each window with the classic two-window burn-rate
/// rule: an objective enters breach when BOTH the short (1-window) and the
/// long (`long_windows`) value exceed the threshold — a lone bad window
/// does not page — and recovers when either drops back under. Transitions
/// are emitted as SloRecords (recorder.h).
class SloTracker {
 public:
  SloTracker(const SloSpec& spec, int long_windows);

  /// Evaluates every objective against `ring` at `window`, appending
  /// breach/recover transition events to `events` (may be null).
  std::vector<SloWindowStatus> Evaluate(std::uint64_t window,
                                        const RollingWindow& ring,
                                        std::vector<SloRecord>* events);

  int long_windows() const { return long_windows_; }

 private:
  SloSpec spec_;
  int long_windows_;
  std::vector<bool> breached_;  // sticky per-objective state
};

// ---------------------------------------------------------------------------
// Samples and exemplar spans.
// ---------------------------------------------------------------------------

/// One ladder-rung attempt on a job's consumed-budget timeline (modelled
/// seconds from job start). Outcomes: "ok", "ok-past-deadline",
/// "watchdog", "degradable-fault", "fatal", "breaker-skipped",
/// "budget-exhausted".
struct JobRungSpan {
  std::string rung;  // serve::VariantKey spelling
  double start_sec = 0.0;
  double end_sec = 0.0;
  std::string outcome;
  int retries = 0;
  double backoff_sec = 0.0;
};

/// One terminal job outcome, in obs-neutral vocabulary (the serve engine
/// converts its JobResult; obs cannot depend on serve).
struct TelemetrySample {
  std::uint64_t id = 0;
  std::string tenant;  // already normalized by the producer
  std::string state;   // "ok","degraded","shed","deadline-exceeded","failed"
  std::string rung;    // completed-on rung key; "" when nothing succeeded
  bool completed = false;  // ok or degraded
  bool shed = false;
  bool deadline_missed = false;
  bool failed = false;
  double modelled_sec = 0.0;   // successful run's modelled seconds
  double consumed_sec = 0.0;   // total budget spend (the latency metric)
  double energy_j = 0.0;
  double backoff_sec = 0.0;
  int retries = 0;
  int attempts = 0;
  bool breaker_rerouted = false;
  std::vector<JobRungSpan> spans;  // exemplar material; may be empty
};

// ---------------------------------------------------------------------------
// Sinks.
// ---------------------------------------------------------------------------

/// Where snapshots land. All calls are serialized by the plane's flush
/// lock — implementations need no locking of their own.
class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;
  /// One complete "malisim-telemetry-v1" JSON object, no trailing newline.
  virtual void AppendSnapshot(const std::string& line) = 0;
  /// Full Prometheus-style text exposition (cumulative state); replaces
  /// the previous exposition.
  virtual void WriteExposition(const std::string& text) { (void)text; }
  /// One Perfetto exemplar trace. `name` is a bare file name (no
  /// directory) that is identical across runs — byte-identity of the
  /// snapshot stream depends on it.
  virtual void WriteExemplar(const std::string& name,
                             const std::string& json) {
    (void)name;
    (void)json;
  }
};

/// Collects everything in memory (tests, malisim-top --once over a
/// finished run).
class StringTelemetrySink final : public TelemetrySink {
 public:
  void AppendSnapshot(const std::string& line) override {
    jsonl_ += line;
    jsonl_ += '\n';
  }
  void WriteExposition(const std::string& text) override { prom_ = text; }
  void WriteExemplar(const std::string& name,
                     const std::string& json) override {
    exemplars_.emplace_back(name, json);
  }

  const std::string& jsonl() const { return jsonl_; }
  const std::string& prom() const { return prom_; }
  const std::vector<std::pair<std::string, std::string>>& exemplars() const {
    return exemplars_;
  }

 private:
  std::string jsonl_;
  std::string prom_;
  std::vector<std::pair<std::string, std::string>> exemplars_;
};

/// Writes the JSONL stream append-only (flushed per line so a tailer sees
/// complete lines), the Prometheus exposition atomically (temp + rename)
/// to `<jsonl_path>.prom`, and exemplars next to the JSONL file as
/// `<jsonl_path>.<name>`. The first write error sticks in status().
class FileTelemetrySink final : public TelemetrySink {
 public:
  FileTelemetrySink() = default;
  ~FileTelemetrySink() override;

  Status Open(const std::string& jsonl_path);

  void AppendSnapshot(const std::string& line) override;
  void WriteExposition(const std::string& text) override;
  void WriteExemplar(const std::string& name,
                     const std::string& json) override;

  const Status& status() const { return status_; }
  const std::string& prom_path() const { return prom_path_; }

 private:
  void NoteError(Status status);

  std::string jsonl_path_;
  std::string prom_path_;
  std::FILE* jsonl_ = nullptr;
  Status status_;
};

// ---------------------------------------------------------------------------
// The plane.
// ---------------------------------------------------------------------------

struct TelemetryOptions {
  /// Modelled width of one window.
  double window_sec = 1.0;
  /// Modelled inter-arrival gap: job id i "arrives" at i * this. Together
  /// with window_sec it fixes jobs-per-window (>= 1).
  double arrival_interval_sec = 0.02;
  /// Tail-exemplar budget per window (0 disables exemplar capture).
  int exemplars_per_window = 2;
  /// Long burn-rate horizon, in windows.
  int long_windows = 5;
  /// Ring depth for rolling reads (must cover long_windows).
  int ring_capacity = 16;
  /// Collector shards samples hash onto (id % shards). Purely a
  /// contention knob: the emitted stream is identical for any value.
  int collector_shards = 4;
  SloSpec slo;
  /// Optional: SLO transitions are also recorded here as SloRecords; the
  /// engine seals it at drain and surfaces late_records.
  Recorder* recorder = nullptr;
};

/// Cumulative (run-so-far) totals, updated in window order at flush time —
/// deterministic like everything else in the stream.
struct TelemetryTotals {
  std::uint64_t jobs = 0;
  std::map<std::string, std::uint64_t> by_state;    // state -> count
  std::map<std::string, std::uint64_t> by_rung;     // completed-on -> count
  std::uint64_t retries = 0;
  std::uint64_t attempts = 0;
  std::uint64_t breaker_reroutes = 0;
  std::uint64_t windows = 0;
  std::uint64_t exemplars = 0;
  std::uint64_t slo_breaches = 0;
  std::uint64_t slo_recoveries = 0;
  KahanSum modelled_sec;
  KahanSum energy_j;
};

class TelemetryPlane {
 public:
  TelemetryPlane(const TelemetryOptions& options, TelemetrySink* sink);
  ~TelemetryPlane() = default;

  TelemetryPlane(const TelemetryPlane&) = delete;
  TelemetryPlane& operator=(const TelemetryPlane&) = delete;

  /// Admission hook: advances the id watermark that seals windows. Must be
  /// called for every submission (accepted or shed), in id order for live
  /// flushing (out-of-order ids still flush correctly at FinalFlush).
  void NoteSubmitted(std::uint64_t id);

  /// Terminal-result hook: files the sample into its window and flushes
  /// any windows that just became complete (try-lock; never queues).
  void Record(TelemetrySample sample);

  /// Drain hook: flushes every remaining window (partial final window
  /// included) in order. Call after all producers have stopped.
  void FinalFlush();

  /// Optional live-state probe (breaker states), sampled at each window
  /// flush and echoed into the snapshot. Load-dependent by nature: with
  /// breakers disabled it reads "closed" everywhere and snapshots stay
  /// byte-identical; with trips it is honest instead of deterministic.
  using StateProber =
      std::function<std::vector<std::pair<std::string, std::string>>()>;
  void SetStateProber(StateProber prober);

  Recorder* recorder() const { return options_.recorder; }
  std::uint64_t jobs_per_window() const { return jobs_per_window_; }

  /// Totals after the last flush (stable once FinalFlush returned).
  TelemetryTotals Totals() const;

 private:
  struct Shard {
    std::mutex mu;
    std::map<std::uint64_t, std::vector<TelemetrySample>> open;
  };

  std::uint64_t WindowOf(std::uint64_t id) const {
    return id / jobs_per_window_;
  }

  void MaybeFlush();
  /// Flushes complete (or, when `drain`, all remaining) windows in order.
  /// Caller holds flush_mu_.
  void FlushReadyLocked(bool drain);
  void FlushWindowLocked(std::uint64_t window,
                         std::vector<TelemetrySample> samples);
  std::string RenderSnapshotLocked(
      std::uint64_t window, const std::vector<TelemetrySample>& samples,
      const std::vector<SloWindowStatus>& slo,
      const std::vector<SloRecord>& events,
      const std::vector<std::pair<std::uint64_t, std::string>>& exemplars);
  std::string RenderExpositionLocked() const;

  TelemetryOptions options_;
  TelemetrySink* sink_;
  std::uint64_t jobs_per_window_ = 1;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> watermark_{0};  // all ids < watermark submitted

  std::mutex prober_mu_;
  StateProber prober_;

  std::mutex flush_mu_;  // guards everything below + sink calls
  std::uint64_t next_window_ = 0;
  RollingWindow ring_;
  SloTracker slo_tracker_;
  TelemetryTotals totals_;
  mutable std::mutex totals_mu_;  // Totals() reads while flush writes
};

/// Exact nearest-rank percentile of an ascending-sorted series; 0 when
/// empty. Unlike LogHistogram::Percentile this is exact, not bucketed —
/// window snapshots use it because the flush path holds the raw samples.
double ExactPercentile(const std::vector<double>& sorted_values, double p);

/// Renders one tail exemplar as a Chrome/Perfetto trace-event JSON document
/// over the job's consumed-budget timeline (ladder-rung spans + retry
/// instants). Pure function of the sample — exemplar files are as
/// deterministic as the snapshot stream.
std::string ExemplarTraceJson(const TelemetrySample& sample,
                              std::uint64_t window);

}  // namespace malisim::obs
