// Observability configuration. The subsystem is zero-cost when disabled:
// every instrumentation site guards on a pointer/flag that is null/false by
// default, so the modelled-simulation hot paths pay one predictable branch
// at most. Enabling it never changes modelled seconds, watts or joules —
// counters are *read-only taps* on values the engine already computes (the
// determinism contract; see DESIGN.md §"Observability").
#pragma once

#include <cstdint>

namespace malisim::obs {

struct ObsOptions {
  /// Master switch. False = the whole subsystem is inert.
  bool enabled = false;
  /// Collect per-kernel counters (opcode tallies, per-core cycles/misses).
  bool counters = true;
  /// Retain per-kernel/per-command records for trace export.
  bool trace = true;
  /// Emulated power-meter sampling rate for the rendered watts timeline.
  /// 10 Hz is the paper's Yokogawa WT230 setup (§IV-D).
  double power_hz = 10.0;
  /// Host-side self-profiler (obs::HostProf): phase spans plus sampled
  /// per-opcode/per-block interpreter host-time attribution. Off by
  /// default — when off, recorder->host_prof() is null and every
  /// instrumentation site collapses to one predicted null check.
  bool host_prof = false;
  /// Exact-tally fallback: read the clock on *every* interpreted step
  /// (period 1). Precise but expensive; the sampled default keeps the
  /// profiler within the ≤ 3 % overhead contract.
  bool host_prof_exact = false;
  /// Steps per sampling tick when not exact. 256 ≈ tens of clock reads
  /// per microsecond of interpretation — cheap and statistically dense.
  std::uint32_t host_prof_period = 256;
};

}  // namespace malisim::obs
