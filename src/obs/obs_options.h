// Observability configuration. The subsystem is zero-cost when disabled:
// every instrumentation site guards on a pointer/flag that is null/false by
// default, so the modelled-simulation hot paths pay one predictable branch
// at most. Enabling it never changes modelled seconds, watts or joules —
// counters are *read-only taps* on values the engine already computes (the
// determinism contract; see DESIGN.md §"Observability").
#pragma once

namespace malisim::obs {

struct ObsOptions {
  /// Master switch. False = the whole subsystem is inert.
  bool enabled = false;
  /// Collect per-kernel counters (opcode tallies, per-core cycles/misses).
  bool counters = true;
  /// Retain per-kernel/per-command records for trace export.
  bool trace = true;
  /// Emulated power-meter sampling rate for the rendered watts timeline.
  /// 10 Hz is the paper's Yokogawa WT230 setup (§IV-D).
  double power_hz = 10.0;
};

}  // namespace malisim::obs
