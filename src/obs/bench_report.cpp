#include "obs/bench_report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/json.h"
#include "common/table.h"

namespace malisim::obs {

namespace {

constexpr double kRelEps = 1e-12;

void WriteCell(JsonWriter* w, const BenchCell& cell) {
  w->BeginObject();
  w->Key("benchmark");
  w->String(cell.benchmark);
  w->Key("variant");
  w->String(cell.variant);
  w->Key("precision");
  w->String(cell.precision);
  w->Key("available");
  w->Bool(cell.available);
  if (!cell.available) {
    w->Key("unavailable_reason");
    w->String(cell.unavailable_reason);
    w->EndObject();
    return;
  }
  w->Key("seconds");
  w->Number(cell.seconds);
  w->Key("power_mean_w");
  w->Number(cell.power_mean_w);
  w->Key("power_stddev_w");
  w->Number(cell.power_stddev_w);
  w->Key("energy_j");
  w->Number(cell.energy_j);
  w->Key("edp_js");
  w->Number(cell.edp_js);
  w->Key("speedup_vs_serial");
  w->Number(cell.speedup_vs_serial);
  w->Key("power_vs_serial");
  w->Number(cell.power_vs_serial);
  w->Key("energy_vs_serial");
  w->Number(cell.energy_vs_serial);
  w->Key("failed_repetitions");
  w->Number(static_cast<std::uint64_t>(
      cell.failed_repetitions < 0 ? 0 : cell.failed_repetitions));
  w->Key("degraded_to");
  w->String(cell.degraded_to);
  w->Key("validated");
  w->Bool(cell.validated);
  w->EndObject();
}

void WriteHistogram(JsonWriter* w, const HistogramStat& h) {
  w->BeginObject();
  w->Key("count");
  w->Number(h.count);
  w->Key("min");
  w->Number(h.min);
  w->Key("max");
  w->Number(h.max);
  w->Key("sum");
  w->Number(h.sum);
  w->Key("mean");
  w->Number(h.mean);
  w->Key("p50");
  w->Number(h.p50);
  w->Key("p90");
  w->Number(h.p90);
  w->Key("p99");
  w->Number(h.p99);
  w->Key("layout");
  w->BeginObject();
  w->Key("min_edge");
  w->Number(h.layout.min_edge);
  w->Key("decades");
  w->Number(static_cast<std::uint64_t>(h.layout.decades));
  w->Key("buckets_per_decade");
  w->Number(static_cast<std::uint64_t>(h.layout.buckets_per_decade));
  w->EndObject();
  w->Key("buckets");
  w->BeginArray();
  for (const auto& [index, count] : h.buckets) {
    w->BeginArray();
    w->Number(static_cast<std::uint64_t>(index < 0 ? 0 : index));
    w->Number(count);
    w->EndArray();
  }
  w->EndArray();
  w->EndObject();
}

Status WriteStringTo(const std::string& content, const std::string& path) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    return InvalidArgumentError("cannot open output '" + path + "'");
  }
  file << content;
  return file.good() ? Status::Ok()
                     : InternalError("short write to '" + path + "'");
}

std::string CellKey(const JsonValue& cell) {
  return "cell/" + cell.StringOr("benchmark", "?") + "/" +
         cell.StringOr("variant", "?") + "/" + cell.StringOr("precision", "?");
}

void FlattenCell(const JsonValue& cell, std::map<std::string, double>* out) {
  const std::string base = CellKey(cell);
  const JsonValue* available = cell.Find("available");
  const bool is_available =
      available != nullptr && available->kind == JsonValue::Kind::kBool &&
      available->bool_value;
  (*out)[base + "/available"] = is_available ? 1.0 : 0.0;
  if (!is_available) return;
  for (const char* field :
       {"seconds", "power_mean_w", "power_stddev_w", "energy_j", "edp_js",
        "speedup_vs_serial", "power_vs_serial", "energy_vs_serial",
        "failed_repetitions"}) {
    const JsonValue* v = cell.Find(field);
    if (v != nullptr && v->is_number()) {
      (*out)[base + "/" + field] = v->number_value;
    }
  }
}

void FlattenHistogram(const std::string& name, const JsonValue& h,
                      std::map<std::string, double>* out) {
  const std::string base = "hist/" + name;
  for (const char* field : {"p50", "p90", "p99", "max", "mean", "count"}) {
    const JsonValue* v = h.Find(field);
    if (v != nullptr && v->is_number()) {
      (*out)[base + "/" + field] = v->number_value;
    }
  }
}

double ThresholdFor(std::string_view name, const CompareOptions& options) {
  double threshold = options.threshold;
  std::size_t best_len = 0;
  bool matched = false;
  for (const auto& [prefix, value] : options.prefix_thresholds) {
    if (name.substr(0, prefix.size()) != prefix) continue;
    if (!matched || prefix.size() >= best_len) {
      matched = true;
      best_len = prefix.size();
      threshold = value;
    }
  }
  return threshold;
}

int VerdictRank(MetricDelta::Verdict v) {
  switch (v) {
    case MetricDelta::Verdict::kRegression:
      return 0;
    case MetricDelta::Verdict::kImprovement:
      return 1;
    case MetricDelta::Verdict::kChanged:
      return 2;
    case MetricDelta::Verdict::kUnchanged:
      return 3;
  }
  return 3;
}

const char* VerdictName(MetricDelta::Verdict v) {
  switch (v) {
    case MetricDelta::Verdict::kRegression:
      return "regression";
    case MetricDelta::Verdict::kImprovement:
      return "improvement";
    case MetricDelta::Verdict::kChanged:
      return "changed";
    case MetricDelta::Verdict::kUnchanged:
      return "unchanged";
  }
  return "unchanged";
}

const char* PolarityName(Polarity p) {
  switch (p) {
    case Polarity::kLowerBetter:
      return "lower_better";
    case Polarity::kHigherBetter:
      return "higher_better";
    case Polarity::kNeutral:
      return "neutral";
  }
  return "neutral";
}

std::string Percent(double rel) {
  const double pct = rel * 100.0;
  std::string s = FormatDouble(pct, 2);
  if (pct >= 0.0) s = "+" + s;
  return s + "%";
}

bool Contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

}  // namespace

std::string BenchReportJson(const BenchReportMeta& meta,
                            const std::vector<BenchCell>& cells,
                            const std::vector<PaperDelta>& paper_deltas,
                            const MetricsSnapshot& metrics,
                            const std::vector<SimThroughput>& throughput) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema");
  w.String(std::string(kBenchReportSchema));
  w.Key("name");
  w.String(meta.name);
  w.Key("git_sha");
  w.String(meta.git_sha);
  w.Key("fault_plan_hash");
  w.String(meta.fault_plan_hash);

  w.Key("options");
  w.BeginObject();
  {
    std::vector<std::pair<std::string, std::string>> sorted = meta.options;
    std::sort(sorted.begin(), sorted.end());
    for (const auto& [key, value] : sorted) {
      w.Key(key);
      w.String(value);
    }
  }
  w.EndObject();

  w.Key("cells");
  w.BeginArray();
  for (const BenchCell& cell : cells) WriteCell(&w, cell);
  w.EndArray();

  w.Key("paper_reference");
  w.BeginObject();
  {
    std::vector<PaperDelta> sorted = paper_deltas;
    std::sort(sorted.begin(), sorted.end(),
              [](const PaperDelta& a, const PaperDelta& b) {
                return a.key < b.key;
              });
    for (const PaperDelta& d : sorted) {
      w.Key(d.key);
      w.BeginObject();
      w.Key("paper");
      w.Number(d.paper);
      w.Key("model");
      w.Number(d.model);
      w.Key("rel_delta");
      w.Number(std::abs(d.paper) > kRelEps ? (d.model - d.paper) / d.paper
                                           : 0.0);
      w.EndObject();
    }
  }
  w.EndObject();

  // sim_throughput: deterministic per-sweep totals (byte-identical across
  // host thread counts). sim_throughput_host: measured host wall-clock
  // rates, excluded from the byte-identity check.
  if (!throughput.empty()) {
    w.Key("sim_throughput");
    w.BeginObject();
    for (const SimThroughput& t : throughput) {
      w.Key(t.sweep);
      w.BeginObject();
      w.Key("work_items");
      w.Number(t.work_items);
      w.Key("opcodes");
      w.Number(t.opcodes);
      w.Key("launches");
      w.Number(t.launches);
      w.Key("modelled_sec");
      w.Number(t.modelled_sec);
      w.EndObject();
    }
    w.EndObject();
    w.Key("sim_throughput_host");
    w.BeginObject();
    for (const SimThroughput& t : throughput) {
      w.Key(t.sweep);
      w.BeginObject();
      w.Key("host_sec");
      w.Number(t.host_sec);
      w.Key("work_items_per_host_sec");
      w.Number(t.work_items_per_host_sec);
      w.Key("opcodes_per_host_sec");
      w.Number(t.opcodes_per_host_sec);
      w.Key("host_sec_per_modelled_sec");
      w.Number(t.host_sec_per_modelled_sec);
      w.EndObject();
    }
    w.EndObject();
  }

  w.Key("metrics");
  w.BeginObject();
  w.Key("gauges");
  w.BeginObject();
  for (const auto& [name, value] : metrics.gauges) {
    w.Key(name);
    w.Number(value);
  }
  w.EndObject();
  w.Key("counters");
  w.BeginObject();
  for (const auto& [name, value] : metrics.counters) {
    w.Key(name);
    w.Number(value);
  }
  w.EndObject();
  w.Key("histograms");
  w.BeginObject();
  for (const auto& [name, h] : metrics.histograms) {
    w.Key(name);
    WriteHistogram(&w, h);
  }
  w.EndObject();
  w.EndObject();

  w.EndObject();
  return w.str() + "\n";
}

Status WriteBenchReport(const BenchReportMeta& meta,
                        const std::vector<BenchCell>& cells,
                        const std::vector<PaperDelta>& paper_deltas,
                        const MetricsSnapshot& metrics,
                        const std::string& path,
                        const std::vector<SimThroughput>& throughput) {
  return WriteStringTo(
      BenchReportJson(meta, cells, paper_deltas, metrics, throughput), path);
}

StatusOr<ParsedBenchReport> ParseBenchReport(std::string_view json) {
  StatusOr<JsonValue> parsed = ParseJson(json);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& root = *parsed;
  if (!root.is_object()) {
    return InvalidArgumentError("bench report root is not a JSON object");
  }

  ParsedBenchReport report;
  report.schema = root.StringOr("schema", "");
  if (report.schema != kBenchReportSchema) {
    return InvalidArgumentError("unsupported bench report schema '" +
                                report.schema + "' (want '" +
                                std::string(kBenchReportSchema) + "')");
  }
  report.name = root.StringOr("name", "");
  report.git_sha = root.StringOr("git_sha", "");
  report.fault_plan_hash = root.StringOr("fault_plan_hash", "");

  if (const JsonValue* cells = root.Find("cells");
      cells != nullptr && cells->is_array()) {
    for (const JsonValue& cell : cells->array) {
      if (cell.is_object()) FlattenCell(cell, &report.metrics);
    }
  }
  for (const char* section : {"sim_throughput", "sim_throughput_host"}) {
    const JsonValue* st = root.Find(section);
    if (st == nullptr || !st->is_object()) continue;
    for (const auto& [sweep, fields] : st->members) {
      if (!fields.is_object()) continue;
      for (const auto& [field, v] : fields.members) {
        if (v.is_number()) {
          report.metrics[std::string(section) + "/" + sweep + "/" + field] =
              v.number_value;
        }
      }
    }
  }
  if (const JsonValue* metrics = root.Find("metrics");
      metrics != nullptr && metrics->is_object()) {
    if (const JsonValue* gauges = metrics->Find("gauges");
        gauges != nullptr && gauges->is_object()) {
      for (const auto& [name, value] : gauges->members) {
        if (value.is_number()) {
          report.metrics["gauge/" + name] = value.number_value;
        }
      }
    }
    if (const JsonValue* counters = metrics->Find("counters");
        counters != nullptr && counters->is_object()) {
      for (const auto& [name, value] : counters->members) {
        if (value.is_number()) {
          report.metrics["counter/" + name] = value.number_value;
        }
      }
    }
    if (const JsonValue* histograms = metrics->Find("histograms");
        histograms != nullptr && histograms->is_object()) {
      for (const auto& [name, value] : histograms->members) {
        if (value.is_object()) {
          FlattenHistogram(name, value, &report.metrics);
        }
      }
    }
  }
  return report;
}

StatusOr<ParsedBenchReport> LoadBenchReport(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return NotFoundError("cannot open bench report '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  StatusOr<ParsedBenchReport> report = ParseBenchReport(buffer.str());
  if (!report.ok()) {
    return Status(report.status().code(),
                  path + ": " + report.status().message());
  }
  return report;
}

Polarity MetricPolarity(std::string_view name) {
  if (EndsWith(name, "/available") || Contains(name, "speedup")) {
    return Polarity::kHigherBetter;
  }
  if (name.substr(0, 8) == "counter/" || EndsWith(name, "/count")) {
    return Polarity::kNeutral;
  }
  // Throughput rules precede the generic "_sec" rule: a higher
  // work-items-per-host-second is faster simulation, and a lower
  // host-per-modelled-second ratio is a cheaper simulator.
  if (Contains(name, "host_sec_per_modelled_sec")) {
    return Polarity::kLowerBetter;
  }
  if (Contains(name, "per_host_sec")) {
    return Polarity::kHigherBetter;
  }
  if (Contains(name, "seconds") || Contains(name, "_sec") ||
      Contains(name, "_w") || Contains(name, "watts") ||
      Contains(name, "energy") || Contains(name, "edp") ||
      Contains(name, "stall") || Contains(name, "failed_repetitions")) {
    return Polarity::kLowerBetter;
  }
  return Polarity::kNeutral;
}

std::string_view MetricBackend(std::string_view name) {
  // Whole-segment match: the token must be bounded by '/' (or the string
  // ends) so a kernel named "heterodyne" is not mistaken for the backend.
  for (std::string_view backend :
       {std::string_view("mali-t604"), std::string_view("cortex-a15"),
        std::string_view("hetero")}) {
    std::size_t pos = 0;
    while ((pos = name.find(backend, pos)) != std::string_view::npos) {
      const bool starts = pos == 0 || name[pos - 1] == '/';
      const std::size_t end = pos + backend.size();
      const bool ends = end == name.size() || name[end] == '/';
      if (starts && ends) return backend;
      pos = end;
    }
  }
  return {};
}

BenchComparison CompareBenchReports(const ParsedBenchReport& baseline,
                                    const ParsedBenchReport& candidate,
                                    const CompareOptions& options) {
  BenchComparison cmp;
  if (!baseline.name.empty() && !candidate.name.empty() &&
      baseline.name != candidate.name) {
    cmp.warnings.push_back("comparing records from different benchmarks: '" +
                           baseline.name + "' vs '" + candidate.name + "'");
  }
  if (baseline.fault_plan_hash != candidate.fault_plan_hash) {
    cmp.warnings.push_back(
        "fault plan hash mismatch (" + baseline.fault_plan_hash + " vs " +
        candidate.fault_plan_hash +
        "): runs faced different fault schedules, deltas may be spurious");
  }

  for (const auto& [name, base_value] : baseline.metrics) {
    const auto it = candidate.metrics.find(name);
    if (it == candidate.metrics.end()) {
      cmp.only_in_baseline.push_back(name);
      continue;
    }
    const double cand_value = it->second;
    MetricDelta d;
    d.name = name;
    d.baseline = base_value;
    d.candidate = cand_value;
    d.rel_delta = (cand_value - base_value) /
                  std::max(std::abs(base_value), kRelEps);
    d.threshold = ThresholdFor(name, options);
    d.polarity = MetricPolarity(name);
    if (std::abs(d.rel_delta) <= d.threshold) {
      d.verdict = MetricDelta::Verdict::kUnchanged;
    } else {
      switch (d.polarity) {
        case Polarity::kLowerBetter:
          d.verdict = d.rel_delta > 0.0 ? MetricDelta::Verdict::kRegression
                                        : MetricDelta::Verdict::kImprovement;
          break;
        case Polarity::kHigherBetter:
          d.verdict = d.rel_delta < 0.0 ? MetricDelta::Verdict::kRegression
                                        : MetricDelta::Verdict::kImprovement;
          break;
        case Polarity::kNeutral:
          d.verdict = MetricDelta::Verdict::kChanged;
          break;
      }
    }
    if (d.verdict == MetricDelta::Verdict::kRegression) ++cmp.regressions;
    if (d.verdict == MetricDelta::Verdict::kImprovement) ++cmp.improvements;
    cmp.deltas.push_back(std::move(d));
  }
  for (const auto& [name, value] : candidate.metrics) {
    (void)value;
    if (baseline.metrics.find(name) == baseline.metrics.end()) {
      cmp.only_in_candidate.push_back(name);
    }
  }

  std::stable_sort(cmp.deltas.begin(), cmp.deltas.end(),
                   [](const MetricDelta& a, const MetricDelta& b) {
                     const int ra = VerdictRank(a.verdict);
                     const int rb = VerdictRank(b.verdict);
                     if (ra != rb) return ra < rb;
                     const double ma = std::abs(a.rel_delta);
                     const double mb = std::abs(b.rel_delta);
                     if (ma != mb) return ma > mb;
                     return a.name < b.name;
                   });
  return cmp;
}

std::string ComparisonText(const BenchComparison& comparison,
                           std::size_t max_rows) {
  std::ostringstream out;
  out << "=== malisim-bench: baseline vs candidate ===\n";
  for (const std::string& warning : comparison.warnings) {
    out << "WARNING: " << warning << "\n";
  }

  std::size_t changed = 0;
  std::size_t unchanged = 0;
  for (const MetricDelta& d : comparison.deltas) {
    if (d.verdict == MetricDelta::Verdict::kChanged) ++changed;
    if (d.verdict == MetricDelta::Verdict::kUnchanged) ++unchanged;
  }
  out << comparison.deltas.size() << " shared metric(s): "
      << comparison.regressions << " regression(s), "
      << comparison.improvements << " improvement(s), " << changed
      << " neutral change(s), " << unchanged << " within threshold\n";

  // Per-backend regression/improvement rollup, shown only when any metric
  // carries a backend segment (single-device historical records don't).
  {
    std::map<std::string_view, std::pair<int, int>> per_backend;
    for (const MetricDelta& d : comparison.deltas) {
      const std::string_view backend = MetricBackend(d.name);
      if (backend.empty()) continue;
      auto& [reg, imp] = per_backend[backend];
      if (d.verdict == MetricDelta::Verdict::kRegression) ++reg;
      if (d.verdict == MetricDelta::Verdict::kImprovement) ++imp;
    }
    if (!per_backend.empty()) {
      out << "Per-backend:";
      bool first = true;
      for (const auto& [backend, counts] : per_backend) {
        out << (first ? " " : "; ") << backend << " " << counts.first
            << " regression(s), " << counts.second << " improvement(s)";
        first = false;
      }
      out << "\n";
    }
  }

  const auto table_for = [&](MetricDelta::Verdict verdict,
                             const char* title) {
    // Rows grouped by backend (backend-less metrics first), keeping the
    // severity ranking within each group.
    std::vector<const MetricDelta*> matching;
    for (const MetricDelta& d : comparison.deltas) {
      if (d.verdict == verdict) matching.push_back(&d);
    }
    if (matching.empty()) return;
    std::stable_sort(matching.begin(), matching.end(),
                     [](const MetricDelta* a, const MetricDelta* b) {
                       return MetricBackend(a->name) < MetricBackend(b->name);
                     });
    Table t({"backend", "metric", "baseline", "candidate", "delta",
             "threshold"});
    std::size_t rows = 0;
    for (const MetricDelta* d : matching) {
      if (rows >= max_rows) break;
      ++rows;
      const std::string_view backend = MetricBackend(d->name);
      t.BeginRow();
      t.AddCell(backend.empty() ? "-" : std::string(backend));
      t.AddCell(d->name);
      t.AddCell(FormatDouble(d->baseline, 6));
      t.AddCell(FormatDouble(d->candidate, 6));
      t.AddCell(Percent(d->rel_delta));
      t.AddCell(Percent(d->threshold));
    }
    out << "\n" << title << " (" << matching.size() << "):\n" << t.ToAscii();
    if (matching.size() > rows) {
      out << "  ... and " << (matching.size() - rows) << " more\n";
    }
  };
  table_for(MetricDelta::Verdict::kRegression, "Regressions");
  table_for(MetricDelta::Verdict::kImprovement, "Improvements");
  table_for(MetricDelta::Verdict::kChanged, "Neutral changes");

  if (!comparison.only_in_baseline.empty()) {
    out << "\nOnly in baseline (" << comparison.only_in_baseline.size()
        << "):\n";
    std::size_t rows = 0;
    for (const std::string& name : comparison.only_in_baseline) {
      if (rows++ >= max_rows) {
        out << "  ...\n";
        break;
      }
      out << "  " << name << "\n";
    }
  }
  if (!comparison.only_in_candidate.empty()) {
    out << "\nOnly in candidate (" << comparison.only_in_candidate.size()
        << "):\n";
    std::size_t rows = 0;
    for (const std::string& name : comparison.only_in_candidate) {
      if (rows++ >= max_rows) {
        out << "  ...\n";
        break;
      }
      out << "  " << name << "\n";
    }
  }

  out << "\nVerdict: "
      << (comparison.HasRegressions() ? "REGRESSION" : "OK") << "\n";
  return out.str();
}

std::string ComparisonJson(const BenchComparison& comparison) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema");
  w.String("malisim-bench-compare-v1");
  w.Key("regressions");
  w.Number(static_cast<std::uint64_t>(comparison.regressions));
  w.Key("improvements");
  w.Number(static_cast<std::uint64_t>(comparison.improvements));
  w.Key("warnings");
  w.BeginArray();
  for (const std::string& warning : comparison.warnings) w.String(warning);
  w.EndArray();
  w.Key("deltas");
  w.BeginArray();
  std::uint64_t unchanged = 0;
  for (const MetricDelta& d : comparison.deltas) {
    if (d.verdict == MetricDelta::Verdict::kUnchanged) {
      ++unchanged;
      continue;
    }
    w.BeginObject();
    w.Key("name");
    w.String(d.name);
    w.Key("baseline");
    w.Number(d.baseline);
    w.Key("candidate");
    w.Number(d.candidate);
    w.Key("rel_delta");
    w.Number(d.rel_delta);
    w.Key("threshold");
    w.Number(d.threshold);
    w.Key("polarity");
    w.String(PolarityName(d.polarity));
    w.Key("verdict");
    w.String(VerdictName(d.verdict));
    w.EndObject();
  }
  w.EndArray();
  w.Key("unchanged");
  w.Number(unchanged);
  w.Key("only_in_baseline");
  w.BeginArray();
  for (const std::string& name : comparison.only_in_baseline) w.String(name);
  w.EndArray();
  w.Key("only_in_candidate");
  w.BeginArray();
  for (const std::string& name : comparison.only_in_candidate) w.String(name);
  w.EndArray();
  w.EndObject();
  return w.str() + "\n";
}

}  // namespace malisim::obs
