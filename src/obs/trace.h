// Chrome/Perfetto trace building: spans ("ph":"X"), counter tracks
// ("ph":"C") and metadata ("ph":"M"), serialized as the Chrome trace event
// JSON array format (loadable at ui.perfetto.dev or chrome://tracing).
//
// Timestamp semantics: every (pid, tid) track has its OWN cursor. AddSpan
// appends at the track's cursor and advances it, so spans on one track are
// laid out back-to-back while independent tracks start at t = 0 and run
// concurrently. This matches what the tracks mean: each tid is an
// independent device/core timeline, not a slice of one global schedule.
// (Earlier versions used a single global cursor, which made independent
// CPU and GPU runs look sequential.) Use AddSpanAt for explicit placement.
//
// Multiple pids are separate processes in the viewer — used to separate
// timebases: the modelled-device timeline (µs-scale kernels) and the power
// meter timeline (seconds-scale measurement windows) would be unreadable on
// one axis.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace malisim::obs {

/// One event in the Chrome trace event format.
struct TraceEvent {
  char phase = 'X';  // 'X' span, 'C' counter, 'M' metadata, 's'/'f' flow
  std::string name;
  std::string category;
  double timestamp_us = 0;   // "ts"
  double duration_us = 0;    // "dur" (spans only)
  int pid = 1;
  int tid = 1;
  /// Flow-event binding id ("id") for 's'/'f' events; pairs a flow start
  /// with its finish so the viewer draws the causal arrow.
  std::uint64_t flow_id = 0;
  /// String args shown in the inspector ("args": {"k": "v"}).
  std::vector<std::pair<std::string, std::string>> args;
  /// Numeric args ("args": {"k": 1.5}) — counter series for 'C' events.
  std::vector<std::pair<std::string, double>> metrics;
};

class TraceBuilder {
 public:
  virtual ~TraceBuilder() = default;

  /// Appends a span at the (pid=1, tid) track cursor and advances it.
  void AddSpan(const std::string& name, const std::string& category, int tid,
               double duration_sec,
               std::vector<std::pair<std::string, std::string>> args = {});

  /// Appends a span at an explicit position; does not move any cursor past
  /// its end unless the span extends beyond the track's current cursor.
  void AddSpanAt(const std::string& name, const std::string& category,
                 int pid, int tid, double timestamp_us, double duration_us,
                 std::vector<std::pair<std::string, std::string>> args = {},
                 std::vector<std::pair<std::string, double>> metrics = {});

  /// Appends a causal-flow arrow: a flow start ('s') at the source point
  /// and a binding-enclosing finish ('f', "bp":"e") at the destination.
  /// The viewer draws an arrow from the span enclosing the start to the
  /// span enclosing the finish. `flow_id` must be unique per arrow.
  void AddFlow(const std::string& name, const std::string& category,
               std::uint64_t flow_id, int pid, int src_tid, double src_ts_us,
               int dst_tid, double dst_ts_us);

  /// Appends a "ph":"C" counter event: each metric becomes a series on the
  /// counter track `name`.
  void AddCounter(const std::string& name, int pid, double timestamp_us,
                  std::vector<std::pair<std::string, double>> metrics);

  /// Metadata: names the process / thread rows in the viewer.
  void SetProcessName(int pid, const std::string& name);
  void SetThreadName(int pid, int tid, const std::string& name);

  /// Current cursor (µs) of a track; 0 for untouched tracks.
  double cursor_us(int pid, int tid) const;

  const std::vector<TraceEvent>& events() const { return events_; }

  /// Serializes to the Chrome trace event JSON array format.
  std::string ToJson() const;

  /// Writes ToJson() to a file.
  Status WriteTo(const std::string& path) const;

 private:
  std::vector<TraceEvent> events_;
  std::map<std::pair<int, int>, double> cursors_us_;  // (pid, tid) -> cursor
};

}  // namespace malisim::obs
