#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <tuple>

#include "common/status.h"
#include "common/table.h"
#include "obs/power_sampler.h"

namespace malisim::obs {

LogHistogram::LogHistogram(const Layout& layout) : layout_(layout) {
  MALI_CHECK_MSG(layout_.min_edge > 0.0, "histogram min_edge must be > 0");
  MALI_CHECK_MSG(layout_.decades > 0 && layout_.buckets_per_decade > 0,
                 "histogram needs at least one bucket");
  const int inner = layout_.decades * layout_.buckets_per_decade;
  edges_.resize(static_cast<std::size_t>(inner) + 1);
  for (int i = 0; i <= inner; ++i) {
    edges_[static_cast<std::size_t>(i)] =
        layout_.min_edge *
        std::pow(10.0, static_cast<double>(i) /
                           static_cast<double>(layout_.buckets_per_decade));
  }
  buckets_.assign(static_cast<std::size_t>(inner) + 2, 0);
}

int LogHistogram::BucketIndex(double value) const {
  // NaN, negatives, zero and anything below the first edge file into the
  // underflow bucket; exact edges belong to the bucket above them.
  if (!(value >= edges_.front())) return 0;
  if (value >= edges_.back()) return num_buckets() - 1;
  const int inner = static_cast<int>(edges_.size()) - 1;
  int idx = static_cast<int>(std::floor(
      std::log10(value / layout_.min_edge) *
      static_cast<double>(layout_.buckets_per_decade)));
  idx = std::clamp(idx, 0, inner - 1);
  // log10 rounding can misplace values sitting exactly on (or within one
  // ulp of) an edge; nudge until edges_[idx] <= value < edges_[idx + 1].
  while (idx > 0 && value < edges_[static_cast<std::size_t>(idx)]) --idx;
  while (idx < inner - 1 && value >= edges_[static_cast<std::size_t>(idx) + 1])
    ++idx;
  return idx + 1;  // shift past the underflow bucket
}

double LogHistogram::LowerEdge(int index) const {
  if (index <= 0) return -std::numeric_limits<double>::infinity();
  const int inner = static_cast<int>(edges_.size()) - 1;
  if (index >= inner + 1) return edges_.back();
  return edges_[static_cast<std::size_t>(index) - 1];
}

double LogHistogram::UpperEdge(int index) const {
  if (index <= 0) return edges_.front();
  const int inner = static_cast<int>(edges_.size()) - 1;
  if (index >= inner + 1) return std::numeric_limits<double>::infinity();
  return edges_[static_cast<std::size_t>(index)];
}

void LogHistogram::Add(double value) {
  ++buckets_[static_cast<std::size_t>(BucketIndex(value))];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_.Add(value);
}

void LogHistogram::Merge(const LogHistogram& other) {
  MALI_CHECK_MSG(layout_ == other.layout_, "histogram layout mismatch");
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  count_ += other.count_;
  sum_.Add(other.sum());  // merged compensation is approximate; fine for
                          // reporting (canonical-order feeds never merge)
}

double LogHistogram::mean() const {
  if (count_ == 0) return 0.0;
  return sum() / static_cast<double>(count_);
}

double LogHistogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Nearest-rank: the smallest value whose cumulative count reaches
  // ceil(p/100 * count), at bucket resolution.
  std::uint64_t target = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  if (target == 0) target = 1;
  std::uint64_t cumulative = 0;
  for (int i = 0; i < num_buckets(); ++i) {
    cumulative += buckets_[static_cast<std::size_t>(i)];
    if (cumulative >= target) {
      // Report the bucket's upper edge, clamped to the exact extremes so
      // the estimate is sharp for single-bucket distributions.
      return std::clamp(UpperEdge(i), min_, max_);
    }
  }
  return max_;
}

MetricsAggregator::MetricsAggregator(const LogHistogram::Layout& layout)
    : layout_(layout) {}

void MetricsAggregator::SetGauge(const std::string& name, double value) {
  gauges_[name] = value;
}

void MetricsAggregator::AddCounter(const std::string& name, double delta) {
  counters_[name] += delta;
}

void MetricsAggregator::Observe(const std::string& name, double value) {
  series_[name].push_back(value);
}

void MetricsAggregator::MergeHistogram(const std::string& name,
                                       const LogHistogram& hist) {
  auto it = merged_.find(name);
  if (it == merged_.end()) {
    merged_.emplace(name, hist);
    return;
  }
  it->second.Merge(hist);
}

namespace {

double TotalStallSec(const KernelRecord& k) {
  KahanSum stall;
  for (const CoreKernelCounters& c : k.cores) stall.Add(c.stall_sec);
  return stall.value();
}

/// Canonical total order on kernel records: any two recorders holding the
/// same record multiset sort into the same sequence (ties are identical in
/// every field we accumulate, so their relative order cannot matter).
bool KernelLess(const KernelRecord& a, const KernelRecord& b) {
  return std::tie(a.device, a.kernel, a.seconds, a.work_items, a.dram_bytes,
                  a.loads, a.stores, a.atomics, a.barriers_crossed) <
         std::tie(b.device, b.kernel, b.seconds, b.work_items, b.dram_bytes,
                  b.loads, b.stores, b.atomics, b.barriers_crossed);
}

bool CommandLess(const CommandRecord& a, const CommandRecord& b) {
  return std::tie(a.kind, a.detail, a.bytes, a.seconds) <
         std::tie(b.kind, b.detail, b.bytes, b.seconds);
}

bool SegmentLess(const PowerSegment& a, const PowerSegment& b) {
  return std::tie(a.label, a.window_sec) < std::tie(b.label, b.window_sec);
}

bool FaultLess(const FaultRecord& a, const FaultRecord& b) {
  return std::tie(a.site, a.key, a.action, a.detail) <
         std::tie(b.site, b.key, b.action, b.detail);
}

std::string Join(const std::string& prefix, const std::string& name) {
  return prefix.empty() ? name : prefix + "/" + name;
}

}  // namespace

void MetricsAggregator::IngestRecorder(const Recorder& recorder,
                                       const power::PowerModel& model,
                                       const std::string& prefix) {
  RecorderSnapshot snapshot = recorder.TakeSnapshot();

  // Kernels: per-launch time/stall histograms, global and per kernel name.
  std::sort(snapshot.kernels.begin(), snapshot.kernels.end(), KernelLess);
  for (const KernelRecord& k : snapshot.kernels) {
    Observe(Join(prefix, "kernel_time_sec"), k.seconds);
    Observe(Join(prefix, "kernel_time_sec/" + k.device + "/" + k.kernel),
            k.seconds);
    Observe(Join(prefix, "kernel_stall_sec"), TotalStallSec(k));
    AddCounter(Join(prefix, "kernels_launched"));
    AddCounter(Join(prefix, "work_items"),
               static_cast<double>(k.work_items));
    AddCounter(Join(prefix, "dram_bytes"), static_cast<double>(k.dram_bytes));
    AddCounter(Join(prefix, "atomics"), static_cast<double>(k.atomics));
    if (!k.bottleneck.empty()) {
      AddCounter(Join(prefix, "bottleneck/" + k.bottleneck));
    }
  }

  // Queue commands: latency histogram per command kind.
  std::sort(snapshot.commands.begin(), snapshot.commands.end(), CommandLess);
  for (const CommandRecord& c : snapshot.commands) {
    Observe(Join(prefix, "queue_cmd_sec"), c.seconds);
    Observe(Join(prefix, "queue_cmd_sec/" + c.kind), c.seconds);
    AddCounter(Join(prefix, "queue_cmds"));
    AddCounter(Join(prefix, "queue_bytes"), static_cast<double>(c.bytes));
  }

  // Power segments: per-rail watts histograms across segments plus exact
  // per-segment gauges and rail-decomposed energy totals. Rails are the
  // model's piecewise-constant truth (no meter noise), so per-segment
  // values are deterministic; sorting by label canonicalizes the
  // accumulation order of the energy sums.
  std::sort(snapshot.power_segments.begin(), snapshot.power_segments.end(),
            SegmentLess);
  const PowerSampler sampler(&model, recorder.options().power_hz);
  for (const PowerSegment& s : snapshot.power_segments) {
    const RailPower rails = sampler.Rails(s.profile);
    Observe(Join(prefix, "segment_power_w/total"), rails.total);
    Observe(Join(prefix, "segment_power_w/cpu"), rails.cpu);
    Observe(Join(prefix, "segment_power_w/gpu"), rails.gpu);
    Observe(Join(prefix, "segment_power_w/dram"), rails.dram);
    SetGauge(Join(prefix, "segment/" + s.label + "/avg_w"), rails.total);
    SetGauge(Join(prefix, "segment/" + s.label + "/energy_j"),
             rails.total * s.window_sec);
    AddCounter(Join(prefix, "energy_j/total"), rails.total * s.window_sec);
    AddCounter(Join(prefix, "energy_j/static"),
               rails.static_w * s.window_sec);
    AddCounter(Join(prefix, "energy_j/cpu"), rails.cpu * s.window_sec);
    AddCounter(Join(prefix, "energy_j/gpu"), rails.gpu * s.window_sec);
    AddCounter(Join(prefix, "energy_j/dram"), rails.dram * s.window_sec);
  }

  // Fault / resilience events: counts by (site, action).
  std::sort(snapshot.faults.begin(), snapshot.faults.end(), FaultLess);
  for (const FaultRecord& f : snapshot.faults) {
    AddCounter(Join(prefix, "faults"));
    AddCounter(Join(prefix, "faults/" + f.site + "/" + f.action));
  }
}

namespace {

HistogramStat StatFromHistogram(const LogHistogram& hist) {
  HistogramStat stat;
  stat.layout = hist.layout();
  stat.count = hist.count();
  stat.min = hist.min();
  stat.max = hist.max();
  stat.sum = hist.sum();
  stat.mean = hist.mean();
  stat.p50 = hist.Percentile(50.0);
  stat.p90 = hist.Percentile(90.0);
  stat.p99 = hist.Percentile(99.0);
  for (int i = 0; i < hist.num_buckets(); ++i) {
    if (hist.bucket_count(i) > 0) {
      stat.buckets.emplace_back(i, hist.bucket_count(i));
    }
  }
  return stat;
}

}  // namespace

MetricsSnapshot MetricsAggregator::Finalize() const {
  MetricsSnapshot snapshot;
  snapshot.gauges = gauges_;
  snapshot.counters = counters_;
  for (const auto& [name, values] : series_) {
    std::vector<double> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    LogHistogram hist(layout_);
    for (double v : sorted) hist.Add(v);
    snapshot.histograms.emplace(name, StatFromHistogram(hist));
  }
  for (const auto& [name, hist] : merged_) {
    snapshot.histograms.emplace(name, StatFromHistogram(hist));
  }
  return snapshot;
}

std::string SummaryReport(const Recorder& recorder,
                          const power::PowerModel& model) {
  RecorderSnapshot snapshot = recorder.TakeSnapshot();
  std::ostringstream out;
  out << "=== malisim-prof summary ===\n";
  out << snapshot.kernels.size() << " kernel launch(es), "
      << snapshot.commands.size() << " queue command(s), "
      << snapshot.power_segments.size() << " power segment(s), "
      << snapshot.faults.size() << " fault event(s)\n";

  if (!snapshot.kernels.empty()) {
    // One histogram per (device, kernel), fed in canonical order.
    std::sort(snapshot.kernels.begin(), snapshot.kernels.end(), KernelLess);
    std::map<std::pair<std::string, std::string>, LogHistogram> per_kernel;
    for (const KernelRecord& k : snapshot.kernels) {
      auto [it, inserted] = per_kernel.try_emplace({k.device, k.kernel});
      (void)inserted;
      it->second.Add(k.seconds);
    }
    Table table({"kernel", "device", "launches", "p50 ms", "p90 ms", "p99 ms",
                 "max ms", "total ms"});
    for (const auto& [key, hist] : per_kernel) {
      table.BeginRow();
      table.AddCell(key.second);
      table.AddCell(key.first);
      table.AddCell(std::to_string(hist.count()));
      table.AddNumber(hist.Percentile(50.0) * 1e3, 4);
      table.AddNumber(hist.Percentile(90.0) * 1e3, 4);
      table.AddNumber(hist.Percentile(99.0) * 1e3, 4);
      table.AddNumber(hist.max() * 1e3, 4);
      table.AddNumber(hist.sum() * 1e3, 4);
    }
    out << "\nPer-kernel modelled-time percentiles (bucketed, log-scale):\n"
        << table.ToAscii();

    // Per-backend rollup. Under the hetero backend each launch lands on the
    // child device that executed it, so the work-item share IS the realized
    // GPU/CPU split ratio.
    struct DeviceTotals {
      std::uint64_t launches = 0;
      std::uint64_t work_items = 0;
      KahanSum seconds;
    };
    std::map<std::string, DeviceTotals> per_device;
    std::uint64_t all_items = 0;
    for (const KernelRecord& k : snapshot.kernels) {
      DeviceTotals& t = per_device[k.device];
      ++t.launches;
      t.work_items += k.work_items;
      t.seconds.Add(k.seconds);
      all_items += k.work_items;
    }
    Table devices({"device", "launches", "work-items", "split share",
                   "total ms"});
    for (const auto& [device, t] : per_device) {
      devices.BeginRow();
      devices.AddCell(device);
      devices.AddCell(std::to_string(t.launches));
      devices.AddCell(std::to_string(t.work_items));
      devices.AddNumber(all_items > 0 ? static_cast<double>(t.work_items) /
                                            static_cast<double>(all_items)
                                      : 0.0,
                        3);
      devices.AddNumber(t.seconds.value() * 1e3, 4);
    }
    out << "\nPer-backend rollup (split share = work-item fraction):\n"
        << devices.ToAscii();
  }

  if (!snapshot.power_segments.empty()) {
    std::sort(snapshot.power_segments.begin(), snapshot.power_segments.end(),
              SegmentLess);
    const PowerSampler sampler(&model, recorder.options().power_hz);
    KahanSum total_j, cpu_j, gpu_j, dram_j, static_j;
    for (const PowerSegment& s : snapshot.power_segments) {
      const RailPower rails = sampler.Rails(s.profile);
      total_j.Add(rails.total * s.window_sec);
      cpu_j.Add(rails.cpu * s.window_sec);
      gpu_j.Add(rails.gpu * s.window_sec);
      dram_j.Add(rails.dram * s.window_sec);
      static_j.Add(rails.static_w * s.window_sec);
    }
    out << "\nEnergy (meter windows): total " << FormatDouble(total_j.value(), 3)
        << " J = static " << FormatDouble(static_j.value(), 3) << " J + cpu "
        << FormatDouble(cpu_j.value(), 3) << " J + gpu "
        << FormatDouble(gpu_j.value(), 3) << " J + dram "
        << FormatDouble(dram_j.value(), 3) << " J\n";
    // Rail-to-backend attribution: the cpu rail powers the A15 cluster, the
    // gpu rail the Mali cores. Shares are of the compute (cpu+gpu) energy,
    // so on the hetero backend they mirror the co-execution split.
    const double compute_j = cpu_j.value() + gpu_j.value();
    if (compute_j > 0.0) {
      out << "Per-backend energy share (of cpu+gpu rails): cortex-a15 "
          << FormatDouble(cpu_j.value() / compute_j, 3) << ", mali-t604 "
          << FormatDouble(gpu_j.value() / compute_j, 3) << "\n";
    }
  }
  return out.str();
}

}  // namespace malisim::obs
