// BENCH_*.json: the schema-versioned, machine-comparable record one
// benchmark binary emits per run (--bench-json=PATH), and the comparison
// engine behind the malisim-bench CLI.
//
// A record carries provenance (git sha, fault plan hash, run options), one
// row per (benchmark, variant, precision) cell with the paper's three
// figures of merit plus derived energy-to-solution and energy-delay
// product, the model-vs-paper reference deltas, and the full metrics
// snapshot (gauges / counters / log-scale histograms) aggregated from the
// run's observability recorder.
//
// Byte-identity contract: a record is a pure function of (code, seed,
// problem sizes, fault options). Host thread count, wall-clock time and
// filesystem paths are deliberately excluded, so the same binary at
// --threads 1 and --threads 4 emits byte-identical files — that identity
// is regression-tested. Provenance fields (git sha) are metadata:
// malisim-bench never compares them numerically.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace malisim::obs {

inline constexpr std::string_view kBenchReportSchema = "malisim-bench-v1";

/// One (benchmark, variant, precision) measurement cell.
struct BenchCell {
  std::string benchmark;
  std::string variant;    // "Serial" / "OpenMP" / "OpenCL" / "OpenCL Opt"
  std::string precision;  // "fp32" / "fp64"
  bool available = false;
  std::string unavailable_reason;
  double seconds = 0.0;
  double power_mean_w = 0.0;
  double power_stddev_w = 0.0;
  double energy_j = 0.0;
  /// Energy-delay product (J*s): energy_j * seconds — the figure of merit
  /// that penalizes saving energy by running slower.
  double edp_js = 0.0;
  double speedup_vs_serial = 0.0;
  double power_vs_serial = 0.0;
  double energy_vs_serial = 0.0;
  int failed_repetitions = 0;
  std::string degraded_to;
  bool validated = false;
};

/// Model-vs-paper reference delta for one figure cell
/// (key "fig2/<benchmark>/<variant>/<precision>", etc.).
struct PaperDelta {
  std::string key;
  double paper = 0.0;
  double model = 0.0;
};

/// Simulator throughput for one precision sweep. The counts and modelled
/// seconds are order-independent sums over the recorder's kernel records,
/// so they obey the byte-identity contract; the host_* fields are measured
/// wall-clock and explicitly EXCLUDED from it (the bench-json identity
/// check zeroes them before comparing, and malisim-bench compares them
/// against a loose default threshold).
struct SimThroughput {
  std::string sweep;  // "fp32" / "fp64"
  // Deterministic (modelled) totals.
  std::uint64_t work_items = 0;
  std::uint64_t opcodes = 0;
  std::uint64_t launches = 0;
  double modelled_sec = 0.0;
  // Measured host wall-clock for the sweep and the derived rates.
  double host_sec = 0.0;
  double work_items_per_host_sec = 0.0;
  double opcodes_per_host_sec = 0.0;
  double host_sec_per_modelled_sec = 0.0;
};

struct BenchReportMeta {
  std::string name;             // emitting binary, e.g. "fig2_performance"
  std::string git_sha;          // provenance only, never compared
  std::string fault_plan_hash;  // hex digest of fault::FaultPlan::Hash()
  /// Sorted-on-emission (key, value) option strings. Anything that changes
  /// modelled numbers belongs here (seed, sizes, fault knobs); anything
  /// that must NOT (host threads, output paths) must stay out.
  std::vector<std::pair<std::string, std::string>> options;
};

/// Serializes one record. `cells` order is preserved (callers pass a
/// deterministic order); `paper_deltas` and all metric maps are emitted
/// key-sorted. `throughput` (one entry per sweep, emitted in order) lands
/// as the "sim_throughput" / "sim_throughput_host" sections; when empty,
/// both sections are omitted and the record matches historical builds.
std::string BenchReportJson(const BenchReportMeta& meta,
                            const std::vector<BenchCell>& cells,
                            const std::vector<PaperDelta>& paper_deltas,
                            const MetricsSnapshot& metrics,
                            const std::vector<SimThroughput>& throughput = {});

Status WriteBenchReport(const BenchReportMeta& meta,
                        const std::vector<BenchCell>& cells,
                        const std::vector<PaperDelta>& paper_deltas,
                        const MetricsSnapshot& metrics,
                        const std::string& path,
                        const std::vector<SimThroughput>& throughput = {});

/// A loaded record, flattened into comparable scalars:
///   cell/<benchmark>/<variant>/<precision>/<field>
///   gauge/<name>   counter/<name>   hist/<name>/{p50,p90,p99,max,mean,count}
///   sim_throughput/<sweep>/<field>   sim_throughput_host/<sweep>/<field>
struct ParsedBenchReport {
  std::string schema;
  std::string name;
  std::string git_sha;
  std::string fault_plan_hash;
  std::map<std::string, double> metrics;
};

/// Parses and flattens a BENCH record; InvalidArgument on malformed JSON
/// or a schema this build does not understand.
StatusOr<ParsedBenchReport> ParseBenchReport(std::string_view json);
StatusOr<ParsedBenchReport> LoadBenchReport(const std::string& path);

/// Which direction is "worse" for a metric. Classification is by name:
///   * ".../available" and anything containing "speedup" — higher is better
///   * "counter/..." and ".../count" — neutral (reported, never a
///     regression: a fault-count change is signal, not a verdict)
///   * times, watts, joules, EDP, stalls — lower is better
///   * everything else — neutral
enum class Polarity { kLowerBetter, kHigherBetter, kNeutral };
Polarity MetricPolarity(std::string_view name);

/// The backend a metric is scoped to, taken from the '/'-separated device
/// segment recorders embed in metric names ("mali-t604" in
/// "hist/fp32/kernel_time_sec/mali-t604/vecadd/p50"); "" for metrics that
/// are not backend-scoped. ComparisonText groups its tables by this.
std::string_view MetricBackend(std::string_view name);

struct CompareOptions {
  /// Relative threshold: |delta| / max(|baseline|, eps) beyond which a
  /// directional metric counts as a regression/improvement.
  double threshold = 0.05;
  /// Per-metric overrides: longest matching name prefix wins. Parsed from
  /// --threshold-spec=prefix=value[,...].
  std::vector<std::pair<std::string, double>> prefix_thresholds;
};

struct MetricDelta {
  enum class Verdict { kRegression, kImprovement, kChanged, kUnchanged };
  std::string name;
  double baseline = 0.0;
  double candidate = 0.0;
  double rel_delta = 0.0;  // (candidate - baseline) / max(|baseline|, eps)
  double threshold = 0.0;  // the threshold that applied to this metric
  Polarity polarity = Polarity::kNeutral;
  Verdict verdict = Verdict::kUnchanged;
};

struct BenchComparison {
  /// Ranked: regressions first (largest |rel_delta| first), then
  /// improvements, then neutral-but-changed, then unchanged.
  std::vector<MetricDelta> deltas;
  std::vector<std::string> only_in_baseline;
  std::vector<std::string> only_in_candidate;
  int regressions = 0;
  int improvements = 0;
  /// Non-fatal comparability warnings (name or fault-plan-hash mismatch).
  std::vector<std::string> warnings;

  bool HasRegressions() const { return regressions > 0; }
};

BenchComparison CompareBenchReports(const ParsedBenchReport& baseline,
                                    const ParsedBenchReport& candidate,
                                    const CompareOptions& options);

/// Human-readable ranked report; `max_rows` bounds each table.
std::string ComparisonText(const BenchComparison& comparison,
                           std::size_t max_rows = 25);
/// Machine-readable report, schema "malisim-bench-compare-v1". Unchanged
/// metrics are summarized by count, not listed.
std::string ComparisonJson(const BenchComparison& comparison);

}  // namespace malisim::obs
