#include "obs/recorder.h"

#include <utility>

#include "common/log.h"

namespace malisim::obs {

void Recorder::NoteRecordLocked() {
  if (!sealed_) return;
  ++late_records_;
  if (late_records_ == 1) {
    MALI_LOG_WARN(
        "obs: record added to a sealed recorder — an export taken before "
        "this point is missing events; re-export or seal later");
  }
}

void Recorder::AddKernel(KernelRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  NoteRecordLocked();
  kernels_.push_back(std::move(record));
}

void Recorder::AddCommand(CommandRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  NoteRecordLocked();
  commands_.push_back(std::move(record));
}

void Recorder::AddPowerSegment(PowerSegment segment) {
  std::lock_guard<std::mutex> lock(mutex_);
  NoteRecordLocked();
  segments_.push_back(std::move(segment));
}

void Recorder::AddFault(FaultRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  NoteRecordLocked();
  faults_.push_back(std::move(record));
}

void Recorder::AddGraph(GraphRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  NoteRecordLocked();
  graphs_.push_back(std::move(record));
}

void Recorder::AddSlo(SloRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  NoteRecordLocked();
  slos_.push_back(std::move(record));
}

std::vector<KernelRecord> Recorder::kernels() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return kernels_;
}

std::vector<CommandRecord> Recorder::commands() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return commands_;
}

std::vector<PowerSegment> Recorder::power_segments() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return segments_;
}

std::vector<FaultRecord> Recorder::faults() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return faults_;
}

std::vector<GraphRecord> Recorder::graphs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return graphs_;
}

std::vector<SloRecord> Recorder::slos() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slos_;
}

RecorderSnapshot Recorder::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RecorderSnapshot snapshot;
  snapshot.kernels = kernels_;
  snapshot.commands = commands_;
  snapshot.power_segments = segments_;
  snapshot.faults = faults_;
  snapshot.graphs = graphs_;
  snapshot.slos = slos_;
  return snapshot;
}

void Recorder::Seal() {
  std::lock_guard<std::mutex> lock(mutex_);
  sealed_ = true;
}

bool Recorder::sealed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sealed_;
}

std::uint64_t Recorder::late_records() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return late_records_;
}

}  // namespace malisim::obs
