#include "obs/recorder.h"

#include <utility>

namespace malisim::obs {

void Recorder::AddKernel(KernelRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  kernels_.push_back(std::move(record));
}

void Recorder::AddCommand(CommandRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  commands_.push_back(std::move(record));
}

void Recorder::AddPowerSegment(PowerSegment segment) {
  std::lock_guard<std::mutex> lock(mutex_);
  segments_.push_back(std::move(segment));
}

void Recorder::AddFault(FaultRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  faults_.push_back(std::move(record));
}

std::vector<KernelRecord> Recorder::kernels() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return kernels_;
}

std::vector<CommandRecord> Recorder::commands() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return commands_;
}

std::vector<PowerSegment> Recorder::power_segments() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return segments_;
}

std::vector<FaultRecord> Recorder::faults() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return faults_;
}

}  // namespace malisim::obs
