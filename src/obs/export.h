// Export sinks for recorded observability data:
//  * BuildTrace / WritePerfettoTrace — Chrome/Perfetto trace with per-core
//    kernel spans (work-group batch slices nested inside), the host command
//    queue, and a sampled per-rail power counter track ("ph":"C").
//  * MetricsJson / WriteMetricsJson — machine-readable dump (schema
//    "malisim-prof-v1"): per-kernel opcode histograms, cache hit rates,
//    pipe attribution, occupancy, per-rail power segments and samples.
//  * KernelMetricsCsv / PowerTimelineCsv — flat CSV for plotting.
//  * TextReport — the malisim-prof console report: hot opcodes, cache hit
//    rates, pipe bottleneck, energy breakdown.
#pragma once

#include <string>

#include "common/status.h"
#include "obs/power_sampler.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "power/power_model.h"

namespace malisim::obs {

/// Trace track layout (pid 1 = modelled SoC, pid 2 = power meter).
inline constexpr int kTracePidSoc = 1;
inline constexpr int kTracePidMeter = 2;
inline constexpr int kTraceTidA15Base = 1;    // tids 1..2: A15 cores
inline constexpr int kTraceTidMaliBase = 11;  // tids 11..14: Mali cores
inline constexpr int kTraceTidQueue = 20;     // host command queue
/// Hetero co-execution sub-launches get their own pair of tracks (tid 30 =
/// the Mali half, tid 31 = the A15 half) named "hetero/mali" and
/// "hetero/a15", so a split launch reads as two overlapping lanes instead
/// of polluting the plain per-core device tracks.
inline constexpr int kTraceTidHeteroMali = 30;
inline constexpr int kTraceTidHeteroA15 = 31;
/// Scheduled event-graph lanes (tid 40 + sim lane index): the async
/// queue's modelled schedule with causal flow arrows between dependent
/// commands and the critical path marked.
inline constexpr int kTraceTidSchedBase = 40;
inline constexpr int kTraceTidMeter = 1;      // meter windows (pid 2)

/// Appends the recorder's contents to `trace`. Tracks are independent
/// timelines (per-track cursors): each device's kernels are laid out
/// back-to-back on its core tids, the command queue on its own tid, and
/// the power timeline on pid 2 with its own (seconds-scale) timebase.
void BuildTrace(const Recorder& recorder, const power::PowerModel& model,
                TraceBuilder* trace);

Status WritePerfettoTrace(const Recorder& recorder,
                          const power::PowerModel& model,
                          const std::string& path);

/// Full metrics dump, schema "malisim-prof-v1".
std::string MetricsJson(const Recorder& recorder,
                        const power::PowerModel& model);
Status WriteMetricsJson(const Recorder& recorder,
                        const power::PowerModel& model,
                        const std::string& path);

/// One row per (kernel launch, modelled core).
std::string KernelMetricsCsv(const Recorder& recorder);
Status WriteKernelMetricsCsv(const Recorder& recorder,
                             const std::string& path);

/// t_sec,segment,total_w,static_w,cpu_w,gpu_w,dram_w rows.
std::string PowerTimelineCsv(const PowerTimeline& timeline);
Status WritePowerTimelineCsv(const PowerTimeline& timeline,
                             const std::string& path);

/// Human-readable profile report (the malisim-prof console output).
std::string TextReport(const Recorder& recorder,
                       const power::PowerModel& model);

}  // namespace malisim::obs
