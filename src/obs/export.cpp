#include "obs/export.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/json.h"
#include "common/table.h"
#include "common/version.h"
#include "kir/opcode.h"

namespace malisim::obs {

namespace {

// CSV cells use the same locale-independent %.17g-equivalent rendering as
// the JSON exports (non-finite -> "0"), so profiles round-trip exactly.
std::string Num(double v) { return JsonNumber(v); }

// Comment header for the obs CSV artifacts: schema id + producing commit,
// so a stray profile_metrics.csv is attributable. '#' lines are skipped by
// pandas (comment='#') and gnuplot alike.
void CsvHeader(std::ostringstream* csv, const char* schema) {
  *csv << "# schema: " << schema << "\n# git: " << GitSha() << "\n";
}

void WriteRails(JsonWriter* w, const RailPower& r) {
  w->BeginObject();
  w->Key("total");
  w->Number(r.total);
  w->Key("static");
  w->Number(r.static_w);
  w->Key("cpu");
  w->Number(r.cpu);
  w->Key("gpu");
  w->Number(r.gpu);
  w->Key("dram");
  w->Number(r.dram);
  w->EndObject();
}

/// Cache accesses issued by a kernel: loads + stores + atomic read/write.
std::uint64_t CacheAccesses(const KernelRecord& k) {
  return k.loads + k.stores + 2 * k.atomics;
}

double HitRate(std::uint64_t accesses, std::uint64_t misses) {
  if (accesses == 0) return 1.0;
  return 1.0 - static_cast<double>(misses) / static_cast<double>(accesses);
}

std::uint64_t TotalL1Misses(const KernelRecord& k) {
  std::uint64_t n = 0;
  for (const CoreKernelCounters& c : k.cores) n += c.l1_misses;
  return n;
}

std::uint64_t TotalL2Misses(const KernelRecord& k) {
  std::uint64_t n = 0;
  for (const CoreKernelCounters& c : k.cores) n += c.l2_misses;
  return n;
}

Status WriteStringTo(const std::string& content, const std::string& path) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    return InvalidArgumentError("cannot open output '" + path + "'");
  }
  file << content;
  return file.good() ? Status::Ok()
                     : InternalError("short write to '" + path + "'");
}

}  // namespace

void BuildTrace(const Recorder& recorder, const power::PowerModel& model,
                TraceBuilder* trace) {
  const RecorderSnapshot snap = recorder.TakeSnapshot();
  const std::vector<KernelRecord>& kernels = snap.kernels;
  const std::vector<CommandRecord>& commands = snap.commands;
  const std::vector<PowerSegment>& segments = snap.power_segments;

  trace->SetProcessName(kTracePidSoc, "modelled SoC (Exynos 5250)");
  trace->SetThreadName(kTracePidSoc, kTraceTidA15Base + 0, "a15-core0");
  trace->SetThreadName(kTracePidSoc, kTraceTidA15Base + 1, "a15-core1");
  for (int c = 0; c < 4; ++c) {
    trace->SetThreadName(kTracePidSoc, kTraceTidMaliBase + c,
                         "mali-core" + std::to_string(c));
  }
  trace->SetThreadName(kTracePidSoc, kTraceTidQueue, "ocl-command-queue");

  // Hetero co-execution sub-launches get their own lane pair so a split
  // launch reads as two overlapping halves instead of interleaving with
  // plain per-core device spans. Stable names: "hetero/mali", "hetero/a15".
  bool any_hetero = false;
  for (const KernelRecord& k : kernels) any_hetero |= (k.scope == "hetero");
  if (any_hetero) {
    trace->SetThreadName(kTracePidSoc, kTraceTidHeteroMali, "hetero/mali");
    trace->SetThreadName(kTracePidSoc, kTraceTidHeteroA15, "hetero/a15");
  }

  // Kernel launches: back-to-back per device, one span per modelled core
  // with up to 8 nested work-group batch slices.
  double device_cursor_us[2] = {0.0, 0.0};  // [0]=a15, [1]=mali
  for (const KernelRecord& k : kernels) {
    if (k.scope == "hetero") {
      // One aggregated span per sub-range launch on the hetero lane.
      const bool on_mali = k.device == "mali-t604";
      std::uint64_t groups = 0;
      for (const CoreKernelCounters& c : k.cores) groups += c.groups;
      trace->AddSpan(k.kernel, "hetero",
                     on_mali ? kTraceTidHeteroMali : kTraceTidHeteroA15,
                     k.seconds,
                     {{"device", k.device},
                      {"groups", std::to_string(groups)},
                      {"bottleneck", k.bottleneck}});
      continue;
    }
    const bool on_mali = k.device == "mali-t604";
    const int base_tid = on_mali ? kTraceTidMaliBase : kTraceTidA15Base;
    double& cursor = device_cursor_us[on_mali ? 1 : 0];
    const double dur_us = k.seconds * 1e6;
    for (std::size_t c = 0; c < k.cores.size(); ++c) {
      const CoreKernelCounters& core = k.cores[c];
      const double core_dur_us = std::min(dur_us, core.core_sec * 1e6);
      if (core.groups == 0 && core_dur_us <= 0.0) continue;
      std::vector<std::pair<std::string, double>> metrics = {
          {"groups", static_cast<double>(core.groups)},
          {"l1_misses", static_cast<double>(core.l1_misses)},
          {"l2_misses", static_cast<double>(core.l2_misses)},
          {"arith_cycles", core.arith_cycles},
          {"ls_cycles", core.ls_cycles},
          {"stall_sec", core.stall_sec},
          {"imbalance", core.imbalance},
      };
      trace->AddSpanAt(k.kernel, k.device, kTracePidSoc,
                       base_tid + static_cast<int>(c), cursor, core_dur_us,
                       {{"bottleneck", k.bottleneck}}, std::move(metrics));
      // Work-group batch slices: evenly divided, at most 8 per core, so a
      // 10^5-group launch stays inspectable without a 10^5-event trace.
      const std::uint64_t batches = std::min<std::uint64_t>(core.groups, 8);
      for (std::uint64_t s = 0; s < batches; ++s) {
        const std::uint64_t g0 = core.groups * s / batches;
        const std::uint64_t g1 = core.groups * (s + 1) / batches;
        trace->AddSpanAt(
            "wg[" + std::to_string(g0) + ".." + std::to_string(g1) + ")",
            "work-groups", kTracePidSoc, base_tid + static_cast<int>(c),
            cursor + core_dur_us * static_cast<double>(s) /
                         static_cast<double>(batches),
            core_dur_us / static_cast<double>(batches),
            {{"groups", std::to_string(g1 - g0)}});
      }
    }
    cursor += dur_us;
  }

  // Host command queue, in submission order.
  double queue_cursor_us = 0.0;
  for (const CommandRecord& cmd : commands) {
    const std::string name =
        cmd.detail.empty() ? cmd.kind : cmd.kind + " " + cmd.detail;
    trace->AddSpanAt(name, "ocl", kTracePidSoc, kTraceTidQueue,
                     queue_cursor_us, cmd.seconds * 1e6,
                     {{"bytes", std::to_string(cmd.bytes)}});
    queue_cursor_us += cmd.seconds * 1e6;
  }

  // Scheduled event graphs: nodes at their modelled start/finish on
  // per-lane tracks, a causal flow arrow per dependency edge, and
  // critical-path membership in the args. Multiple graphs (one per
  // context) are laid out back-to-back.
  if (!snap.graphs.empty()) {
    int max_lane = 0;
    for (const GraphRecord& g : snap.graphs) {
      for (const GraphNodeRecord& n : g.nodes) max_lane = std::max(max_lane, n.lane);
    }
    static constexpr const char* kSchedLaneNames[] = {"sched/host",
                                                      "sched/compute",
                                                      "sched/transfer"};
    for (int lane = 0; lane <= max_lane; ++lane) {
      trace->SetThreadName(kTracePidSoc, kTraceTidSchedBase + lane,
                           lane < 3 ? kSchedLaneNames[lane]
                                    : "sched/lane" + std::to_string(lane));
    }
    std::uint64_t flow_id = 1;
    double base_us = 0.0;
    for (const GraphRecord& g : snap.graphs) {
      const double window =
          g.makespan_sec > 0.0 ? g.makespan_sec : 1.0;
      std::vector<std::pair<std::string, double>> lane_util;
      for (std::size_t lane = 0; lane < g.lane_busy_sec.size(); ++lane) {
        lane_util.emplace_back(
            lane < 3 ? kSchedLaneNames[lane]
                     : "sched/lane" + std::to_string(lane),
            g.lane_busy_sec[lane] / window);
      }
      trace->AddCounter("sched_lane_utilization", kTracePidSoc, base_us,
                        std::move(lane_util));
      for (std::size_t i = 0; i < g.nodes.size(); ++i) {
        const GraphNodeRecord& n = g.nodes[i];
        trace->AddSpanAt(
            n.label.empty() ? "cmd" : n.label, "sched:" + g.label,
            kTracePidSoc, kTraceTidSchedBase + n.lane,
            base_us + n.start_sec * 1e6,
            (n.finish_sec - n.start_sec) * 1e6,
            {{"critical", n.critical ? "true" : "false"}});
        for (const std::uint32_t dep : n.deps) {
          if (dep >= g.nodes.size()) continue;
          const GraphNodeRecord& d = g.nodes[dep];
          trace->AddFlow("dep", "sched", flow_id++, kTracePidSoc,
                         kTraceTidSchedBase + d.lane,
                         base_us + d.finish_sec * 1e6,
                         kTraceTidSchedBase + n.lane,
                         base_us + n.start_sec * 1e6);
        }
      }
      base_us += g.makespan_sec * 1e6;
    }
  }

  // Power meter process: measurement windows + sampled per-rail counter
  // track. Separate pid because its timebase (seconds of meter time) is
  // unrelated to the µs-scale modelled kernel timeline above.
  if (!segments.empty()) {
    trace->SetProcessName(kTracePidMeter,
                          "virtual power meter (WT230-style)");
    trace->SetThreadName(kTracePidMeter, kTraceTidMeter, "meter-window");
    PowerSampler sampler(&model, recorder.options().power_hz);
    const PowerTimeline timeline = sampler.Render(segments);
    for (const SegmentPower& seg : timeline.segments) {
      trace->AddSpanAt(seg.label, "power", kTracePidMeter, kTraceTidMeter,
                       seg.start_sec * 1e6, seg.window_sec * 1e6,
                       {{"avg_w", FormatDouble(seg.watts.total, 3)},
                        {"energy_j", FormatDouble(seg.energy_j.total, 3)}});
    }
    for (const PowerSample& s : timeline.samples) {
      trace->AddCounter("power_w", kTracePidMeter, s.t_sec * 1e6,
                        {{"cpu", s.watts.cpu},
                         {"gpu", s.watts.gpu},
                         {"dram", s.watts.dram},
                         {"static", s.watts.static_w}});
    }
  }
}

Status WritePerfettoTrace(const Recorder& recorder,
                          const power::PowerModel& model,
                          const std::string& path) {
  TraceBuilder trace;
  BuildTrace(recorder, model, &trace);
  return trace.WriteTo(path);
}

std::string MetricsJson(const Recorder& recorder,
                        const power::PowerModel& model) {
  // One consistent cut: the faults array must belong to the same run state
  // as the kernels/segments it explains.
  const RecorderSnapshot snap = recorder.TakeSnapshot();
  const std::vector<KernelRecord>& kernels = snap.kernels;
  const std::vector<CommandRecord>& commands = snap.commands;
  const std::vector<PowerSegment>& segments = snap.power_segments;

  JsonWriter w;
  w.BeginObject();
  w.Key("schema");
  w.String("malisim-prof-v1");

  w.Key("kernels");
  w.BeginArray();
  for (const KernelRecord& k : kernels) {
    w.BeginObject();
    w.Key("name");
    w.String(k.kernel);
    w.Key("device");
    w.String(k.device);
    w.Key("seconds");
    w.Number(k.seconds);

    w.Key("opcode_histogram");
    w.BeginObject();
    for (int op = 0; op < kir::kNumOpcodeValues; ++op) {
      if (k.opcode_counts[static_cast<std::size_t>(op)] == 0) continue;
      w.Key(std::string(kir::OpcodeName(static_cast<kir::Opcode>(op))));
      w.Number(k.opcode_counts[static_cast<std::size_t>(op)]);
    }
    w.EndObject();

    const std::uint64_t accesses = CacheAccesses(k);
    const std::uint64_t l1_misses = TotalL1Misses(k);
    const std::uint64_t l2_misses = TotalL2Misses(k);
    w.Key("cache");
    w.BeginObject();
    w.Key("accesses");
    w.Number(accesses);
    w.Key("l1_misses");
    w.Number(l1_misses);
    w.Key("l1_hit_rate");
    w.Number(HitRate(accesses, l1_misses));
    w.Key("l2_misses");
    w.Number(l2_misses);
    w.Key("l2_hit_rate");
    w.Number(HitRate(l1_misses, l2_misses));
    w.EndObject();

    w.Key("memory");
    w.BeginObject();
    w.Key("loads");
    w.Number(k.loads);
    w.Key("stores");
    w.Number(k.stores);
    w.Key("load_bytes");
    w.Number(k.load_bytes);
    w.Key("store_bytes");
    w.Number(k.store_bytes);
    w.Key("atomics");
    w.Number(k.atomics);
    w.Key("dram_bytes");
    w.Number(k.dram_bytes);
    w.EndObject();

    double arith_cycles = 0.0;
    double ls_cycles = 0.0;
    for (const CoreKernelCounters& c : k.cores) {
      arith_cycles += c.arith_cycles;
      ls_cycles += c.ls_cycles;
    }
    w.Key("pipes");
    w.BeginObject();
    w.Key("arith_cycles");
    w.Number(arith_cycles);
    w.Key("ls_cycles");
    w.Number(ls_cycles);
    w.Key("dram_bw_floor_sec");
    w.Number(k.dram_bw_floor_sec);
    w.Key("atomic_floor_sec");
    w.Number(k.atomic_floor_sec);
    w.Key("bottleneck");
    w.String(k.bottleneck);
    w.EndObject();

    w.Key("occupancy");
    w.BeginObject();
    w.Key("work_items");
    w.Number(k.work_items);
    w.Key("barriers_crossed");
    w.Number(k.barriers_crossed);
    w.Key("threads_per_core");
    w.Number(static_cast<std::uint64_t>(k.threads_per_core));
    w.Key("live_reg_bytes");
    w.Number(static_cast<std::uint64_t>(k.live_reg_bytes));
    w.Key("sched_factor");
    w.Number(k.sched_factor);
    w.EndObject();

    w.Key("cores");
    w.BeginArray();
    for (const CoreKernelCounters& c : k.cores) {
      w.BeginObject();
      w.Key("groups");
      w.Number(c.groups);
      w.Key("l1_misses");
      w.Number(c.l1_misses);
      w.Key("l2_misses");
      w.Number(c.l2_misses);
      w.Key("arith_cycles");
      w.Number(c.arith_cycles);
      w.Key("ls_cycles");
      w.Number(c.ls_cycles);
      w.Key("dispatch_cycles");
      w.Number(c.dispatch_cycles);
      w.Key("stall_sec");
      w.Number(c.stall_sec);
      w.Key("busy_sec");
      w.Number(c.busy_sec);
      w.Key("core_sec");
      w.Number(c.core_sec);
      w.Key("imbalance");
      w.Number(c.imbalance);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();

  w.Key("commands");
  w.BeginArray();
  for (const CommandRecord& c : commands) {
    w.BeginObject();
    w.Key("kind");
    w.String(c.kind);
    w.Key("detail");
    w.String(c.detail);
    w.Key("bytes");
    w.Number(c.bytes);
    w.Key("seconds");
    w.Number(c.seconds);
    w.EndObject();
  }
  w.EndArray();

  PowerSampler sampler(&model, recorder.options().power_hz);
  const PowerTimeline timeline = sampler.Render(segments);
  w.Key("power");
  w.BeginObject();
  w.Key("sampling_hz");
  w.Number(timeline.sampling_hz);
  w.Key("total_sec");
  w.Number(timeline.total_sec);
  w.Key("segments");
  w.BeginArray();
  for (const SegmentPower& s : timeline.segments) {
    w.BeginObject();
    w.Key("label");
    w.String(s.label);
    w.Key("window_sec");
    w.Number(s.window_sec);
    w.Key("watts");
    WriteRails(&w, s.watts);
    w.Key("energy_j");
    WriteRails(&w, s.energy_j);
    w.EndObject();
  }
  w.EndArray();
  w.Key("energy_j");
  WriteRails(&w, timeline.TotalEnergy());
  w.Key("samples");
  w.BeginArray();
  for (const PowerSample& s : timeline.samples) {
    w.BeginArray();
    w.Number(s.t_sec);
    w.Number(s.watts.total);
    w.Number(s.watts.cpu);
    w.Number(s.watts.gpu);
    w.Number(s.watts.dram);
    w.Number(s.watts.static_w);
    w.EndArray();
  }
  w.EndArray();
  w.EndObject();

  w.Key("host_counters");
  w.BeginObject();
  for (const CounterRegistry::Entry& e : recorder.counters().Snapshot()) {
    w.Key(e.name);
    w.Number(e.value);
  }
  w.EndObject();

  w.Key("faults");
  w.BeginArray();
  for (const FaultRecord& f : snap.faults) {
    w.BeginObject();
    w.Key("site");
    w.String(f.site);
    w.Key("key");
    w.String(f.key);
    w.Key("action");
    w.String(f.action);
    w.Key("detail");
    w.String(f.detail);
    w.EndObject();
  }
  w.EndArray();

  w.Key("slos");
  w.BeginArray();
  for (const SloRecord& s : snap.slos) {
    w.BeginObject();
    w.Key("objective");
    w.String(s.name);
    w.Key("action");
    w.String(s.action);
    w.Key("window");
    w.Number(s.window);
    w.Key("threshold");
    w.Number(s.threshold);
    w.Key("short");
    w.Number(s.short_value);
    w.Key("long");
    w.Number(s.long_value);
    w.EndObject();
  }
  w.EndArray();

  w.EndObject();
  return w.str() + "\n";
}

Status WriteMetricsJson(const Recorder& recorder,
                        const power::PowerModel& model,
                        const std::string& path) {
  return WriteStringTo(MetricsJson(recorder, model), path);
}

std::string KernelMetricsCsv(const Recorder& recorder) {
  std::ostringstream csv;
  CsvHeader(&csv, "malisim-prof-kernels-v1");
  csv << "kernel,device,seconds,core,groups,l1_misses,l2_misses,"
         "arith_cycles,ls_cycles,dispatch_cycles,stall_sec,busy_sec,"
         "core_sec,imbalance,bottleneck\n";
  for (const KernelRecord& k : recorder.kernels()) {
    for (std::size_t c = 0; c < k.cores.size(); ++c) {
      const CoreKernelCounters& core = k.cores[c];
      csv << k.kernel << ',' << k.device << ',' << Num(k.seconds) << ',' << c
          << ',' << core.groups << ',' << core.l1_misses << ','
          << core.l2_misses << ',' << Num(core.arith_cycles) << ','
          << Num(core.ls_cycles) << ',' << Num(core.dispatch_cycles) << ','
          << Num(core.stall_sec) << ',' << Num(core.busy_sec) << ','
          << Num(core.core_sec) << ',' << Num(core.imbalance) << ','
          << k.bottleneck << '\n';
    }
  }
  return csv.str();
}

Status WriteKernelMetricsCsv(const Recorder& recorder,
                             const std::string& path) {
  return WriteStringTo(KernelMetricsCsv(recorder), path);
}

std::string PowerTimelineCsv(const PowerTimeline& timeline) {
  std::ostringstream csv;
  CsvHeader(&csv, "malisim-prof-power-v1");
  csv << "t_sec,segment,total_w,static_w,cpu_w,gpu_w,dram_w\n";
  for (const PowerSample& s : timeline.samples) {
    const std::string label =
        s.segment >= 0 &&
                s.segment < static_cast<int>(timeline.segments.size())
            ? timeline.segments[static_cast<std::size_t>(s.segment)].label
            : "";
    csv << Num(s.t_sec) << ',' << label << ',' << Num(s.watts.total) << ','
        << Num(s.watts.static_w) << ',' << Num(s.watts.cpu) << ','
        << Num(s.watts.gpu) << ',' << Num(s.watts.dram) << '\n';
  }
  return csv.str();
}

Status WritePowerTimelineCsv(const PowerTimeline& timeline,
                             const std::string& path) {
  return WriteStringTo(PowerTimelineCsv(timeline), path);
}

std::string TextReport(const Recorder& recorder,
                       const power::PowerModel& model) {
  std::ostringstream out;
  const RecorderSnapshot snap = recorder.TakeSnapshot();
  const std::vector<KernelRecord>& kernels = snap.kernels;
  const std::vector<PowerSegment>& segments = snap.power_segments;

  const std::vector<FaultRecord>& faults = snap.faults;
  out << "=== malisim-prof report ===\n";
  out << kernels.size() << " kernel launch(es), "
      << snap.commands.size() << " queue command(s), "
      << segments.size() << " power segment(s), " << faults.size()
      << " fault event(s)\n";

  // Hot opcodes across all launches.
  OpcodeCounts total{};
  std::uint64_t grand_total = 0;
  for (const KernelRecord& k : kernels) {
    for (int op = 0; op < kir::kNumOpcodeValues; ++op) {
      total[static_cast<std::size_t>(op)] +=
          k.opcode_counts[static_cast<std::size_t>(op)];
      grand_total += k.opcode_counts[static_cast<std::size_t>(op)];
    }
  }
  if (grand_total > 0) {
    std::vector<int> order;
    for (int op = 0; op < kir::kNumOpcodeValues; ++op) {
      if (total[static_cast<std::size_t>(op)] > 0) order.push_back(op);
    }
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return total[static_cast<std::size_t>(a)] >
             total[static_cast<std::size_t>(b)];
    });
    if (order.size() > 10) order.resize(10);
    Table hot({"opcode", "executed", "share"});
    for (int op : order) {
      const std::uint64_t n = total[static_cast<std::size_t>(op)];
      hot.BeginRow();
      hot.AddCell(std::string(kir::OpcodeName(static_cast<kir::Opcode>(op))));
      hot.AddCell(std::to_string(n));
      hot.AddCell(FormatDouble(100.0 * static_cast<double>(n) /
                                   static_cast<double>(grand_total),
                               1) +
                  "%");
    }
    out << "\nHot opcodes (" << grand_total << " instructions executed):\n"
        << hot.ToAscii();
  }

  if (!kernels.empty()) {
    Table kt({"kernel", "device", "seconds", "L1 hit", "L2 hit", "arith cyc",
              "ls cyc", "bottleneck"});
    for (const KernelRecord& k : kernels) {
      const std::uint64_t accesses = CacheAccesses(k);
      const std::uint64_t l1_misses = TotalL1Misses(k);
      double arith = 0.0;
      double ls = 0.0;
      for (const CoreKernelCounters& c : k.cores) {
        arith += c.arith_cycles;
        ls += c.ls_cycles;
      }
      kt.BeginRow();
      kt.AddCell(k.kernel);
      kt.AddCell(k.device);
      kt.AddCell(FormatDouble(k.seconds * 1e3, 4) + " ms");
      kt.AddCell(FormatDouble(100.0 * HitRate(accesses, l1_misses), 2) + "%");
      kt.AddCell(FormatDouble(100.0 * HitRate(l1_misses, TotalL2Misses(k)), 2) +
                 "%");
      kt.AddNumber(arith, 0);
      kt.AddNumber(ls, 0);
      kt.AddCell(k.bottleneck);
    }
    out << "\nKernel launches:\n" << kt.ToAscii();
  }

  if (!segments.empty()) {
    PowerSampler sampler(&model, recorder.options().power_hz);
    const PowerTimeline timeline = sampler.Render(segments);
    Table pt({"segment", "window s", "avg W", "static W", "cpu W", "gpu W",
              "dram W", "energy J"});
    for (const SegmentPower& s : timeline.segments) {
      pt.BeginRow();
      pt.AddCell(s.label);
      pt.AddNumber(s.window_sec, 2);
      pt.AddNumber(s.watts.total, 3);
      pt.AddNumber(s.watts.static_w, 3);
      pt.AddNumber(s.watts.cpu, 3);
      pt.AddNumber(s.watts.gpu, 3);
      pt.AddNumber(s.watts.dram, 3);
      pt.AddNumber(s.energy_j.total, 3);
    }
    const RailPower e = timeline.TotalEnergy();
    out << "\nPower rails (virtual meter, "
        << FormatDouble(timeline.sampling_hz, 1) << " Hz, "
        << timeline.samples.size() << " samples over "
        << FormatDouble(timeline.total_sec, 1) << " s):\n"
        << pt.ToAscii();
    out << "Energy breakdown: total " << FormatDouble(e.total, 3)
        << " J = static " << FormatDouble(e.static_w, 3) << " J + cpu "
        << FormatDouble(e.cpu, 3) << " J + gpu " << FormatDouble(e.gpu, 3)
        << " J + dram " << FormatDouble(e.dram, 3) << " J\n";
  }

  if (!faults.empty()) {
    Table ft({"site", "key", "action", "detail"});
    for (const FaultRecord& f : faults) {
      ft.BeginRow();
      ft.AddCell(f.site);
      ft.AddCell(f.key);
      ft.AddCell(f.action);
      ft.AddCell(f.detail);
    }
    out << "\nFault events (injected faults and resilience actions):\n"
        << ft.ToAscii();
  }

  if (!snap.slos.empty()) {
    Table st({"objective", "action", "window", "short", "long"});
    for (const SloRecord& s : snap.slos) {
      st.BeginRow();
      st.AddCell(s.name);
      st.AddCell(s.action);
      st.AddCell(std::to_string(s.window));
      st.AddCell(FormatDouble(s.short_value, 4));
      st.AddCell(FormatDouble(s.long_value, 4));
    }
    out << "\nSLO transitions (telemetry burn-rate events):\n"
        << st.ToAscii();
  }
  return out.str();
}

}  // namespace malisim::obs
