// Counter and span infrastructure for host-side self-observability.
//
// CounterRegistry is a thread-safe named-counter bag with id-based hot-path
// access: call Register() once (idempotent, returns a stable id), then
// Add(id, delta) from anywhere. Hot simulation loops should accumulate into
// a local integer and flush once per region instead of calling Add() per
// event — the devices' opcode tallies follow that pattern via raw pointer
// hooks (see kir::Executor::set_opcode_tally).
//
// ScopedSpan measures host wall-clock time (nanoseconds) into a counter.
// Wall-clock values describe the simulator process itself and are kept out
// of every deterministic output (golden CSVs, metrics JSON kernel records):
// they appear only under the "host.*" counter namespace.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace malisim::obs {

class CounterRegistry {
 public:
  using Id = std::size_t;

  /// Returns the id for `name`, creating the counter (value 0) on first
  /// use. Idempotent: the same name always maps to the same id.
  Id Register(const std::string& name);

  /// Adds `delta` to the counter. Thread-safe.
  void Add(Id id, double delta);

  /// Register + Add in one call, for cold paths.
  void Increment(const std::string& name, double delta = 1.0);

  double Get(const std::string& name) const;  // 0 if absent

  struct Entry {
    std::string name;
    double value = 0.0;
  };
  /// Snapshot in registration order.
  std::vector<Entry> Snapshot() const;

  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
};

/// RAII wall-clock span: adds elapsed nanoseconds to `registry[id]` on
/// destruction. Use for host-side overhead attribution only.
class ScopedSpan {
 public:
  ScopedSpan(CounterRegistry* registry, CounterRegistry::Id id)
      : registry_(registry),
        id_(id),
        start_(std::chrono::steady_clock::now()) {}
  ~ScopedSpan() {
    if (registry_ == nullptr) return;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() - start_);
    registry_->Add(id_, static_cast<double>(ns.count()));
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  CounterRegistry* registry_;
  CounterRegistry::Id id_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace malisim::obs
