// Emulated power meter timeline: renders a sequence of measurement windows
// (PowerSegments) into a Yokogawa-style sampled watts timeline, decomposed
// per power rail. This reproduces the paper's *methodology* — a WT230
// sampling board power at 10 Hz while each version runs — rather than only
// its averaged figures.
//
// The timeline is exact (no meter noise): it samples the power model's
// piecewise-constant truth. The harness's PowerMeter keeps owning the
// noisy-measurement statistics; the sampler is the inspectable timeline
// behind them. Rails decompose exactly: for every sample,
// total == static + cpu + gpu + dram (the power model is a sum of rails).
#pragma once

#include <string>
#include <vector>

#include "obs/recorder.h"
#include "power/power_model.h"

namespace malisim::obs {

/// Instantaneous board power split by rail, in watts.
struct RailPower {
  double total = 0.0;
  double static_w = 0.0;  // regulators, peripherals, DRAM background
  double cpu = 0.0;       // Cortex-A15 cores
  double gpu = 0.0;       // Mali block (cores + shared)
  double dram = 0.0;      // DRAM dynamic (traffic-driven)
};

/// One meter sample.
struct PowerSample {
  double t_sec = 0.0;
  int segment = -1;  // index into PowerTimeline::segments; -1 = past the end
  RailPower watts;
};

/// Per-segment averages and energy.
struct SegmentPower {
  std::string label;
  double start_sec = 0.0;
  double window_sec = 0.0;
  RailPower watts;     // constant over the window (piecewise-constant model)
  RailPower energy_j;  // watts * window_sec, per rail
};

struct PowerTimeline {
  double sampling_hz = 0.0;
  double total_sec = 0.0;
  std::vector<SegmentPower> segments;
  std::vector<PowerSample> samples;

  /// Whole-timeline energy per rail (sum over segments).
  RailPower TotalEnergy() const;
};

class PowerSampler {
 public:
  /// `model` must outlive the sampler. `hz` > 0.
  PowerSampler(const power::PowerModel* model, double hz = 10.0);

  /// Renders the segments back-to-back into a sampled timeline. Samples are
  /// taken at t = k / hz for k = 0 .. floor(total_sec * hz), so a timeline
  /// of duration T carries floor(T * hz) + 1 samples; a sample landing
  /// exactly on a boundary belongs to the later segment.
  PowerTimeline Render(const std::vector<PowerSegment>& segments) const;

  /// Rail decomposition of one activity profile.
  RailPower Rails(const power::ActivityProfile& profile) const;

  double sampling_hz() const { return hz_; }

 private:
  const power::PowerModel* model_;
  double hz_;
};

}  // namespace malisim::obs
