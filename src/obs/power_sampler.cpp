#include "obs/power_sampler.h"

#include <cmath>

namespace malisim::obs {

RailPower PowerTimeline::TotalEnergy() const {
  RailPower e;
  for (const SegmentPower& s : segments) {
    e.total += s.energy_j.total;
    e.static_w += s.energy_j.static_w;
    e.cpu += s.energy_j.cpu;
    e.gpu += s.energy_j.gpu;
    e.dram += s.energy_j.dram;
  }
  return e;
}

PowerSampler::PowerSampler(const power::PowerModel* model, double hz)
    : model_(model), hz_(hz > 0.0 ? hz : 10.0) {}

RailPower PowerSampler::Rails(const power::ActivityProfile& profile) const {
  RailPower r;
  r.static_w = model_->params().board_static_w;
  r.cpu = model_->CpuPower(profile);
  r.gpu = model_->GpuPower(profile);
  r.dram = model_->DramPower(profile);
  // Summing the rails (rather than calling AveragePower) keeps the
  // decomposition exact by construction; AveragePower computes the same sum.
  r.total = r.static_w + r.cpu + r.gpu + r.dram;
  return r;
}

PowerTimeline PowerSampler::Render(
    const std::vector<PowerSegment>& segments) const {
  PowerTimeline timeline;
  timeline.sampling_hz = hz_;

  double cursor = 0.0;
  for (const PowerSegment& seg : segments) {
    SegmentPower sp;
    sp.label = seg.label;
    sp.start_sec = cursor;
    sp.window_sec = seg.window_sec;
    sp.watts = Rails(seg.profile);
    sp.energy_j.total = sp.watts.total * seg.window_sec;
    sp.energy_j.static_w = sp.watts.static_w * seg.window_sec;
    sp.energy_j.cpu = sp.watts.cpu * seg.window_sec;
    sp.energy_j.gpu = sp.watts.gpu * seg.window_sec;
    sp.energy_j.dram = sp.watts.dram * seg.window_sec;
    timeline.segments.push_back(std::move(sp));
    cursor += seg.window_sec;
  }
  timeline.total_sec = cursor;

  if (timeline.segments.empty()) return timeline;

  const auto num_samples =
      static_cast<std::size_t>(std::floor(timeline.total_sec * hz_)) + 1;
  std::size_t seg_idx = 0;
  for (std::size_t k = 0; k < num_samples; ++k) {
    PowerSample sample;
    sample.t_sec = static_cast<double>(k) / hz_;
    // Advance to the segment containing t; boundary samples read the later
    // segment (the meter sees the new workload at the instant it starts).
    while (seg_idx + 1 < timeline.segments.size() &&
           sample.t_sec >= timeline.segments[seg_idx].start_sec +
                               timeline.segments[seg_idx].window_sec) {
      ++seg_idx;
    }
    sample.segment = static_cast<int>(seg_idx);
    sample.watts = timeline.segments[seg_idx].watts;
    timeline.samples.push_back(sample);
  }
  return timeline;
}

}  // namespace malisim::obs
