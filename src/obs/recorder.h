// Recorder: the collection point of the observability subsystem. Device
// models, the OCL runtime and the experiment harness append records here
// when a recorder is attached and enabled; exporters (obs/export.h) turn
// the records into Perfetto traces, JSON/CSV metric dumps and text reports.
//
// Determinism contract: recording is strictly read-only with respect to the
// simulation — every value stored is one the engine computed anyway, and
// the modelled timing/power/energy path never branches on whether a
// recorder is attached. Thread safety: Add* methods are mutex-protected so
// the parallel engine (and parallel RunAll) can record concurrently; record
// ORDER across concurrently-running benchmarks is not deterministic, which
// is why deterministic outputs (golden CSVs) never derive from record
// order. malisim-prof runs benchmarks serially, so its exports are stable.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "kir/exec_types.h"
#include "kir/opcode.h"
#include "obs/counters.h"
#include "obs/host_prof.h"
#include "obs/obs_options.h"
#include "power/profile.h"

namespace malisim::obs {

/// Per-opcode dynamic execution tally, indexed by kir::Opcode.
using OpcodeCounts = std::array<std::uint64_t, kir::kNumOpcodeValues>;

/// Timing-phase counters for one modelled core's share of a kernel launch.
/// Mali cores fill every field; A15 cores leave the pipe split empty
/// (scalar issue: everything lands in arith_cycles).
struct CoreKernelCounters {
  std::uint64_t groups = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t l2_misses = 0;
  double arith_cycles = 0.0;
  double ls_cycles = 0.0;
  double dispatch_cycles = 0.0;
  double stall_sec = 0.0;
  double busy_sec = 0.0;   // raw pipe-active time (power-relevant)
  double core_sec = 0.0;   // modelled elapsed time on this core
  double imbalance = 1.0;
};

/// One kernel launch as seen by a device model.
struct KernelRecord {
  std::string kernel;
  std::string device;  // "mali-t604" or "cortex-a15"
  /// Execution scope: empty for a plain single-backend launch, "hetero"
  /// when the launch was a HeteroDevice sub-range — exporters use it to
  /// route hetero sub-launches onto their own trace lanes.
  std::string scope;
  double seconds = 0.0;
  std::vector<CoreKernelCounters> cores;
  /// Per-opcode dynamic instruction counts (interpreter tally).
  OpcodeCounts opcode_counts{};
  /// (class, type, lanes) histogram — what the timing model actually costs.
  kir::OpHistogram ops;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t load_bytes = 0;
  std::uint64_t store_bytes = 0;
  std::uint64_t atomics = 0;
  std::uint64_t barriers_crossed = 0;
  std::uint64_t work_items = 0;
  std::uint64_t dram_bytes = 0;
  /// Device-wide time floors and the winning bottleneck label
  /// ("arith-pipe", "ls-pipe", "memory-latency", "dram-bandwidth",
  /// "atomic-serialization", "cpu-issue").
  double dram_bw_floor_sec = 0.0;
  double atomic_floor_sec = 0.0;
  std::string bottleneck;
  /// Compiler register-pressure report (Mali only; zero on the CPU).
  std::uint32_t live_reg_bytes = 0;
  std::uint32_t threads_per_core = 0;
  double sched_factor = 1.0;
  power::ActivityProfile profile;
};

/// One host-runtime command (transfer, map, fill, enqueue).
struct CommandRecord {
  std::string kind;    // "write", "read", "copy", "fill", "map", "unmap",
                       // "ndrange"
  std::string detail;  // kernel name for ndrange, empty otherwise
  std::uint64_t bytes = 0;
  double seconds = 0.0;
};

/// One fault-injection decision or resilience action (retry, ladder
/// fall-back, watchdog abort, skipped repetition), mirrored from the
/// fault subsystem's event log through the harness sink. The fault
/// library itself cannot depend on obs (cycle via power), so the harness
/// maps fault::FaultEvent fields onto this record.
struct FaultRecord {
  std::string site;    // fault site name or resilience stage
  std::string key;     // "<benchmark>/<context>"
  std::string action;  // "injected", "retried", "fell-back", ...
  std::string detail;
};

/// One scheduled event-graph node, mirrored from sim::ScheduleEvents so
/// exporters can draw the async schedule with causal (flow) arrows and
/// mark the critical path.
struct GraphNodeRecord {
  std::string label;
  int lane = 0;  // sim::kLaneHost / kLaneCompute / kLaneTransfer
  double start_sec = 0.0;
  double finish_sec = 0.0;
  /// Dependency event ids (indices into GraphRecord::nodes).
  std::vector<std::uint32_t> deps;
  bool critical = false;  // on the longest dependency chain
};

/// One scheduled command-queue event graph (per context/run).
struct GraphRecord {
  std::string label;  // queue identity, e.g. "mali-t604" or "hetero"
  double makespan_sec = 0.0;
  double serial_sec = 0.0;
  double critical_path_sec = 0.0;
  std::vector<double> lane_busy_sec;  // indexed by lane
  std::vector<GraphNodeRecord> nodes;
};

/// One SLO burn-rate transition from the live telemetry plane
/// (obs/telemetry.h): the named objective entered ("breach") or left
/// ("recover") its breached state at modelled-time window `window`.
/// `short_value`/`long_value` are the burn-rate inputs that crossed (the
/// newest window and the long multi-window horizon).
struct SloRecord {
  std::string name;    // canonical objective, e.g. "p99_latency_sec<=0.5"
  std::string action;  // "breach" | "recover"
  std::uint64_t window = 0;
  double threshold = 0.0;
  double short_value = 0.0;
  double long_value = 0.0;
};

/// One meter window: what the virtual power meter would observe while
/// `label` ran repeatedly for `window_sec` (the harness's steady-state
/// measurement region, §IV-D).
struct PowerSegment {
  std::string label;  // "<benchmark>/<variant>"
  double window_sec = 0.0;
  power::ActivityProfile profile;
};

/// One consistent cut of every record stream, taken under a single lock
/// acquisition. Exporters that need cross-stream consistency (the metrics
/// JSON ties fault events to the kernels/segments of the same run) must
/// consume one snapshot instead of calling the per-stream accessors
/// back-to-back, which would allow a concurrent producer to land a record
/// between the cuts.
struct RecorderSnapshot {
  std::vector<KernelRecord> kernels;
  std::vector<CommandRecord> commands;
  std::vector<PowerSegment> power_segments;
  std::vector<FaultRecord> faults;
  std::vector<GraphRecord> graphs;
  std::vector<SloRecord> slos;
};

class Recorder {
 public:
  explicit Recorder(const ObsOptions& options = ObsOptions()) {
    options_ = options;
    options_.enabled = true;  // constructing a recorder means "observe"
    if (options_.host_prof) {
      host_prof_ = std::make_unique<HostProf>();
      host_prof_->set_period(
          options_.host_prof_exact ? 1 : options_.host_prof_period);
    }
  }

  const ObsOptions& options() const { return options_; }
  bool counters_enabled() const { return options_.enabled && options_.counters; }
  bool trace_enabled() const { return options_.enabled && options_.trace; }

  void AddKernel(KernelRecord record);
  void AddCommand(CommandRecord record);
  void AddPowerSegment(PowerSegment segment);
  void AddFault(FaultRecord record);
  void AddGraph(GraphRecord record);
  void AddSlo(SloRecord record);

  /// Snapshots (copies, taken under the lock).
  std::vector<KernelRecord> kernels() const;
  std::vector<CommandRecord> commands() const;
  std::vector<PowerSegment> power_segments() const;
  std::vector<FaultRecord> faults() const;
  std::vector<GraphRecord> graphs() const;
  std::vector<SloRecord> slos() const;

  /// One consistent cut of all four streams (single lock acquisition).
  RecorderSnapshot TakeSnapshot() const;

  /// Flush-ordering contract: callers must stop producing (join workers,
  /// finish the last benchmark) and then Seal() the recorder before
  /// exporting. Records arriving after Seal() are NOT lost — they are
  /// buffered normally and appear in any later snapshot — but they are
  /// counted and logged, because an export taken between Seal() and the
  /// late arrival would silently miss them (the late fault-retry bug).
  void Seal();
  bool sealed() const;
  /// Number of records added after Seal(). Non-zero means some export may
  /// be missing events; re-export after the stragglers arrive.
  std::uint64_t late_records() const;

  CounterRegistry& counters() { return counters_; }
  const CounterRegistry& counters() const { return counters_; }

  /// Host-side self-profiler, or null when ObsOptions::host_prof is off.
  /// Instrumentation sites pass the pointer straight into null-safe
  /// HostProf::PhaseSpan / InterpProfile, so "off" costs one null check.
  HostProf* host_prof() { return host_prof_.get(); }
  const HostProf* host_prof() const { return host_prof_.get(); }

 private:
  /// Bumps the late-record count (callers hold mutex_).
  void NoteRecordLocked();

  ObsOptions options_;
  CounterRegistry counters_;
  std::unique_ptr<HostProf> host_prof_;
  mutable std::mutex mutex_;
  bool sealed_ = false;
  std::uint64_t late_records_ = 0;
  std::vector<KernelRecord> kernels_;
  std::vector<CommandRecord> commands_;
  std::vector<PowerSegment> segments_;
  std::vector<FaultRecord> faults_;
  std::vector<GraphRecord> graphs_;
  std::vector<SloRecord> slos_;
};

}  // namespace malisim::obs
