#include "obs/host_prof.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <sstream>
#include <utility>

#include "common/table.h"

namespace malisim::obs {
namespace {

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One open phase span on this thread. The stack is thread-local and spans
/// are strictly LIFO (RAII), so no locking is needed until CloseSpan folds
/// the frame into the profiler's atomics.
struct Frame {
  HostProf* prof = nullptr;
  HostPhase phase = HostPhase::kNumPhases;
  std::uint64_t start_ns = 0;
  std::uint64_t child_ns = 0;
};

thread_local std::vector<Frame> tls_frames;

std::string BlockLabel(std::uint32_t begin, std::uint32_t end) {
  return "block[" + std::to_string(begin) + "," + std::to_string(end) + ")";
}

}  // namespace

std::string_view HostPhaseName(HostPhase phase) {
  switch (phase) {
    case HostPhase::kSetup:
      return "setup";
    case HostPhase::kCompile:
      return "compile";
    case HostPhase::kEnqueue:
      return "enqueue";
    case HostPhase::kSchedule:
      return "schedule";
    case HostPhase::kExecute:
      return "execute";
    case HostPhase::kMerge:
      return "merge";
    case HostPhase::kPowerAccounting:
      return "power-accounting";
    case HostPhase::kTune:
      return "tune";
    case HostPhase::kVariant:
      return "variant";
    case HostPhase::kVmCompile:
      return "vm/compile";
    case HostPhase::kVmExec:
      return "vm/exec";
    case HostPhase::kNumPhases:
      break;
  }
  return "?";
}

HostProf::HostProf() {
  // Calibrate the clock-read cost the sampler pays per tick. A volatile
  // accumulator keeps the loop from being folded away.
  constexpr int kReads = 4096;
  volatile std::uint64_t guard = 0;
  const std::uint64_t t0 = NowNs();
  for (int i = 0; i < kReads; ++i) guard = guard + NowNs();
  const std::uint64_t t1 = NowNs();
  sample_cost_ns_ = static_cast<double>(t1 - t0) / kReads;
}

HostProf::PhaseSpan::PhaseSpan(HostProf* prof, HostPhase phase)
    : prof_(prof) {
  if (prof_ == nullptr) return;
  tls_frames.push_back(Frame{prof_, phase, NowNs(), 0});
}

HostProf::PhaseSpan::~PhaseSpan() {
  if (prof_ == nullptr) return;
  const Frame frame = tls_frames.back();
  tls_frames.pop_back();
  const std::uint64_t now = NowNs();
  const std::uint64_t elapsed = now - frame.start_ns;
  // Charge this span's full time as child time of the nearest enclosing
  // frame *of the same profiler*, so self = total - children holds even
  // if two profilers ever interleave on one thread.
  bool root = true;
  for (auto it = tls_frames.rbegin(); it != tls_frames.rend(); ++it) {
    if (it->prof == prof_) {
      it->child_ns += elapsed;
      root = false;
      break;
    }
  }
  prof_->CloseSpan(frame.phase, elapsed, frame.child_ns, root);
}

void HostProf::CloseSpan(HostPhase phase, std::uint64_t elapsed_ns,
                         std::uint64_t child_ns, bool root) {
  PhaseCell& cell = phases_[static_cast<std::size_t>(phase)];
  cell.total_ns.fetch_add(elapsed_ns, std::memory_order_relaxed);
  cell.self_ns.fetch_add(elapsed_ns - std::min(child_ns, elapsed_ns),
                         std::memory_order_relaxed);
  cell.count.fetch_add(1, std::memory_order_relaxed);
  if (root) root_total_ns_.fetch_add(elapsed_ns, std::memory_order_relaxed);
}

void HostProf::MergeInterp(const std::string& kernel,
                           const std::vector<kir::BlockSpan>& blocks,
                           const kir::HostTimeSink& sink,
                           const std::uint64_t* op_ns,
                           const std::uint64_t* block_ns) {
  std::uint64_t total = 0;
  if (op_ns != nullptr) {
    for (int i = 0; i < kir::kNumOpcodeValues; ++i) {
      const std::uint64_t ns = op_ns[static_cast<std::size_t>(i)];
      if (ns == 0) continue;
      op_ns_[static_cast<std::size_t>(i)].fetch_add(
          ns, std::memory_order_relaxed);
      total += ns;
    }
  }
  interp_ns_.fetch_add(total, std::memory_order_relaxed);
  interp_samples_.fetch_add(sink.samples, std::memory_order_relaxed);
  interp_steps_.fetch_add(sink.steps, std::memory_order_relaxed);
  if (block_ns == nullptr) return;
  std::lock_guard<std::mutex> lock(blocks_mutex_);
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    if (block_ns[b] == 0) continue;
    BlockStat& stat = blocks_[{kernel, blocks[b].begin}];
    stat.kernel = kernel;
    stat.begin = blocks[b].begin;
    stat.end = blocks[b].end;
    stat.ns += block_ns[b];
  }
}

HostProf::Snapshot HostProf::TakeSnapshot() const {
  Snapshot snapshot;
  snapshot.phases.reserve(kNumHostPhases);
  for (int i = 0; i < kNumHostPhases; ++i) {
    const PhaseCell& cell = phases_[static_cast<std::size_t>(i)];
    PhaseStat stat;
    stat.name = std::string(HostPhaseName(static_cast<HostPhase>(i)));
    stat.total_ns = cell.total_ns.load(std::memory_order_relaxed);
    stat.self_ns = cell.self_ns.load(std::memory_order_relaxed);
    stat.count = cell.count.load(std::memory_order_relaxed);
    snapshot.phases.push_back(std::move(stat));
  }
  for (int i = 0; i < kir::kNumOpcodeValues; ++i) {
    const std::uint64_t ns =
        op_ns_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    if (ns == 0) continue;
    snapshot.opcodes.push_back(
        {std::string(kir::OpcodeName(static_cast<kir::Opcode>(i))), ns});
  }
  std::sort(snapshot.opcodes.begin(), snapshot.opcodes.end(),
            [](const OpcodeStat& a, const OpcodeStat& b) {
              if (a.ns != b.ns) return a.ns > b.ns;
              return a.name < b.name;
            });
  {
    std::lock_guard<std::mutex> lock(blocks_mutex_);
    for (const auto& [key, stat] : blocks_) snapshot.blocks.push_back(stat);
  }
  std::sort(snapshot.blocks.begin(), snapshot.blocks.end(),
            [](const BlockStat& a, const BlockStat& b) {
              if (a.ns != b.ns) return a.ns > b.ns;
              if (a.kernel != b.kernel) return a.kernel < b.kernel;
              return a.begin < b.begin;
            });
  snapshot.root_total_ns = root_total_ns_.load(std::memory_order_relaxed);
  snapshot.interp_ns = interp_ns_.load(std::memory_order_relaxed);
  snapshot.interp_samples =
      interp_samples_.load(std::memory_order_relaxed);
  snapshot.interp_steps = interp_steps_.load(std::memory_order_relaxed);
  snapshot.sample_cost_ns = sample_cost_ns_;
  return snapshot;
}

double HostProf::AttributedFraction(double wall_sec) const {
  if (wall_sec <= 0.0) return 0.0;
  const double attributed_sec =
      static_cast<double>(root_total_ns_.load(std::memory_order_relaxed)) *
      1e-9;
  return attributed_sec / wall_sec;
}

double HostProf::SampleOverheadFraction() const {
  const std::uint64_t interp = interp_ns_.load(std::memory_order_relaxed);
  if (interp == 0) return 0.0;
  const double cost =
      static_cast<double>(interp_samples_.load(std::memory_order_relaxed)) *
      sample_cost_ns_;
  return cost / static_cast<double>(interp);
}

std::string HostProf::HotspotsTable(const Snapshot& snapshot,
                                    double wall_sec) {
  std::ostringstream out;
  std::uint64_t attributed = snapshot.root_total_ns;
  out << "=== host-side hotspots (self-profiler) ===\n";
  out << "host wall time: " << FormatDouble(wall_sec, 4)
      << " s, attributed to phases: "
      << FormatDouble(static_cast<double>(attributed) * 1e-9, 4) << " s";
  if (wall_sec > 0.0) {
    out << " ("
        << FormatDouble(
               100.0 * static_cast<double>(attributed) * 1e-9 / wall_sec, 1)
        << "%)";
  }
  out << "\n\nPhases (host wall time):\n";
  {
    Table t({"phase", "count", "total_ms", "self_ms", "self_%"});
    std::uint64_t self_sum = 0;
    for (const PhaseStat& p : snapshot.phases) self_sum += p.self_ns;
    for (const PhaseStat& p : snapshot.phases) {
      if (p.count == 0) continue;
      t.BeginRow();
      t.AddCell(p.name);
      t.AddCell(std::to_string(p.count));
      t.AddCell(FormatDouble(static_cast<double>(p.total_ns) * 1e-6, 3));
      t.AddCell(FormatDouble(static_cast<double>(p.self_ns) * 1e-6, 3));
      t.AddCell(FormatDouble(
          self_sum == 0 ? 0.0
                        : 100.0 * static_cast<double>(p.self_ns) /
                              static_cast<double>(self_sum),
          1));
    }
    out << t.ToAscii();
  }
  if (!snapshot.opcodes.empty()) {
    out << "\nInterpreter opcodes (sampled host time):\n";
    Table t({"opcode", "host_ms", "interp_%"});
    for (const OpcodeStat& op : snapshot.opcodes) {
      t.BeginRow();
      t.AddCell(op.name);
      t.AddCell(FormatDouble(static_cast<double>(op.ns) * 1e-6, 3));
      t.AddCell(FormatDouble(snapshot.interp_ns == 0
                                 ? 0.0
                                 : 100.0 * static_cast<double>(op.ns) /
                                       static_cast<double>(snapshot.interp_ns),
                             1));
    }
    out << t.ToAscii();
  }
  if (!snapshot.blocks.empty()) {
    out << "\nInterpreter basic blocks (sampled host time):\n";
    Table t({"kernel", "block", "host_ms", "interp_%"});
    for (const BlockStat& b : snapshot.blocks) {
      t.BeginRow();
      t.AddCell(b.kernel);
      t.AddCell(BlockLabel(b.begin, b.end));
      t.AddCell(FormatDouble(static_cast<double>(b.ns) * 1e-6, 3));
      t.AddCell(FormatDouble(snapshot.interp_ns == 0
                                 ? 0.0
                                 : 100.0 * static_cast<double>(b.ns) /
                                       static_cast<double>(snapshot.interp_ns),
                             1));
    }
    out << t.ToAscii();
  }
  out << "\ninterp sampling: " << snapshot.interp_samples << " sample(s) over "
      << snapshot.interp_steps << " attributed step(s), est. profiler cost "
      << FormatDouble(snapshot.interp_ns == 0
                          ? 0.0
                          : 100.0 *
                                static_cast<double>(snapshot.interp_samples) *
                                snapshot.sample_cost_ns /
                                static_cast<double>(snapshot.interp_ns),
                      2)
      << "% of interp time\n";
  return out.str();
}

std::string HostProf::Collapsed(const Snapshot& snapshot) {
  std::ostringstream out;
  // The engine samples live inside vm/exec spans under the bytecode engine
  // and directly inside execute spans under the interpreter; carve the
  // attributed time out of vm/exec first and charge the remainder to
  // execute so the root totals stay disjoint in the flamegraph.
  std::uint64_t vm_exec_self = 0;
  for (const PhaseStat& p : snapshot.phases) {
    if (p.name == "vm/exec") vm_exec_self = p.self_ns;
  }
  const std::uint64_t vm_carve = std::min(vm_exec_self, snapshot.interp_ns);
  const std::uint64_t exec_carve = snapshot.interp_ns - vm_carve;
  for (const PhaseStat& p : snapshot.phases) {
    if (p.count == 0) continue;
    std::uint64_t self = p.self_ns;
    if (p.name == "vm/exec") self -= vm_carve;
    if (p.name == "execute") self -= std::min(self, exec_carve);
    if (self > 0) out << "malisim;" << p.name << " " << self << "\n";
  }
  for (const OpcodeStat& op : snapshot.opcodes) {
    out << "malisim;execute;interp;" << op.name << " " << op.ns << "\n";
  }
  for (const BlockStat& b : snapshot.blocks) {
    out << "malisim-blocks;" << b.kernel << ";"
        << BlockLabel(b.begin, b.end) << " " << b.ns << "\n";
  }
  return out.str();
}

InterpProfile::InterpProfile(HostProf* prof, const kir::Program& program,
                             int cores)
    : prof_(prof) {
  if (prof_ == nullptr) return;
  blocks_ = kir::BasicBlocks(program);
  const bool map_blocks = blocks_.size() <= 0xFFFF;
  if (map_blocks) {
    block_of_pc_.assign(program.code.size(), 0);
    for (std::size_t b = 0; b < blocks_.size(); ++b) {
      for (std::uint32_t pc = blocks_[b].begin; pc < blocks_[b].end; ++pc) {
        block_of_pc_[pc] = static_cast<std::uint16_t>(b);
      }
    }
  }
  const std::size_t n = static_cast<std::size_t>(cores < 1 ? 1 : cores);
  op_ns_.assign(n, std::vector<std::uint64_t>(kir::kNumOpcodeValues, 0));
  block_ns_.assign(n, std::vector<std::uint64_t>(blocks_.size(), 0));
  sinks_.resize(n);
  for (std::size_t c = 0; c < n; ++c) {
    sinks_[c].op_ns = op_ns_[c].data();
    if (map_blocks) {
      sinks_[c].block_ns = block_ns_[c].data();
      sinks_[c].block_of_pc = block_of_pc_.data();
    }
    sinks_[c].period = prof_->period();
    sinks_[c].countdown = 1;
  }
}

void InterpProfile::Merge(const std::string& kernel) {
  if (prof_ == nullptr) return;
  for (std::size_t c = 0; c < sinks_.size(); ++c) {
    prof_->MergeInterp(kernel, blocks_, sinks_[c], op_ns_[c].data(),
                       block_ns_[c].empty() ? nullptr : block_ns_[c].data());
  }
}

}  // namespace malisim::obs
