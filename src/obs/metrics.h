// Metrics aggregation on top of the Recorder/CounterRegistry: typed gauges,
// monotonic counters and fixed-bucket log-scale histograms, summarized into
// a deterministic snapshot that the bench-report layer serializes into
// BENCH_*.json records.
//
// Determinism contract: a snapshot built from two recorders whose record
// streams are equal as *multisets* (the parallel engine's guarantee — only
// ORDER varies across --threads) is byte-identical when serialized. This
// holds because:
//  * histogram bucket counts and exact min/max are order-independent,
//  * every floating-point SUM is computed after canonically sorting the
//    observed values (equal values are interchangeable), via Kahan
//    accumulation, and
//  * all emission iterates name-sorted maps.
// Host wall-clock counters ("host.*" in the CounterRegistry) are excluded
// from snapshots entirely — they are nondeterministic by nature.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "obs/recorder.h"
#include "power/power_model.h"

namespace malisim::obs {

/// Fixed-layout log-scale histogram. Inner bucket i (0-based) spans
/// [min_edge * 10^(i/bpd), min_edge * 10^((i+1)/bpd)) — half-open, so a
/// value exactly on an edge belongs to the bucket ABOVE it. Two outer
/// buckets catch the rest: the underflow bucket takes every value below
/// min_edge (including zero and negatives; modelled times and watts are
/// never negative, but the histogram must not misfile them), the overflow
/// bucket takes values at or above the top edge. The layout is fixed at
/// construction so histograms from different runs are always comparable
/// bucket-by-bucket.
class LogHistogram {
 public:
  struct Layout {
    double min_edge = 1e-9;      // 1 ns / 1 nW resolution floor
    int decades = 15;            // covers up to 10^6 with headroom
    int buckets_per_decade = 8;  // ~33% relative bucket width

    bool operator==(const Layout& other) const {
      return min_edge == other.min_edge && decades == other.decades &&
             buckets_per_decade == other.buckets_per_decade;
    }
  };

  LogHistogram() : LogHistogram(Layout()) {}
  explicit LogHistogram(const Layout& layout);

  void Add(double value);
  /// Adds every bucket/extreme of `other`; layouts must match.
  void Merge(const LogHistogram& other);

  const Layout& layout() const { return layout_; }
  std::uint64_t count() const { return count_; }
  /// Exact observed extremes (not bucket edges); 0 when empty.
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  /// Sum in insertion order (Kahan-compensated). Deterministic when the
  /// caller feeds values in canonical order — MetricsAggregator sorts.
  double sum() const { return sum_.value(); }
  double mean() const;

  /// Percentile estimate from the bucket counts (nearest-rank). Returns
  /// the upper edge of the bucket holding the rank, clamped to the exact
  /// [min, max] observed, so p100 == max() and estimates never exceed the
  /// true extreme. 0 when empty. `p` in [0, 100].
  double Percentile(double p) const;

  /// Bucket introspection. Index 0 = underflow, 1..inner = log buckets,
  /// inner+1 = overflow.
  int num_buckets() const { return static_cast<int>(buckets_.size()); }
  std::uint64_t bucket_count(int index) const { return buckets_[static_cast<std::size_t>(index)]; }
  /// Which bucket `value` files into.
  int BucketIndex(double value) const;
  /// Inclusive lower edge of a bucket (-inf for underflow).
  double LowerEdge(int index) const;
  /// Exclusive upper edge of a bucket (+inf for overflow).
  double UpperEdge(int index) const;

 private:
  Layout layout_;
  std::vector<double> edges_;          // inner edges, size inner+1
  std::vector<std::uint64_t> buckets_; // underflow + inner + overflow
  std::uint64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  KahanSum sum_;
};

/// Finalized histogram statistics as emitted into BENCH records.
struct HistogramStat {
  LogHistogram::Layout layout;
  std::uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  /// Sparse non-empty buckets as (index, count), index-ascending.
  std::vector<std::pair<int, std::uint64_t>> buckets;
};

/// Name-keyed snapshot of every aggregated metric. Maps are ordered so
/// iteration (and therefore serialization) is deterministic.
struct MetricsSnapshot {
  std::map<std::string, double> gauges;
  std::map<std::string, double> counters;
  std::map<std::string, HistogramStat> histograms;
};

/// Collects gauges, counters and histogram observations, then finalizes
/// them deterministically. Not thread-safe: aggregation happens after the
/// run, on one thread, from a sealed recorder.
class MetricsAggregator {
 public:
  MetricsAggregator() : MetricsAggregator(LogHistogram::Layout()) {}
  explicit MetricsAggregator(const LogHistogram::Layout& layout);

  /// Last-write-wins named value.
  void SetGauge(const std::string& name, double value);
  /// Monotonic accumulation (counts; additions are integral in practice).
  void AddCounter(const std::string& name, double delta = 1.0);
  /// Appends one observation to the named series.
  void Observe(const std::string& name, double value);

  /// Folds a pre-built histogram into the named series. Used by the serve
  /// engine, whose workers accumulate host-latency histograms locally and
  /// merge them after the drain — bucket merges are order-independent, so
  /// the snapshot stays deterministic for deterministic inputs. The
  /// histogram's layout must match the aggregator's. A name used with
  /// MergeHistogram must not also be used with Observe.
  void MergeHistogram(const std::string& name, const LogHistogram& hist);

  /// Ingests one recorder's streams under `prefix` (e.g. "fp32"):
  ///  * per-kernel modelled time, stall time and per-launch histograms,
  ///  * queue-command latency histograms per command kind,
  ///  * per-rail power and energy per measurement segment,
  ///  * fault/resilience event counters by (site, action).
  /// Record order does not matter: everything is canonically sorted before
  /// any floating-point accumulation.
  void IngestRecorder(const Recorder& recorder,
                      const power::PowerModel& model,
                      const std::string& prefix);

  /// Sorts every observation series and computes histogram statistics.
  MetricsSnapshot Finalize() const;

 private:
  LogHistogram::Layout layout_;
  std::map<std::string, double> gauges_;
  std::map<std::string, double> counters_;
  std::map<std::string, std::vector<double>> series_;
  std::map<std::string, LogHistogram> merged_;
};

/// Compact per-kernel latency summary (the malisim-prof --summary view):
/// one row per (device, kernel) with launch count and p50/p90/p99/max of
/// the modelled per-launch time, plus per-rail energy totals when power
/// segments were recorded.
std::string SummaryReport(const Recorder& recorder,
                          const power::PowerModel& model);

}  // namespace malisim::obs
