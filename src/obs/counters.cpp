#include "obs/counters.h"

namespace malisim::obs {

CounterRegistry::Id CounterRegistry::Register(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Id i = 0; i < entries_.size(); ++i) {
    if (entries_[i].name == name) return i;
  }
  entries_.push_back({name, 0.0});
  return entries_.size() - 1;
}

void CounterRegistry::Add(Id id, double delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id < entries_.size()) entries_[id].value += delta;
}

void CounterRegistry::Increment(const std::string& name, double delta) {
  Add(Register(name), delta);
}

double CounterRegistry::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Entry& e : entries_) {
    if (e.name == name) return e.value;
  }
  return 0.0;
}

std::vector<CounterRegistry::Entry> CounterRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_;
}

std::size_t CounterRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace malisim::obs
