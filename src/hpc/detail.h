// Shared machinery for benchmark implementations: precision-erased host
// arrays, CPU/GPU run helpers, validation, and common KIR snippets.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "hpc/benchmark.h"
#include "kir/builder.h"
#include "kir/exec_types.h"
#include "kir/program.h"

namespace malisim::hpc::detail {

/// A host array of f32 or f64 elements behind one interface, so each
/// benchmark implements its logic once for both precisions.
class FpBuffer {
 public:
  FpBuffer() = default;
  FpBuffer(bool fp64, std::size_t n) : fp64_(fp64) {
    if (fp64) {
      d_.assign(n, 0.0);
    } else {
      f_.assign(n, 0.0f);
    }
  }

  bool fp64() const { return fp64_; }
  std::size_t size() const { return fp64_ ? d_.size() : f_.size(); }
  std::size_t bytes() const { return size() * elem_bytes(); }
  std::size_t elem_bytes() const { return fp64_ ? 8 : 4; }
  kir::ScalarType type() const {
    return fp64_ ? kir::ScalarType::kF64 : kir::ScalarType::kF32;
  }

  double Get(std::size_t i) const {
    return fp64_ ? d_[i] : static_cast<double>(f_[i]);
  }
  void Set(std::size_t i, double v) {
    if (fp64_) {
      d_[i] = v;
    } else {
      f_[i] = static_cast<float>(v);
    }
  }

  void* data() { return fp64_ ? static_cast<void*>(d_.data()) : f_.data(); }
  const void* data() const {
    return fp64_ ? static_cast<const void*>(d_.data()) : f_.data();
  }

  void FillFrom(std::span<const double> src) {
    for (std::size_t i = 0; i < src.size() && i < size(); ++i) Set(i, src[i]);
  }

 private:
  bool fp64_ = false;
  std::vector<float> f_;
  std::vector<double> d_;
};

/// Raw binding for CPU-device runs (the Serial/OpenMP versions use plain
/// host arrays, not CL buffers — mirroring the paper's plain-C codes).
struct CpuBind {
  void* data = nullptr;
  std::size_t bytes = 0;
};

/// Runs a kernel on the A15 device: 1 thread = Serial, 2 = OpenMP.
/// Buffers get synthetic unified-space addresses. Caches are flushed first
/// (every variant starts cold; see DESIGN.md §6).
StatusOr<RunOutcome> RunCpu(Devices& devices, const kir::Program& program,
                            const kir::LaunchConfig& config,
                            const std::vector<CpuBind>& buffers,
                            const std::vector<kir::ScalarValue>& scalars,
                            int threads);

/// Creates a zero-copy (CL_MEM_ALLOC_HOST_PTR) buffer and fills it through
/// the map/unmap path the paper recommends (§III-A). The transfer events are
/// not part of the measured region (§IV-B: both CL variants use mapping).
StatusOr<std::shared_ptr<ocl::Buffer>> MakeGpuBuffer(ocl::Context& context,
                                                     const void* src,
                                                     std::uint64_t bytes);

/// One enqueued kernel of a GPU variant's measured region.
struct GpuLaunch {
  ocl::Kernel* kernel = nullptr;
  std::uint32_t work_dim = 1;
  std::uint64_t global[3] = {1, 1, 1};
  /// nullptr = let the driver heuristic choose (the naive variants).
  const std::uint64_t* local = nullptr;
};

/// Enqueues the launches in order, merging events into one outcome. When
/// the GPU context's SimOptions carry a per-kernel watchdog budget
/// (fault.watchdog_sec > 0), a launch whose modelled time exceeds it
/// aborts the region with DeadlineExceeded — a degradable error, so the
/// kernel ladder (or the harness variant ladder) can fall back.
StatusOr<RunOutcome> RunGpuLaunches(Devices& devices,
                                    std::span<GpuLaunch> launches);

/// One rung of a benchmark-internal kernel ladder: the human-readable
/// kernel label used in figure notes ("vector-gather kernel") plus a thunk
/// that builds, binds, and runs that kernel flavor.
struct KernelRung {
  std::string label;
  std::function<StatusOr<RunOutcome>()> run;
};

/// Runs the rungs top-down under the fault plan's retry policy: transient
/// failures are retried with backoff, degradable failures fall to the next
/// rung, anything else aborts. On fallback the legacy-format note
/// "<CL error> for <label>; fell back to <next label>" is prepended to the
/// winning outcome's note, and retry accounting lands in its stats
/// (fault.retries / fault.backoff_sec). With no injector attached the
/// behavior is exactly the pre-ladder hard-coded fallback: only the
/// deterministic register-budget failure can trip, and it falls one rung.
StatusOr<RunOutcome> RunKernelLadder(Devices& devices,
                                     std::span<const KernelRung> rungs);

/// Reads back a GPU buffer through the map path into host memory.
Status ReadGpuBuffer(ocl::Context& context, ocl::Buffer& buffer, void* dst,
                     std::uint64_t bytes);

/// Buffer factory for tuned runs, expressing the §III-A map-vs-copy knob.
/// copy_path == false is the zero-copy CL_MEM_ALLOC_HOST_PTR map path the
/// paper recommends (and the golden runs use); copy_path == true is the
/// discrete-GPU-style plain buffer with modelled EnqueueWrite/ReadBuffer
/// transfers. The copy path accumulates the transfer events here and
/// ChargeTransfers folds them into an outcome — on the shared-memory Mali
/// that cost is pure overhead, which is exactly what makes the knob worth
/// tuning.
class TunedBufferSet {
 public:
  TunedBufferSet(ocl::Context& context, bool copy_path)
      : context_(context), copy_path_(copy_path) {}

  StatusOr<std::shared_ptr<ocl::Buffer>> Make(const void* src,
                                              std::uint64_t bytes);
  Status Read(ocl::Buffer& buffer, void* dst, std::uint64_t bytes);

  /// Adds the accumulated transfer time/activity to the measured region.
  /// No-op on the map path (transfers are outside the region, §IV-B).
  void ChargeTransfers(RunOutcome* outcome) const;

 private:
  ocl::Context& context_;
  bool copy_path_;
  double seconds_ = 0.0;
  std::vector<power::ActivityProfile> profiles_;
};

/// Time-weighted merge of activity profiles (kernel launches in sequence).
power::ActivityProfile MergeProfiles(
    std::span<const power::ActivityProfile> profiles);

/// max_i |got[i] - want[i]| / max(|want[i]|, eps).
double MaxRelError(const FpBuffer& got, std::span<const double> want);
double MaxRelError(std::span<const double> got, std::span<const double> want);

/// Marks the outcome validated when err <= tol; always records the error.
void FinishValidation(RunOutcome* outcome, double err, double tol);

// ---- KIR snippets ----

/// Emits the OpenMP-static-schedule chunking preamble: this work-item
/// handles elements [start, end) of n, split evenly over global_size(0).
struct Chunk {
  kir::Val start;
  kir::Val end;
};
Chunk ThreadChunk(kir::KernelBuilder& kb, kir::Val n);

/// Largest power-of-two divisor of `global` that is <= `preferred`: the
/// adaptive form of "manually tuned work-group size" that keeps tuned
/// launches legal at any problem size.
std::uint64_t TunedLocalSize(std::uint64_t global, std::uint64_t preferred);

/// Float constant of the benchmark's precision.
inline kir::Val FConst(kir::KernelBuilder& kb, bool fp64, double v,
                       std::uint8_t lanes = 1) {
  return kb.ConstF(kir::FloatType(fp64, lanes), v);
}

}  // namespace malisim::hpc::detail
