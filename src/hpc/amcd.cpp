// Atomic Monte-Carlo Dynamics (amcd): independent Markov-chain Monte-Carlo
// simulations with Metropolis acceptance (paper §IV-A: "initial atom
// coordinates are provided and a number of randomly chosen displacements
// are applied to randomly selected atoms which are accepted or rejected
// using the Metropolis method").
//
// Each work-item owns one chain (an independent simulation) — the
// divergence-free execution showcase. The kernel embeds a xorshift32 PRNG
// so all four versions replay the identical random sequence; validation
// compares final coordinates against a host replica that performs the same
// IEEE operations in the same order.
//
// In double precision the kernel's shape — an FP64 exp() inside a loop with
// data-dependent control flow — triggers the modelled ARM compiler erratum:
// clBuildProgram fails (paper §V-A), so both GPU versions are absent from
// the DP figures, exactly as in Fig. 2(b)-4(b).
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/prng.h"
#include "hpc/detail.h"
#include "hpc/kernels.h"

namespace malisim::hpc {
namespace {

using detail::FpBuffer;
using kir::ArgKind;
using kir::KernelBuilder;
using kir::Opcode;
using kir::Val;

constexpr double kBox = 10.0;       // initial coordinate range
constexpr double kDelta = 0.5;      // max displacement per move
constexpr double kEps = 0.01;       // potential softening
constexpr double kNegInvT = -2.0;   // -1/temperature

class AmcdBenchmark final : public Benchmark {
 public:
  explicit AmcdBenchmark(const ProblemSizes& sizes)
      : chains_(sizes.amcd_chains),
        atoms_(sizes.amcd_atoms),
        steps_(sizes.amcd_steps) {}

  std::string name() const override { return "amcd"; }
  std::string description() const override {
    return "Metropolis Monte-Carlo atom dynamics (independent chains)";
  }

  Status Setup(bool fp64, std::uint64_t seed) override {
    fp64_ = fp64;
    seed_ = seed;
    const std::size_t total = static_cast<std::size_t>(chains_) * atoms_;
    init_x_ = FpBuffer(fp64, total);
    init_y_ = FpBuffer(fp64, total);
    init_z_ = FpBuffer(fp64, total);
    Xoshiro256 rng(seed);
    for (std::size_t i = 0; i < total; ++i) {
      init_x_.Set(i, rng.NextDouble(0.0, kBox));
      init_y_.Set(i, rng.NextDouble(0.0, kBox));
      init_z_.Set(i, rng.NextDouble(0.0, kBox));
    }
    // Reference: replay every chain on the host with identical arithmetic.
    ref_x_.assign(total, 0.0);
    ref_y_.assign(total, 0.0);
    ref_z_.assign(total, 0.0);
    if (fp64) {
      ComputeReference<double>();
    } else {
      ComputeReference<float>();
    }
    return Status::Ok();
  }

  StatusOr<RunOutcome> Run(Variant variant, Devices& devices) override {
    switch (variant) {
      case Variant::kSerial:
        return RunCpuVariant(devices, 1);
      case Variant::kOpenMP:
        return RunCpuVariant(devices, 2);
      case Variant::kOpenCL:
        return RunGpuVariant(devices, false);
      case Variant::kOpenCLOpt:
        return RunGpuVariant(devices, true);
      case Variant::kHetero:
        break;  // resolved by RunVariant; raw dispatch is invalid
    }
    return InvalidArgumentError("bad variant");
  }

  // §III knobs: inner-j unroll factor and work-group size. In FP64 every
  // candidate hits the modelled compiler erratum at Build(), so the whole
  // search returns NotFound — the tuner-level analogue of the missing
  // DP bars in Fig. 2(b).
  sim::TuningSpace TunableSpace() const override {
    sim::TuningSpace space;
    space.axes = {{"unroll", {1, 2, 4}}, {"wg", {32, 64, 128}}};
    return space;
  }

  sim::TuningConfig PaperOptConfig() const override {
    sim::TuningConfig config;
    config.Set("unroll", 2);
    config.Set("wg", 64);
    return config;
  }

  StatusOr<RunOutcome> RunTuned(const sim::TuningConfig& config,
                                Devices& devices) override {
    MALI_CHECK(devices.gpu != nullptr);
    const int unroll = static_cast<int>(config.Get("unroll", 2));
    const std::uint64_t wg = static_cast<std::uint64_t>(config.Get("wg", 64));

    StatusOr<kir::Program> program = BuildGpuTuned(unroll);
    if (!program.ok()) return program.status();
    ocl::Context& ctx = *devices.gpu;
    const std::size_t total = static_cast<std::size_t>(chains_) * atoms_;
    FpBuffer wx(fp64_, total), wy(fp64_, total), wz(fp64_, total);
    CopyInit(&wx, &wy, &wz);

    auto bx = detail::MakeGpuBuffer(ctx, wx.data(), wx.bytes());
    if (!bx.ok()) return bx.status();
    auto by = detail::MakeGpuBuffer(ctx, wy.data(), wy.bytes());
    if (!by.ok()) return by.status();
    auto bz = detail::MakeGpuBuffer(ctx, wz.data(), wz.bytes());
    if (!bz.ok()) return bz.status();

    const std::string kernel_name = program->name;
    std::vector<kir::Program> kernels;
    kernels.push_back(*std::move(program));
    std::shared_ptr<ocl::Program> prog = ctx.CreateProgram(std::move(kernels));
    MALI_RETURN_IF_ERROR(prog->Build());
    auto kernel = ctx.CreateKernel(prog, kernel_name);
    if (!kernel.ok()) return kernel.status();
    MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(0, *bx));
    MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(1, *by));
    MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(2, *bz));

    devices.gpu->device().FlushCaches();
    detail::GpuLaunch launch;
    launch.kernel = kernel->get();
    launch.global[0] = chains_;
    const std::uint64_t tuned_local[3] = {detail::TunedLocalSize(chains_, wg),
                                          1, 1};
    launch.local = tuned_local;
    StatusOr<RunOutcome> outcome = detail::RunGpuLaunches(devices, {&launch, 1});
    if (!outcome.ok()) return outcome;

    MALI_RETURN_IF_ERROR(detail::ReadGpuBuffer(ctx, **bx, wx.data(), wx.bytes()));
    MALI_RETURN_IF_ERROR(detail::ReadGpuBuffer(ctx, **by, wy.data(), wy.bytes()));
    MALI_RETURN_IF_ERROR(detail::ReadGpuBuffer(ctx, **bz, wz.data(), wz.bytes()));
    detail::FinishValidation(&*outcome, PositionsError(wx, wy, wz), Tol());
    return outcome;
  }

  StatusOr<std::string> TunedKernelText(
      const sim::TuningConfig& config) const override {
    StatusOr<kir::Program> program =
        BuildGpuTuned(static_cast<int>(config.Get("unroll", 2)));
    if (!program.ok()) return program.status();
    return kir::ToText(*program);
  }

 private:
  kir::ScalarType ft() const {
    return fp64_ ? kir::ScalarType::kF64 : kir::ScalarType::kF32;
  }

  // --- host replica (per-type, operation-for-operation as the kernel) ---
  template <typename T>
  void ComputeReference() {
    const std::size_t total = static_cast<std::size_t>(chains_) * atoms_;
    std::vector<T> px(total), py(total), pz(total);
    for (std::size_t i = 0; i < total; ++i) {
      px[i] = static_cast<T>(init_x_.Get(i));
      py[i] = static_cast<T>(init_y_.Get(i));
      pz[i] = static_cast<T>(init_z_.Get(i));
    }
    for (std::uint32_t c = 0; c < chains_; ++c) {
      SimulateChain<T>(c, px.data(), py.data(), pz.data());
    }
    for (std::size_t i = 0; i < total; ++i) {
      ref_x_[i] = static_cast<double>(px[i]);
      ref_y_[i] = static_cast<double>(py[i]);
      ref_z_[i] = static_cast<double>(pz[i]);
    }
  }

  template <typename T>
  void SimulateChain(std::uint32_t chain, T* px, T* py, T* pz) const {
    std::uint32_t s = (chain + 1) * 0x9E3779B9u;
    auto draw = [&]() {
      s ^= s << 13;
      s ^= s >> 17;
      s ^= s << 5;
      return static_cast<std::int32_t>(s & 0x7fffffffu);
    };
    const T inv31 = static_cast<T>(1.0 / 2147483648.0);
    auto draw_u = [&]() { return static_cast<T>(draw()) * inv31; };
    const T half = static_cast<T>(0.5);
    const T delta = static_cast<T>(kDelta);
    const T eps = static_cast<T>(kEps);
    const T neg_inv_t = static_cast<T>(kNegInvT);
    const std::size_t base = static_cast<std::size_t>(chain) * atoms_;

    for (std::uint32_t t = 0; t < steps_; ++t) {
      const std::int32_t k = draw() % static_cast<std::int32_t>(atoms_);
      const T dx = (draw_u() - half) * delta;
      const T dy = (draw_u() - half) * delta;
      const T dz = (draw_u() - half) * delta;
      const std::size_t ck = base + static_cast<std::size_t>(k);
      const T oldx = px[ck], oldy = py[ck], oldz = pz[ck];
      const T newx = oldx + dx, newy = oldy + dy, newz = oldz + dz;
      T de = static_cast<T>(0);
      for (std::int32_t j = 0; j < static_cast<std::int32_t>(atoms_); ++j) {
        if (j != k) {
          const std::size_t cj = base + static_cast<std::size_t>(j);
          const T xj = px[cj], yj = py[cj], zj = pz[cj];
          // phi(r) = rsqrt(|r|^2 + eps), evaluated as in the kernel:
          // separate mul/add statements, no fma contraction.
          const T ox = oldx - xj, oy = oldy - yj, oz = oldz - zj;
          T r2o = ox * ox;
          r2o = r2o + oy * oy;
          r2o = r2o + oz * oz;
          r2o = r2o + eps;
          const T po = static_cast<T>(1) / std::sqrt(r2o);
          const T nx = newx - xj, ny = newy - yj, nz = newz - zj;
          T r2n = nx * nx;
          r2n = r2n + ny * ny;
          r2n = r2n + nz * nz;
          r2n = r2n + eps;
          const T pn = static_cast<T>(1) / std::sqrt(r2n);
          const T term = pn - po;
          de = de + term;
        }
      }
      const T u = draw_u();
      const T p = std::exp(de * neg_inv_t);
      const bool accept = de < static_cast<T>(0) || u < p;
      if (accept) {
        px[ck] = newx;
        py[ck] = newy;
        pz[ck] = newz;
      }
    }
  }

  // --- kernel ---
  /// Emits the full per-chain simulation with `chain` as the chain index.
  void EmitChain(KernelBuilder& kb, Val chain, kir::BufferRef px,
                 kir::BufferRef py, kir::BufferRef pz, int unroll_j) const {
    const kir::Type FT = kir::FloatType(fp64_);
    Val n_atoms = kb.ConstI(kir::I32(), atoms_);
    Val mask = kb.ConstI(kir::I32(), 0x7fffffff);
    Val inv31 = detail::FConst(kb, fp64_, 1.0 / 2147483648.0);
    Val half = detail::FConst(kb, fp64_, 0.5);
    Val delta = detail::FConst(kb, fp64_, kDelta);
    Val eps = detail::FConst(kb, fp64_, kEps);
    Val neg_inv_t = detail::FConst(kb, fp64_, kNegInvT);
    Val fzero = detail::FConst(kb, fp64_, 0.0);
    Val base = kb.Binary(Opcode::kMul, chain, n_atoms);

    Val s = kb.Var(kir::I32(), "rng");
    kb.Assign(s, kb.Binary(Opcode::kMul,
                           kb.Binary(Opcode::kAdd, chain, kb.ConstI(kir::I32(), 1)),
                           kb.ConstI(kir::I32(), 0x9E3779B9LL)));
    auto draw = [&]() {
      kb.Assign(s, s ^ kb.Shl(s, 13));
      kb.Assign(s, s ^ kb.Shr(s, 17));
      kb.Assign(s, s ^ kb.Shl(s, 5));
      return s & mask;
    };
    auto draw_u = [&]() { return kb.Convert(draw(), FT.scalar) * inv31; };

    Val steps = kb.ConstI(kir::I32(), steps_);
    kb.For("t", kb.ConstI(kir::I32(), 0), steps, 1, [&](Val) {
      Val k = kb.Binary(Opcode::kIRem, draw(), n_atoms);
      Val dx = (draw_u() - half) * delta;
      Val dy = (draw_u() - half) * delta;
      Val dz = (draw_u() - half) * delta;
      Val ck = kb.Binary(Opcode::kAdd, base, k);
      Val oldx = kb.Load(px, ck);
      Val oldy = kb.Load(py, ck);
      Val oldz = kb.Load(pz, ck);
      Val newx = oldx + dx;
      Val newy = oldy + dy;
      Val newz = oldz + dz;
      Val de = kb.Var(FT, "de");
      kb.Assign(de, fzero);

      auto body = [&](Val j) {
        kb.If(kb.CmpNe(j, k), [&] {
          Val cj = kb.Binary(Opcode::kAdd, base, j);
          Val xj = kb.Load(px, cj);
          Val yj = kb.Load(py, cj);
          Val zj = kb.Load(pz, cj);
          Val ox = oldx - xj, oy = oldy - yj, oz = oldz - zj;
          Val r2o = ox * ox;
          r2o = r2o + oy * oy;
          r2o = r2o + oz * oz;
          r2o = r2o + eps;
          Val po = kb.Rsqrt(r2o);
          Val nx = newx - xj, ny = newy - yj, nz = newz - zj;
          Val r2n = nx * nx;
          r2n = r2n + ny * ny;
          r2n = r2n + nz * nz;
          r2n = r2n + eps;
          Val pn = kb.Rsqrt(r2n);
          Val term = pn - po;
          kb.Assign(de, de + term);
        });
      };
      if (unroll_j > 1) {
        kb.ForUnrolled("j", kb.ConstI(kir::I32(), 0), n_atoms, 1, unroll_j, body);
      } else {
        kb.For("j", kb.ConstI(kir::I32(), 0), n_atoms, 1, body);
      }

      Val u = draw_u();
      Val p = kb.Exp(de * neg_inv_t);
      Val accept = kb.CmpLt(de, fzero) | kb.CmpLt(u, p);
      kb.If(accept, [&] {
        kb.Store(px, ck, newx);
        kb.Store(py, ck, newy);
        kb.Store(pz, ck, newz);
      });
    });
  }

  StatusOr<kir::Program> BuildCpuKernel() const {
    KernelBuilder kb("amcd_cpu");
    auto px = kb.ArgBuffer("px", ft(), ArgKind::kBufferRW);
    auto py = kb.ArgBuffer("py", ft(), ArgKind::kBufferRW);
    auto pz = kb.ArgBuffer("pz", ft(), ArgKind::kBufferRW);
    Val n = kb.ArgScalar("n_chains", kir::ScalarType::kI32);
    detail::Chunk chunk = detail::ThreadChunk(kb, n);
    kb.For("c", chunk.start, chunk.end, 1,
           [&](Val c) { EmitChain(kb, c, px, py, pz, /*unroll_j=*/1); });
    return kb.Build();
  }

  StatusOr<kir::Program> BuildGpuKernel(bool optimized) const {
    KernelBuilder kb(optimized ? "amcd_cl_opt" : "amcd_cl");
    auto px = kb.ArgBuffer("px", ft(), ArgKind::kBufferRW, optimized, false);
    auto py = kb.ArgBuffer("py", ft(), ArgKind::kBufferRW, optimized, false);
    auto pz = kb.ArgBuffer("pz", ft(), ArgKind::kBufferRW, optimized, false);
    EmitChain(kb, kb.GlobalId(0), px, py, pz, optimized ? 2 : 1);
    return kb.Build();
  }

  /// The optimized kernel with the j-loop unroll as the free parameter
  /// (the fixed opt kernel hard-codes unroll 2).
  StatusOr<kir::Program> BuildGpuTuned(int unroll) const {
    KernelBuilder kb("amcd_cl_tuned");
    auto px = kb.ArgBuffer("px", ft(), ArgKind::kBufferRW, true, false);
    auto py = kb.ArgBuffer("py", ft(), ArgKind::kBufferRW, true, false);
    auto pz = kb.ArgBuffer("pz", ft(), ArgKind::kBufferRW, true, false);
    EmitChain(kb, kb.GlobalId(0), px, py, pz, unroll);
    return kb.Build();
  }

  StatusOr<RunOutcome> RunCpuVariant(Devices& devices, int threads) {
    StatusOr<kir::Program> program = BuildCpuKernel();
    if (!program.ok()) return program.status();
    const std::size_t total = static_cast<std::size_t>(chains_) * atoms_;
    FpBuffer wx(fp64_, total), wy(fp64_, total), wz(fp64_, total);
    CopyInit(&wx, &wy, &wz);
    kir::LaunchConfig config;
    config.global_size = {static_cast<std::uint64_t>(threads), 1, 1};
    StatusOr<RunOutcome> outcome = detail::RunCpu(
        devices, *program, config,
        {{wx.data(), wx.bytes()}, {wy.data(), wy.bytes()}, {wz.data(), wz.bytes()}},
        {kir::ScalarValue::I32V(static_cast<std::int32_t>(chains_))}, threads);
    if (!outcome.ok()) return outcome;
    detail::FinishValidation(&*outcome, PositionsError(wx, wy, wz), Tol());
    return outcome;
  }

  StatusOr<RunOutcome> RunGpuVariant(Devices& devices, bool optimized) {
    StatusOr<kir::Program> program = BuildGpuKernel(optimized);
    if (!program.ok()) return program.status();
    ocl::Context& ctx = *devices.gpu;
    const std::size_t total = static_cast<std::size_t>(chains_) * atoms_;
    FpBuffer wx(fp64_, total), wy(fp64_, total), wz(fp64_, total);
    CopyInit(&wx, &wy, &wz);

    auto bx = detail::MakeGpuBuffer(ctx, wx.data(), wx.bytes());
    if (!bx.ok()) return bx.status();
    auto by = detail::MakeGpuBuffer(ctx, wy.data(), wy.bytes());
    if (!by.ok()) return by.status();
    auto bz = detail::MakeGpuBuffer(ctx, wz.data(), wz.bytes());
    if (!bz.ok()) return bz.status();

    const std::string kernel_name = program->name;
    std::vector<kir::Program> kernels;
    kernels.push_back(*std::move(program));
    std::shared_ptr<ocl::Program> prog = ctx.CreateProgram(std::move(kernels));
    // In FP64 this is where the modelled compiler erratum fires
    // (CL_BUILD_PROGRAM_FAILURE) — the caller reports the missing bar.
    MALI_RETURN_IF_ERROR(prog->Build());
    auto kernel = ctx.CreateKernel(prog, kernel_name);
    if (!kernel.ok()) return kernel.status();
    MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(0, *bx));
    MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(1, *by));
    MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(2, *bz));

    devices.gpu->device().FlushCaches();
    detail::GpuLaunch launch;
    launch.kernel = kernel->get();
    launch.global[0] = chains_;
    const std::uint64_t tuned_local[3] = {
        detail::TunedLocalSize(chains_, 64), 1, 1};
    launch.local = optimized ? tuned_local : nullptr;
    StatusOr<RunOutcome> outcome = detail::RunGpuLaunches(devices, {&launch, 1});
    if (!outcome.ok()) return outcome;

    MALI_RETURN_IF_ERROR(detail::ReadGpuBuffer(ctx, **bx, wx.data(), wx.bytes()));
    MALI_RETURN_IF_ERROR(detail::ReadGpuBuffer(ctx, **by, wy.data(), wy.bytes()));
    MALI_RETURN_IF_ERROR(detail::ReadGpuBuffer(ctx, **bz, wz.data(), wz.bytes()));
    detail::FinishValidation(&*outcome, PositionsError(wx, wy, wz), Tol());
    return outcome;
  }

  void CopyInit(FpBuffer* wx, FpBuffer* wy, FpBuffer* wz) const {
    for (std::size_t i = 0; i < wx->size(); ++i) {
      wx->Set(i, init_x_.Get(i));
      wy->Set(i, init_y_.Get(i));
      wz->Set(i, init_z_.Get(i));
    }
  }

  double PositionsError(const FpBuffer& wx, const FpBuffer& wy,
                        const FpBuffer& wz) const {
    double err = detail::MaxRelError(wx, ref_x_);
    err = std::max(err, detail::MaxRelError(wy, ref_y_));
    err = std::max(err, detail::MaxRelError(wz, ref_z_));
    return err;
  }

  double Tol() const { return fp64_ ? 1e-12 : 1e-4; }

  std::uint32_t chains_, atoms_, steps_;
  FpBuffer init_x_, init_y_, init_z_;
  std::vector<double> ref_x_, ref_y_, ref_z_;
};

}  // namespace

std::unique_ptr<Benchmark> MakeAmcd(const ProblemSizes& sizes) {
  return std::make_unique<AmcdBenchmark>(sizes);
}

}  // namespace malisim::hpc
