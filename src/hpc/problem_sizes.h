// Default problem sizes for the nine paper benchmarks (§IV-A).
//
// The paper keeps the problem size constant across the four versions of a
// benchmark (§IV-D) but does not publish the exact sizes; these defaults are
// chosen so that (a) working sets sit in the regime the paper describes
// (vecop/spmv stream far beyond the 1 MB L2; dmmm/2dcon have exploitable
// reuse), and (b) a full figure sweep simulates in minutes of host time.
// Every size can be overridden for quick tests or bigger studies.
#pragma once

#include <cstdint>

namespace malisim::hpc {

struct ProblemSizes {
  // Sparse vector-matrix multiplication (CSR).
  std::uint32_t spmv_rows = 12288;
  std::uint32_t spmv_avg_nnz_per_row = 24;   // skewed: some rows much heavier
  // Vector operation c = a + b.
  std::uint32_t vecop_n = 1u << 20;
  // Histogram.
  std::uint32_t hist_n = 1u << 20;
  std::uint32_t hist_bins = 256;
  // 3D stencil (7-point) on a dim^3 volume.
  std::uint32_t stencil_dim = 64;
  // Reduction.
  std::uint32_t red_n = 1u << 20;
  // Atomic Monte-Carlo dynamics.
  std::uint32_t amcd_chains = 512;
  std::uint32_t amcd_atoms = 48;
  std::uint32_t amcd_steps = 96;
  // N-body.
  std::uint32_t nbody_n = 2048;
  // 2D convolution (5x5 filter).
  std::uint32_t conv_dim = 448;
  // Dense matrix-matrix multiplication (square).
  std::uint32_t dmmm_n = 192;

  /// The --quick sizes shared by the figure binaries and malisim-prof:
  /// same code paths, seconds-scale total runtime for CI smoke runs.
  static ProblemSizes Quick() {
    ProblemSizes s;
    s.spmv_rows = 2048;
    s.vecop_n = 1u << 17;
    s.hist_n = 1u << 17;
    s.stencil_dim = 32;
    s.red_n = 1u << 17;
    s.amcd_chains = 128;
    s.amcd_atoms = 24;
    s.amcd_steps = 32;
    s.nbody_n = 512;
    s.conv_dim = 128;
    s.dmmm_n = 96;
    return s;
  }
};

}  // namespace malisim::hpc
