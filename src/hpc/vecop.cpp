// Vector Operation (vecop): element-wise c = a + b.
//
// Paper §IV-A: "Given the memory-bound nature of the kernel, this benchmark
// stresses the memory bandwidth of the platform under study."
//
// Versions:
//  * Serial/OpenMP — scalar loop over a contiguous chunk per core.
//  * OpenCL        — one element per work-item, scalar loads, driver-chosen
//                    work-group size.
//  * OpenCL Opt    — §III-B vectorization: float4/double4 vload/vstore, four
//                    elements per work-item, manually tuned work-group size,
//                    restrict/const qualifiers.
#include <vector>

#include "common/prng.h"
#include "hpc/detail.h"
#include "hpc/kernels.h"

namespace malisim::hpc {
namespace {

using detail::FpBuffer;
using kir::ArgKind;
using kir::KernelBuilder;
using kir::Val;

class VecopBenchmark final : public Benchmark {
 public:
  explicit VecopBenchmark(const ProblemSizes& sizes) : n_(sizes.vecop_n) {}

  std::string name() const override { return "vecop"; }
  std::string description() const override {
    return "element-wise vector addition (memory-bandwidth bound)";
  }

  Status Setup(bool fp64, std::uint64_t seed) override {
    fp64_ = fp64;
    seed_ = seed;
    a_ = FpBuffer(fp64, n_);
    b_ = FpBuffer(fp64, n_);
    ref_.assign(n_, 0.0);
    Xoshiro256 rng(seed);
    for (std::uint32_t i = 0; i < n_; ++i) {
      a_.Set(i, rng.NextDouble(-1.0, 1.0));
      b_.Set(i, rng.NextDouble(-1.0, 1.0));
      ref_[i] = a_.Get(i) + b_.Get(i);
    }
    return Status::Ok();
  }

  StatusOr<RunOutcome> Run(Variant variant, Devices& devices) override {
    switch (variant) {
      case Variant::kSerial:
        return RunCpuVariant(devices, 1);
      case Variant::kOpenMP:
        return RunCpuVariant(devices, 2);
      case Variant::kOpenCL:
        return RunGpuVariant(devices, /*optimized=*/false);
      case Variant::kOpenCLOpt:
        return RunGpuVariant(devices, /*optimized=*/true);
      case Variant::kHetero:
        break;  // resolved by RunVariant; raw dispatch is invalid
    }
    return InvalidArgumentError("bad variant");
  }

  // §III knobs: vector width, work-group size, and the map-vs-copy buffer
  // strategy (§III-A) — vecop is the benchmark where the copy overhead is
  // most visible because the kernel itself is pure bandwidth.
  sim::TuningSpace TunableSpace() const override {
    sim::TuningSpace space;
    space.axes = {{"vec", {1, 2, 4}},
                  {"wg", {32, 64, 128, 256}},
                  {"copy", {0, 1}}};
    space.valid = [n = n_](const sim::TuningConfig& c) {
      return n % static_cast<std::uint32_t>(c.Get("vec", 1)) == 0;
    };
    return space;
  }

  sim::TuningConfig PaperOptConfig() const override {
    sim::TuningConfig config;
    config.Set("vec", 4);
    config.Set("wg", 128);
    config.Set("copy", 0);
    return config;
  }

  StatusOr<RunOutcome> RunTuned(const sim::TuningConfig& config,
                                Devices& devices) override {
    MALI_CHECK(devices.gpu != nullptr);
    const int vec = static_cast<int>(config.Get("vec", 4));
    const std::uint64_t wg = static_cast<std::uint64_t>(config.Get("wg", 128));
    const bool copy = config.Get("copy", 0) != 0;

    StatusOr<kir::Program> program = BuildGpuTuned(vec);
    if (!program.ok()) return program.status();
    ocl::Context& ctx = *devices.gpu;
    detail::TunedBufferSet buffers(ctx, copy);

    auto a = buffers.Make(a_.data(), a_.bytes());
    if (!a.ok()) return a.status();
    auto b = buffers.Make(b_.data(), b_.bytes());
    if (!b.ok()) return b.status();
    auto c = buffers.Make(nullptr, a_.bytes());
    if (!c.ok()) return c.status();

    std::vector<kir::Program> kernels;
    kernels.push_back(*std::move(program));
    const std::string kernel_name = kernels.front().name;
    std::shared_ptr<ocl::Program> prog = ctx.CreateProgram(std::move(kernels));
    MALI_RETURN_IF_ERROR(prog->Build());
    StatusOr<std::shared_ptr<ocl::Kernel>> kernel =
        ctx.CreateKernel(prog, kernel_name);
    if (!kernel.ok()) return kernel.status();
    MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(0, *a));
    MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(1, *b));
    MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(2, *c));

    devices.gpu->device().FlushCaches();
    detail::GpuLaunch launch;
    launch.kernel = kernel->get();
    launch.work_dim = 1;
    launch.global[0] = n_ / static_cast<std::uint64_t>(vec);
    const std::uint64_t tuned_local[3] = {
        detail::TunedLocalSize(launch.global[0], wg), 1, 1};
    launch.local = tuned_local;
    StatusOr<RunOutcome> outcome =
        detail::RunGpuLaunches(devices, {&launch, 1});
    if (!outcome.ok()) return outcome;

    FpBuffer result(fp64_, n_);
    MALI_RETURN_IF_ERROR(buffers.Read(**c, result.data(), result.bytes()));
    buffers.ChargeTransfers(&*outcome);
    detail::FinishValidation(&*outcome, detail::MaxRelError(result, ref_), 1e-5);
    return outcome;
  }

  StatusOr<std::string> TunedKernelText(
      const sim::TuningConfig& config) const override {
    StatusOr<kir::Program> program =
        BuildGpuTuned(static_cast<int>(config.Get("vec", 4)));
    if (!program.ok()) return program.status();
    return kir::ToText(*program);
  }

 private:
  kir::ScalarType ft() const {
    return fp64_ ? kir::ScalarType::kF64 : kir::ScalarType::kF32;
  }

  StatusOr<kir::Program> BuildCpuKernel() const {
    KernelBuilder kb("vecop_cpu");
    auto a = kb.ArgBuffer("a", ft(), ArgKind::kBufferRO);
    auto b = kb.ArgBuffer("b", ft(), ArgKind::kBufferRO);
    auto c = kb.ArgBuffer("c", ft(), ArgKind::kBufferWO);
    Val n = kb.ArgScalar("n", kir::ScalarType::kI32);
    detail::Chunk chunk = detail::ThreadChunk(kb, n);
    kb.For("i", chunk.start, chunk.end, 1, [&](Val i) {
      kb.Store(c, i, kb.Load(a, i) + kb.Load(b, i));
    });
    return kb.Build();
  }

  StatusOr<RunOutcome> RunCpuVariant(Devices& devices, int threads) {
    StatusOr<kir::Program> program = BuildCpuKernel();
    if (!program.ok()) return program.status();
    FpBuffer c(fp64_, n_);
    kir::LaunchConfig config;
    config.work_dim = 1;
    config.global_size = {static_cast<std::uint64_t>(threads), 1, 1};
    config.local_size = {1, 1, 1};
    StatusOr<RunOutcome> outcome = detail::RunCpu(
        devices, *program, config,
        {{a_.data(), a_.bytes()}, {b_.data(), b_.bytes()}, {c.data(), c.bytes()}},
        {kir::ScalarValue::I32V(static_cast<std::int32_t>(n_))}, threads);
    if (!outcome.ok()) return outcome;
    detail::FinishValidation(&*outcome, detail::MaxRelError(c, ref_), 1e-5);
    return outcome;
  }

  StatusOr<kir::Program> BuildGpuNaive() const {
    KernelBuilder kb("vecop_cl");
    auto a = kb.ArgBuffer("a", ft(), ArgKind::kBufferRO);
    auto b = kb.ArgBuffer("b", ft(), ArgKind::kBufferRO);
    auto c = kb.ArgBuffer("c", ft(), ArgKind::kBufferWO);
    Val gid = kb.GlobalId(0);
    kb.Store(c, gid, kb.Load(a, gid) + kb.Load(b, gid));
    return kb.Build();
  }

  StatusOr<kir::Program> BuildGpuOpt() const {
    KernelBuilder kb("vecop_cl_opt");
    auto a = kb.ArgBuffer("a", ft(), ArgKind::kBufferRO, /*is_restrict=*/true,
                          /*is_const=*/true);
    auto b = kb.ArgBuffer("b", ft(), ArgKind::kBufferRO, true, true);
    auto c = kb.ArgBuffer("c", ft(), ArgKind::kBufferWO, true, false);
    Val gid = kb.GlobalId(0);
    Val base = kb.Binary(kir::Opcode::kMul, gid, kb.ConstI(kir::I32(), 4));
    Val va = kb.Load(a, base, 0, 4);
    Val vb = kb.Load(b, base, 0, 4);
    kb.Store(c, base, va + vb);
    return kb.Build();
  }

  /// The optimized kernel generalized over vector width: vec == 1 is the
  /// naive body plus the §III-C qualifiers, vec > 1 the vloadN/vstoreN form.
  StatusOr<kir::Program> BuildGpuTuned(int vec) const {
    KernelBuilder kb("vecop_cl_tuned");
    auto a = kb.ArgBuffer("a", ft(), ArgKind::kBufferRO, /*is_restrict=*/true,
                          /*is_const=*/true);
    auto b = kb.ArgBuffer("b", ft(), ArgKind::kBufferRO, true, true);
    auto c = kb.ArgBuffer("c", ft(), ArgKind::kBufferWO, true, false);
    Val gid = kb.GlobalId(0);
    if (vec <= 1) {
      kb.Store(c, gid, kb.Load(a, gid) + kb.Load(b, gid));
    } else {
      Val base = kb.Binary(kir::Opcode::kMul, gid, kb.ConstI(kir::I32(), vec));
      const auto lanes = static_cast<std::uint8_t>(vec);
      Val va = kb.Load(a, base, 0, lanes);
      Val vb = kb.Load(b, base, 0, lanes);
      kb.Store(c, base, va + vb);
    }
    return kb.Build();
  }

  StatusOr<RunOutcome> RunGpuVariant(Devices& devices, bool optimized) {
    StatusOr<kir::Program> program =
        optimized ? BuildGpuOpt() : BuildGpuNaive();
    if (!program.ok()) return program.status();
    ocl::Context& ctx = *devices.gpu;

    auto a = detail::MakeGpuBuffer(ctx, a_.data(), a_.bytes());
    if (!a.ok()) return a.status();
    auto b = detail::MakeGpuBuffer(ctx, b_.data(), b_.bytes());
    if (!b.ok()) return b.status();
    auto c = detail::MakeGpuBuffer(ctx, nullptr, a_.bytes());
    if (!c.ok()) return c.status();

    std::vector<kir::Program> kernels;
    kernels.push_back(*std::move(program));
    const std::string kernel_name = kernels.front().name;
    std::shared_ptr<ocl::Program> prog = ctx.CreateProgram(std::move(kernels));
    MALI_RETURN_IF_ERROR(prog->Build());
    StatusOr<std::shared_ptr<ocl::Kernel>> kernel =
        ctx.CreateKernel(prog, kernel_name);
    if (!kernel.ok()) return kernel.status();
    MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(0, *a));
    MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(1, *b));
    MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(2, *c));

    devices.gpu->device().FlushCaches();
    detail::GpuLaunch launch;
    launch.kernel = kernel->get();
    launch.work_dim = 1;
    const std::uint64_t tuned_local[3] = {
        detail::TunedLocalSize(n_ / 4, 128), 1, 1};
    if (optimized) {
      launch.global[0] = n_ / 4;
      launch.local = tuned_local;
    } else {
      launch.global[0] = n_;
      launch.local = nullptr;  // §III-A: driver picks the work-group size
    }
    StatusOr<RunOutcome> outcome =
        detail::RunGpuLaunches(devices, {&launch, 1});
    if (!outcome.ok()) return outcome;

    FpBuffer result(fp64_, n_);
    MALI_RETURN_IF_ERROR(
        detail::ReadGpuBuffer(ctx, **c, result.data(), result.bytes()));
    detail::FinishValidation(&*outcome, detail::MaxRelError(result, ref_), 1e-5);
    return outcome;
  }

  std::uint32_t n_;
  FpBuffer a_, b_;
  std::vector<double> ref_;
};

}  // namespace

std::unique_ptr<Benchmark> MakeVecop(const ProblemSizes& sizes) {
  return std::make_unique<VecopBenchmark>(sizes);
}

}  // namespace malisim::hpc
