#include "hpc/detail.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "fault/degrade.h"
#include "fault/injector.h"
#include "ocl/cl_error.h"

namespace malisim::hpc::detail {

StatusOr<RunOutcome> RunCpu(Devices& devices, const kir::Program& program,
                            const kir::LaunchConfig& config,
                            const std::vector<CpuBind>& buffers,
                            const std::vector<kir::ScalarValue>& scalars,
                            int threads) {
  MALI_CHECK(devices.cpu != nullptr);
  kir::Bindings bindings;
  std::uint64_t sim_addr = 0x1000'0000ULL;
  for (const CpuBind& b : buffers) {
    bindings.buffers.push_back(
        {static_cast<std::byte*>(b.data), sim_addr, b.bytes});
    sim_addr += (b.bytes + 4095) / 4096 * 4096 + 4096;
  }
  bindings.scalars = scalars;

  devices.cpu->FlushCaches();
  StatusOr<cpu::CpuRunResult> run =
      devices.cpu->Run(program, config, std::move(bindings), threads);
  if (!run.ok()) return run.status();

  RunOutcome outcome;
  outcome.seconds = run->seconds;
  outcome.profile = run->profile;
  outcome.run = run->run;
  outcome.stats = std::move(run->stats);
  return outcome;
}

StatusOr<std::shared_ptr<ocl::Buffer>> MakeGpuBuffer(ocl::Context& context,
                                                     const void* src,
                                                     std::uint64_t bytes) {
  StatusOr<std::shared_ptr<ocl::Buffer>> buffer = context.CreateBuffer(
      ocl::kMemReadWrite | ocl::kMemAllocHostPtr, bytes);
  if (!buffer.ok()) return buffer.status();
  StatusOr<void*> mapped = context.queue().MapBuffer(**buffer);
  if (!mapped.ok()) return mapped.status();
  if (src != nullptr) {
    std::memcpy(*mapped, src, bytes);
  } else {
    std::memset(*mapped, 0, bytes);
  }
  MALI_RETURN_IF_ERROR(context.queue().UnmapBuffer(**buffer, *mapped));
  return *std::move(buffer);
}

StatusOr<RunOutcome> RunGpuLaunches(Devices& devices,
                                    std::span<GpuLaunch> launches) {
  MALI_CHECK(devices.gpu != nullptr);
  const double watchdog = devices.gpu->sim_options().fault.watchdog_sec;
  RunOutcome outcome;
  std::vector<power::ActivityProfile> profiles;
  for (GpuLaunch& launch : launches) {
    MALI_CHECK(launch.kernel != nullptr);
    StatusOr<ocl::Event> event = devices.gpu->queue().EnqueueNDRange(
        *launch.kernel, launch.work_dim, launch.global, launch.local);
    if (!event.ok()) return event.status();
    if (watchdog > 0.0 && event->seconds > watchdog) {
      fault::FaultInjector* injector = devices.gpu->fault_injector();
      const std::string detail = "modelled " + std::to_string(event->seconds) +
                                 " s > budget " + std::to_string(watchdog) +
                                 " s";
      if (injector != nullptr) {
        injector->RecordAction("watchdog", launch.kernel->name(), "aborted",
                               detail);
      }
      return DeadlineExceededError("watchdog: kernel '" +
                                   launch.kernel->name() + "' " + detail);
    }
    outcome.seconds += event->seconds;
    profiles.push_back(event->profile);
    outcome.run.MergeFrom(event->run);
    outcome.stats.MergeFrom(event->stats);
  }
  outcome.profile = MergeProfiles(profiles);
  return outcome;
}

StatusOr<RunOutcome> RunKernelLadder(Devices& devices,
                                     std::span<const KernelRung> rungs) {
  MALI_CHECK(devices.gpu != nullptr);
  fault::FaultInjector* injector = devices.gpu->fault_injector();
  const fault::RetryPolicy policy =
      injector != nullptr ? injector->plan().retry : fault::RetryPolicy();

  std::vector<fault::Rung<RunOutcome>> frungs;
  frungs.reserve(rungs.size());
  for (const KernelRung& rung : rungs) frungs.push_back({rung.label, rung.run});

  fault::LadderReport report;
  StatusOr<RunOutcome> outcome = fault::RunLadder<RunOutcome>(
      policy, frungs, &report, injector);
  if (!outcome.ok()) return outcome;

  // Legacy-format note per fallen rung, e.g. "CL_OUT_OF_RESOURCES for
  // vector-gather kernel; fell back to scalar rsqrt+unroll kernel".
  std::string note;
  for (std::size_t i = 0; i < report.failures.size(); ++i) {
    const std::string& next_label = i + 1 < report.failures.size()
                                        ? report.failures[i + 1].first
                                        : rungs[report.rung_index].label;
    if (!note.empty()) note += "; ";
    note += std::string(
                ocl::ClErrorName(ocl::ClErrorFromStatus(report.failures[i].second))) +
            " for " + report.failures[i].first + "; fell back to " + next_label;
  }
  if (!note.empty()) {
    outcome->note = outcome->note.empty() ? note : note + "; " + outcome->note;
  }
  if (report.retry.retries > 0) {
    outcome->stats.Set("fault.retries",
                       static_cast<double>(report.retry.retries));
    outcome->stats.Set("fault.backoff_sec", report.retry.backoff_sec);
  }
  return outcome;
}

Status ReadGpuBuffer(ocl::Context& context, ocl::Buffer& buffer, void* dst,
                     std::uint64_t bytes) {
  StatusOr<void*> mapped = context.queue().MapBuffer(buffer);
  if (!mapped.ok()) return mapped.status();
  std::memcpy(dst, *mapped, bytes);
  return context.queue().UnmapBuffer(buffer, *mapped);
}

StatusOr<std::shared_ptr<ocl::Buffer>> TunedBufferSet::Make(
    const void* src, std::uint64_t bytes) {
  if (!copy_path_) return MakeGpuBuffer(context_, src, bytes);
  StatusOr<std::shared_ptr<ocl::Buffer>> buffer =
      context_.CreateBuffer(ocl::kMemReadWrite, bytes);
  if (!buffer.ok()) return buffer.status();
  if (src != nullptr) {
    StatusOr<ocl::Event> event =
        context_.queue().EnqueueWriteBuffer(**buffer, src, bytes);
    if (!event.ok()) return event.status();
    seconds_ += event->seconds;
    profiles_.push_back(event->profile);
  }
  return *std::move(buffer);
}

Status TunedBufferSet::Read(ocl::Buffer& buffer, void* dst,
                            std::uint64_t bytes) {
  if (!copy_path_) return ReadGpuBuffer(context_, buffer, dst, bytes);
  StatusOr<ocl::Event> event =
      context_.queue().EnqueueReadBuffer(buffer, dst, bytes);
  if (!event.ok()) return event.status();
  seconds_ += event->seconds;
  profiles_.push_back(event->profile);
  return Status::Ok();
}

void TunedBufferSet::ChargeTransfers(RunOutcome* outcome) const {
  if (!copy_path_ || profiles_.empty()) return;
  std::vector<power::ActivityProfile> merged = profiles_;
  merged.push_back(outcome->profile);
  outcome->profile = MergeProfiles(merged);
  outcome->seconds += seconds_;
}

power::ActivityProfile MergeProfiles(
    std::span<const power::ActivityProfile> profiles) {
  power::ActivityProfile merged;
  double total = 0.0;
  for (const power::ActivityProfile& p : profiles) total += p.seconds;
  merged.seconds = total;
  if (total <= 0.0) return merged;
  for (const power::ActivityProfile& p : profiles) {
    const double w = p.seconds / total;
    for (int i = 0; i < power::kNumA15Cores; ++i) {
      merged.cpu_busy[i] += w * p.cpu_busy[i];
    }
    for (int i = 0; i < power::kNumMaliCores; ++i) {
      merged.gpu_core_busy[i] += w * p.gpu_core_busy[i];
    }
    merged.gpu_on = merged.gpu_on || p.gpu_on;
    merged.dram_bytes += p.dram_bytes;
  }
  return merged;
}

namespace {

/// Mean magnitude of the reference, used as the relative-error floor so
/// that cancellation-prone outputs near zero do not blow the metric up
/// (the absolute error there is still bounded by tol * problem scale).
double MeanAbs(std::span<const double> want) {
  if (want.empty()) return 1e-12;
  double sum = 0.0;
  for (double w : want) sum += std::fabs(w);
  return std::max(sum / static_cast<double>(want.size()), 1e-12);
}

}  // namespace

double MaxRelError(const FpBuffer& got, std::span<const double> want) {
  double max_err = 0.0;
  const double floor = MeanAbs(want);
  const std::size_t n = std::min(got.size(), want.size());
  for (std::size_t i = 0; i < n; ++i) {
    const double denom = std::max(std::fabs(want[i]), floor);
    max_err = std::max(max_err, std::fabs(got.Get(i) - want[i]) / denom);
  }
  return max_err;
}

double MaxRelError(std::span<const double> got, std::span<const double> want) {
  double max_err = 0.0;
  const double floor = MeanAbs(want);
  const std::size_t n = std::min(got.size(), want.size());
  for (std::size_t i = 0; i < n; ++i) {
    const double denom = std::max(std::fabs(want[i]), floor);
    max_err = std::max(max_err, std::fabs(got[i] - want[i]) / denom);
  }
  return max_err;
}

void FinishValidation(RunOutcome* outcome, double err, double tol) {
  outcome->max_rel_error = err;
  outcome->validated = err <= tol;
  if (!outcome->validated) {
    outcome->note += (outcome->note.empty() ? "" : "; ");
    outcome->note += "VALIDATION FAILED (max rel err " + std::to_string(err) +
                     " > tol " + std::to_string(tol) + ")";
  }
}

std::uint64_t TunedLocalSize(std::uint64_t global, std::uint64_t preferred) {
  std::uint64_t pick = 1;
  while (pick * 2 <= preferred && global % (pick * 2) == 0) pick *= 2;
  return pick;
}

Chunk ThreadChunk(kir::KernelBuilder& kb, kir::Val n) {
  using kir::Opcode;
  kir::Val gid = kb.GlobalId(0);
  kir::Val nthreads = kb.GlobalSize(0);
  // chunk = (n + nthreads - 1) / nthreads
  kir::Val chunk = kb.Binary(
      Opcode::kIDiv,
      kb.Binary(Opcode::kSub, kb.Binary(Opcode::kAdd, n, nthreads),
                kb.ConstI(kir::I32(), 1)),
      nthreads);
  kir::Val start = kb.Binary(Opcode::kMul, gid, chunk);
  kir::Val end = kb.Min(kb.Binary(Opcode::kAdd, start, chunk), n);
  return {start, end};
}

}  // namespace malisim::hpc::detail
