// Sparse Vector-Matrix Multiplication (spmv): y = A x with A in CSR form.
//
// Paper §IV-A: "useful as metric to measure performance in cases of load
// imbalance"; §V-A: "spmv ... with large working sets and little
// computation ... our OpenCL versions do not take advantage of special data
// structures and for this reason spmv can only partially exploit the
// available bandwidth" — it is the one benchmark whose optimized version
// stays slow (1.25x).
//
// The row-length distribution is deliberately skewed (a tail of heavy rows)
// to create the load imbalance the paper calls out.
#include <algorithm>
#include <cmath>
#include <vector>

#include "common/prng.h"
#include "hpc/detail.h"
#include "hpc/kernels.h"

namespace malisim::hpc {
namespace {

using detail::FpBuffer;
using kir::ArgKind;
using kir::KernelBuilder;
using kir::Opcode;
using kir::Val;

class SpmvBenchmark final : public Benchmark {
 public:
  explicit SpmvBenchmark(const ProblemSizes& sizes)
      : rows_(sizes.spmv_rows), avg_nnz_(sizes.spmv_avg_nnz_per_row) {}

  std::string name() const override { return "spmv"; }
  std::string description() const override {
    return "CSR sparse matrix-vector product (load imbalance, bandwidth)";
  }

  Status Setup(bool fp64, std::uint64_t seed) override {
    fp64_ = fp64;
    seed_ = seed;
    Xoshiro256 rng(seed);

    row_ptr_.assign(rows_ + 1, 0);
    std::vector<std::uint32_t> row_nnz(rows_);
    for (std::uint32_t r = 0; r < rows_; ++r) {
      // 90% light rows, 10% heavy rows (~5x the average): load imbalance.
      const bool heavy = rng.NextDouble() < 0.10;
      const std::uint32_t lo = heavy ? avg_nnz_ * 3 : 2;
      const std::uint32_t hi = heavy ? avg_nnz_ * 7 : avg_nnz_;
      row_nnz[r] = lo + static_cast<std::uint32_t>(rng.NextBounded(hi - lo + 1));
    }
    for (std::uint32_t r = 0; r < rows_; ++r) {
      row_ptr_[r + 1] = row_ptr_[r] + static_cast<std::int32_t>(row_nnz[r]);
    }
    const std::uint32_t nnz = static_cast<std::uint32_t>(row_ptr_[rows_]);

    col_idx_.resize(nnz);
    vals_ = FpBuffer(fp64, nnz);
    x_ = FpBuffer(fp64, rows_);
    for (std::uint32_t i = 0; i < rows_; ++i) x_.Set(i, rng.NextDouble(-1, 1));
    for (std::uint32_t r = 0; r < rows_; ++r) {
      for (std::int32_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
        col_idx_[static_cast<std::size_t>(k)] =
            static_cast<std::int32_t>(rng.NextBounded(rows_));
        vals_.Set(static_cast<std::size_t>(k), rng.NextDouble(-1, 1));
      }
      std::sort(col_idx_.begin() + row_ptr_[r], col_idx_.begin() + row_ptr_[r + 1]);
    }

    // Reference in the run precision's value space but double accumulation.
    ref_.assign(rows_, 0.0);
    for (std::uint32_t r = 0; r < rows_; ++r) {
      double acc = 0.0;
      for (std::int32_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
        acc += vals_.Get(static_cast<std::size_t>(k)) *
               x_.Get(static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)]));
      }
      ref_[r] = acc;
    }
    return Status::Ok();
  }

  StatusOr<RunOutcome> Run(Variant variant, Devices& devices) override {
    switch (variant) {
      case Variant::kSerial:
        return RunCpuVariant(devices, 1);
      case Variant::kOpenMP:
        return RunCpuVariant(devices, 2);
      case Variant::kOpenCL:
        return RunGpuVariant(devices, false);
      case Variant::kOpenCLOpt:
        return RunGpuVariant(devices, true);
      case Variant::kHetero:
        break;  // resolved by RunVariant; raw dispatch is invalid
    }
    return InvalidArgumentError("bad variant");
  }

  // §III knobs: value/column vector width of the main row loop and the
  // work-group size. The x gathers stay scalar at every width (see
  // BuildGpuOpt), so the win from vec is modest — matching §V-A.
  sim::TuningSpace TunableSpace() const override {
    sim::TuningSpace space;
    space.axes = {{"vec", {1, 2, 4}}, {"wg", {32, 64, 128}}};
    return space;
  }

  sim::TuningConfig PaperOptConfig() const override {
    sim::TuningConfig config;
    config.Set("vec", 4);
    config.Set("wg", 64);
    return config;
  }

  StatusOr<RunOutcome> RunTuned(const sim::TuningConfig& config,
                                Devices& devices) override {
    MALI_CHECK(devices.gpu != nullptr);
    const int vec = static_cast<int>(config.Get("vec", 4));
    const std::uint64_t wg = static_cast<std::uint64_t>(config.Get("wg", 64));

    StatusOr<kir::Program> program = BuildGpuTuned(vec);
    if (!program.ok()) return program.status();
    ocl::Context& ctx = *devices.gpu;

    auto row_ptr =
        detail::MakeGpuBuffer(ctx, row_ptr_.data(), row_ptr_.size() * 4);
    if (!row_ptr.ok()) return row_ptr.status();
    auto col_idx =
        detail::MakeGpuBuffer(ctx, col_idx_.data(), col_idx_.size() * 4);
    if (!col_idx.ok()) return col_idx.status();
    auto vals = detail::MakeGpuBuffer(ctx, vals_.data(), vals_.bytes());
    if (!vals.ok()) return vals.status();
    auto x = detail::MakeGpuBuffer(ctx, x_.data(), x_.bytes());
    if (!x.ok()) return x.status();
    auto y = detail::MakeGpuBuffer(ctx, nullptr, x_.bytes());
    if (!y.ok()) return y.status();

    const std::string kernel_name = program->name;
    std::vector<kir::Program> kernels;
    kernels.push_back(*std::move(program));
    std::shared_ptr<ocl::Program> prog = ctx.CreateProgram(std::move(kernels));
    MALI_RETURN_IF_ERROR(prog->Build());
    auto kernel = ctx.CreateKernel(prog, kernel_name);
    if (!kernel.ok()) return kernel.status();
    MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(0, *row_ptr));
    MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(1, *col_idx));
    MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(2, *vals));
    MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(3, *x));
    MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(4, *y));

    devices.gpu->device().FlushCaches();
    detail::GpuLaunch launch;
    launch.kernel = kernel->get();
    launch.global[0] = rows_;
    const std::uint64_t tuned_local[3] = {detail::TunedLocalSize(rows_, wg), 1,
                                          1};
    launch.local = tuned_local;
    StatusOr<RunOutcome> outcome = detail::RunGpuLaunches(devices, {&launch, 1});
    if (!outcome.ok()) return outcome;

    FpBuffer result(fp64_, rows_);
    MALI_RETURN_IF_ERROR(
        detail::ReadGpuBuffer(ctx, **y, result.data(), result.bytes()));
    detail::FinishValidation(&*outcome, detail::MaxRelError(result, ref_), tol());
    return outcome;
  }

  StatusOr<std::string> TunedKernelText(
      const sim::TuningConfig& config) const override {
    StatusOr<kir::Program> program =
        BuildGpuTuned(static_cast<int>(config.Get("vec", 4)));
    if (!program.ok()) return program.status();
    return kir::ToText(*program);
  }

 private:
  kir::ScalarType ft() const {
    return fp64_ ? kir::ScalarType::kF64 : kir::ScalarType::kF32;
  }
  double tol() const { return fp64_ ? 1e-10 : 2e-3; }

  /// Emits the scalar row kernel body: y[row] = sum over the row's entries.
  void EmitRowBody(KernelBuilder& kb, kir::BufferRef row_ptr,
                   kir::BufferRef col_idx, kir::BufferRef vals,
                   kir::BufferRef x, kir::BufferRef y, Val row) const {
    Val begin = kb.Load(row_ptr, row);
    Val end = kb.Load(row_ptr, row, 1);
    Val acc = kb.Var(kir::FloatType(fp64_), "acc");
    kb.Assign(acc, detail::FConst(kb, fp64_, 0.0));
    kb.For("k", begin, end, 1, [&](Val k) {
      Val col = kb.Load(col_idx, k);
      kb.Assign(acc, kb.Fma(kb.Load(vals, k), kb.Load(x, col), acc));
    });
    kb.Store(y, row, acc);
  }

  StatusOr<kir::Program> BuildCpuKernel() const {
    KernelBuilder kb("spmv_cpu");
    auto row_ptr = kb.ArgBuffer("row_ptr", kir::ScalarType::kI32, ArgKind::kBufferRO);
    auto col_idx = kb.ArgBuffer("col_idx", kir::ScalarType::kI32, ArgKind::kBufferRO);
    auto vals = kb.ArgBuffer("vals", ft(), ArgKind::kBufferRO);
    auto x = kb.ArgBuffer("x", ft(), ArgKind::kBufferRO);
    auto y = kb.ArgBuffer("y", ft(), ArgKind::kBufferWO);
    Val n = kb.ArgScalar("n", kir::ScalarType::kI32);
    detail::Chunk chunk = detail::ThreadChunk(kb, n);
    kb.For("row", chunk.start, chunk.end, 1, [&](Val row) {
      EmitRowBody(kb, row_ptr, col_idx, vals, x, y, row);
    });
    return kb.Build();
  }

  StatusOr<kir::Program> BuildGpuNaive() const {
    KernelBuilder kb("spmv_cl");
    auto row_ptr = kb.ArgBuffer("row_ptr", kir::ScalarType::kI32, ArgKind::kBufferRO);
    auto col_idx = kb.ArgBuffer("col_idx", kir::ScalarType::kI32, ArgKind::kBufferRO);
    auto vals = kb.ArgBuffer("vals", ft(), ArgKind::kBufferRO);
    auto x = kb.ArgBuffer("x", ft(), ArgKind::kBufferRO);
    auto y = kb.ArgBuffer("y", ft(), ArgKind::kBufferWO);
    EmitRowBody(kb, row_ptr, col_idx, vals, x, y, kb.GlobalId(0));
    return kb.Build();
  }

  // Opt: vload4 over the row's values and column indices; the x gathers
  // stay scalar (CSR gives no better option without the special data
  // structures the paper explicitly does not use), which is why the gain
  // is modest. Remainder entries are handled by a scalar tail loop.
  StatusOr<kir::Program> BuildGpuOpt() const {
    KernelBuilder kb("spmv_cl_opt");
    auto row_ptr = kb.ArgBuffer("row_ptr", kir::ScalarType::kI32,
                                ArgKind::kBufferRO, true, true);
    auto col_idx = kb.ArgBuffer("col_idx", kir::ScalarType::kI32,
                                ArgKind::kBufferRO, true, true);
    auto vals = kb.ArgBuffer("vals", ft(), ArgKind::kBufferRO, true, true);
    auto x = kb.ArgBuffer("x", ft(), ArgKind::kBufferRO, true, true);
    auto y = kb.ArgBuffer("y", ft(), ArgKind::kBufferWO, true, false);
    Val row = kb.GlobalId(0);
    Val begin = kb.Load(row_ptr, row);
    Val end = kb.Load(row_ptr, row, 1);
    Val span = kb.Binary(Opcode::kSub, end, begin);
    Val rem = kb.Binary(Opcode::kIRem, span, kb.ConstI(kir::I32(), 4));
    Val main_end = kb.Binary(Opcode::kSub, end, rem);

    Val acc4 = kb.Var(kir::FloatType(fp64_, 4), "acc4");
    kb.Assign(acc4, detail::FConst(kb, fp64_, 0.0, 4));
    kb.For("k", begin, main_end, 4, [&](Val k) {
      Val v4 = kb.Load(vals, k, 0, 4);
      Val c4 = kb.Load(col_idx, k, 0, 4);
      // Gather x at the four columns: lane extracts + scalar loads.
      Val g = kb.Var(kir::FloatType(fp64_, 4), "gather");
      kb.Assign(g, detail::FConst(kb, fp64_, 0.0, 4));
      for (int l = 0; l < 4; ++l) {
        Val xs = kb.Load(x, kb.Extract(c4, l));
        g = kb.Insert(g, l, xs);
      }
      kb.Assign(acc4, kb.Fma(v4, g, acc4));
    });
    Val acc = kb.Var(kir::FloatType(fp64_), "acc");
    kb.Assign(acc, kb.VSum(acc4));
    kb.For("k2", main_end, end, 1, [&](Val k) {
      Val col = kb.Load(col_idx, k);
      kb.Assign(acc, kb.Fma(kb.Load(vals, k), kb.Load(x, col), acc));
    });
    kb.Store(y, row, acc);
    return kb.Build();
  }

  /// BuildGpuOpt generalized over the main-loop vector width. vec == 1 is
  /// the scalar row body with the §III-C qualifiers; vec > 1 vectorizes
  /// values/columns with a scalar tail, exactly like the fixed opt kernel.
  StatusOr<kir::Program> BuildGpuTuned(int vec) const {
    KernelBuilder kb("spmv_cl_tuned");
    auto row_ptr = kb.ArgBuffer("row_ptr", kir::ScalarType::kI32,
                                ArgKind::kBufferRO, true, true);
    auto col_idx = kb.ArgBuffer("col_idx", kir::ScalarType::kI32,
                                ArgKind::kBufferRO, true, true);
    auto vals = kb.ArgBuffer("vals", ft(), ArgKind::kBufferRO, true, true);
    auto x = kb.ArgBuffer("x", ft(), ArgKind::kBufferRO, true, true);
    auto y = kb.ArgBuffer("y", ft(), ArgKind::kBufferWO, true, false);
    Val row = kb.GlobalId(0);
    if (vec <= 1) {
      EmitRowBody(kb, row_ptr, col_idx, vals, x, y, row);
      return kb.Build();
    }
    Val begin = kb.Load(row_ptr, row);
    Val end = kb.Load(row_ptr, row, 1);
    Val span = kb.Binary(Opcode::kSub, end, begin);
    Val rem = kb.Binary(Opcode::kIRem, span, kb.ConstI(kir::I32(), vec));
    Val main_end = kb.Binary(Opcode::kSub, end, rem);

    const auto lanes = static_cast<std::uint8_t>(vec);
    Val accv = kb.Var(kir::FloatType(fp64_, lanes), "accv");
    kb.Assign(accv, detail::FConst(kb, fp64_, 0.0, lanes));
    kb.For("k", begin, main_end, vec, [&](Val k) {
      Val vv = kb.Load(vals, k, 0, lanes);
      Val cv = kb.Load(col_idx, k, 0, lanes);
      Val g = kb.Var(kir::FloatType(fp64_, lanes), "gather");
      kb.Assign(g, detail::FConst(kb, fp64_, 0.0, lanes));
      for (int l = 0; l < vec; ++l) {
        Val xs = kb.Load(x, kb.Extract(cv, l));
        g = kb.Insert(g, l, xs);
      }
      kb.Assign(accv, kb.Fma(vv, g, accv));
    });
    Val acc = kb.Var(kir::FloatType(fp64_), "acc");
    kb.Assign(acc, kb.VSum(accv));
    kb.For("k2", main_end, end, 1, [&](Val k) {
      Val col = kb.Load(col_idx, k);
      kb.Assign(acc, kb.Fma(kb.Load(vals, k), kb.Load(x, col), acc));
    });
    kb.Store(y, row, acc);
    return kb.Build();
  }

  StatusOr<RunOutcome> RunCpuVariant(Devices& devices, int threads) {
    StatusOr<kir::Program> program = BuildCpuKernel();
    if (!program.ok()) return program.status();
    FpBuffer y(fp64_, rows_);
    kir::LaunchConfig config;
    config.global_size = {static_cast<std::uint64_t>(threads), 1, 1};
    StatusOr<RunOutcome> outcome = detail::RunCpu(
        devices, *program, config,
        {{row_ptr_.data(), row_ptr_.size() * 4},
         {col_idx_.data(), col_idx_.size() * 4},
         {vals_.data(), vals_.bytes()},
         {x_.data(), x_.bytes()},
         {y.data(), y.bytes()}},
        {kir::ScalarValue::I32V(static_cast<std::int32_t>(rows_))}, threads);
    if (!outcome.ok()) return outcome;
    detail::FinishValidation(&*outcome, detail::MaxRelError(y, ref_), tol());
    return outcome;
  }

  StatusOr<RunOutcome> RunGpuVariant(Devices& devices, bool optimized) {
    StatusOr<kir::Program> program =
        optimized ? BuildGpuOpt() : BuildGpuNaive();
    if (!program.ok()) return program.status();
    ocl::Context& ctx = *devices.gpu;

    auto row_ptr =
        detail::MakeGpuBuffer(ctx, row_ptr_.data(), row_ptr_.size() * 4);
    if (!row_ptr.ok()) return row_ptr.status();
    auto col_idx =
        detail::MakeGpuBuffer(ctx, col_idx_.data(), col_idx_.size() * 4);
    if (!col_idx.ok()) return col_idx.status();
    auto vals = detail::MakeGpuBuffer(ctx, vals_.data(), vals_.bytes());
    if (!vals.ok()) return vals.status();
    auto x = detail::MakeGpuBuffer(ctx, x_.data(), x_.bytes());
    if (!x.ok()) return x.status();
    auto y = detail::MakeGpuBuffer(ctx, nullptr, x_.bytes());
    if (!y.ok()) return y.status();

    const std::string kernel_name = program->name;
    std::vector<kir::Program> kernels;
    kernels.push_back(*std::move(program));
    std::shared_ptr<ocl::Program> prog = ctx.CreateProgram(std::move(kernels));
    MALI_RETURN_IF_ERROR(prog->Build());
    auto kernel = ctx.CreateKernel(prog, kernel_name);
    if (!kernel.ok()) return kernel.status();
    MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(0, *row_ptr));
    MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(1, *col_idx));
    MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(2, *vals));
    MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(3, *x));
    MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(4, *y));

    devices.gpu->device().FlushCaches();
    detail::GpuLaunch launch;
    launch.kernel = kernel->get();
    launch.global[0] = rows_;
    const std::uint64_t tuned_local[3] = {detail::TunedLocalSize(rows_, 64), 1, 1};
    launch.local = optimized ? tuned_local : nullptr;
    StatusOr<RunOutcome> outcome = detail::RunGpuLaunches(devices, {&launch, 1});
    if (!outcome.ok()) return outcome;

    FpBuffer result(fp64_, rows_);
    MALI_RETURN_IF_ERROR(
        detail::ReadGpuBuffer(ctx, **y, result.data(), result.bytes()));
    detail::FinishValidation(&*outcome, detail::MaxRelError(result, ref_), tol());
    return outcome;
  }

  std::uint32_t rows_;
  std::uint32_t avg_nnz_;
  std::vector<std::int32_t> row_ptr_;
  std::vector<std::int32_t> col_idx_;
  FpBuffer vals_, x_;
  std::vector<double> ref_;
};

}  // namespace

std::unique_ptr<Benchmark> MakeSpmv(const ProblemSizes& sizes) {
  return std::make_unique<SpmvBenchmark>(sizes);
}

}  // namespace malisim::hpc
