// Reduction (red): sum of a vector.
//
// Paper §IV-A: "allows to measure the capability of the compute accelerator
// to adapt from massively parallel computation stages to almost sequential
// execution". §V-A: the GPU versions use a two-stage reduction — a parallel
// stage producing per-work-item partials, then a near-sequential stage —
// and "the main difference between OpenCL and OpenCL Opt is due to the
// vectorization and the use of a tuned work-group size".
#include <cmath>
#include <vector>

#include "common/prng.h"
#include "hpc/detail.h"
#include "hpc/kernels.h"

namespace malisim::hpc {
namespace {

using detail::FpBuffer;
using kir::ArgKind;
using kir::KernelBuilder;
using kir::Opcode;
using kir::Val;

class ReductionBenchmark final : public Benchmark {
 public:
  explicit ReductionBenchmark(const ProblemSizes& sizes) : n_(sizes.red_n) {}

  std::string name() const override { return "red"; }
  std::string description() const override {
    return "two-stage sum reduction (parallel-to-sequential adaptation)";
  }

  Status Setup(bool fp64, std::uint64_t seed) override {
    fp64_ = fp64;
    seed_ = seed;
    a_ = FpBuffer(fp64, n_);
    Xoshiro256 rng(seed);
    ref_sum_ = 0.0;
    for (std::uint32_t i = 0; i < n_; ++i) {
      const double v = rng.NextDouble(0.0, 1.0);
      a_.Set(i, v);
      ref_sum_ += a_.Get(i);
    }
    return Status::Ok();
  }

  StatusOr<RunOutcome> Run(Variant variant, Devices& devices) override {
    switch (variant) {
      case Variant::kSerial:
        return RunCpuVariant(devices, 1);
      case Variant::kOpenMP:
        return RunCpuVariant(devices, 2);
      case Variant::kOpenCL:
        return RunGpuVariant(devices, false);
      case Variant::kOpenCLOpt:
        return RunGpuVariant(devices, true);
      case Variant::kHetero:
        break;  // resolved by RunVariant; raw dispatch is invalid
    }
    return InvalidArgumentError("bad variant");
  }

  // §III knobs: accumulator vector width (both stages), stage-1 work-item
  // count (the parallel/sequential balance point §IV-A describes), and the
  // stage-1 work-group size.
  sim::TuningSpace TunableSpace() const override {
    sim::TuningSpace space;
    space.axes = {{"vec", {1, 2, 4}},
                  {"items1", {512, 1024, 2048}},
                  {"wg", {64, 128, 256}}};
    space.valid = [n = n_](const sim::TuningConfig& c) {
      const std::int64_t vec = c.Get("vec", 1);
      const std::int64_t items1 = c.Get("items1", 1024);
      // Stage 1 strides chunks by vec and stage 2 folds items1 by vec, so
      // both must divide evenly.
      return n % items1 == 0 && (n / items1) % vec == 0 && items1 % vec == 0;
    };
    return space;
  }

  sim::TuningConfig PaperOptConfig() const override {
    sim::TuningConfig config;
    config.Set("vec", 4);
    config.Set("items1", 1024);
    config.Set("wg", 128);
    return config;
  }

  StatusOr<RunOutcome> RunTuned(const sim::TuningConfig& config,
                                Devices& devices) override {
    MALI_CHECK(devices.gpu != nullptr);
    const int vec = static_cast<int>(config.Get("vec", 4));
    const std::uint64_t items1 =
        static_cast<std::uint64_t>(config.Get("items1", 1024));
    const std::uint64_t wg = static_cast<std::uint64_t>(config.Get("wg", 128));

    StatusOr<kir::Program> s1 = BuildTunedStage1(vec);
    if (!s1.ok()) return s1.status();
    StatusOr<kir::Program> s2 = BuildTunedStage2(vec);
    if (!s2.ok()) return s2.status();

    ocl::Context& ctx = *devices.gpu;
    auto a = detail::MakeGpuBuffer(ctx, a_.data(), a_.bytes());
    if (!a.ok()) return a.status();
    auto partial =
        detail::MakeGpuBuffer(ctx, nullptr, items1 * a_.elem_bytes());
    if (!partial.ok()) return partial.status();
    auto out = detail::MakeGpuBuffer(ctx, nullptr, a_.elem_bytes());
    if (!out.ok()) return out.status();

    std::vector<kir::Program> kernels;
    const std::string n1 = s1->name, n2 = s2->name;
    kernels.push_back(*std::move(s1));
    kernels.push_back(*std::move(s2));
    std::shared_ptr<ocl::Program> prog = ctx.CreateProgram(std::move(kernels));
    MALI_RETURN_IF_ERROR(prog->Build());
    auto k1 = ctx.CreateKernel(prog, n1);
    if (!k1.ok()) return k1.status();
    auto k2 = ctx.CreateKernel(prog, n2);
    if (!k2.ok()) return k2.status();
    MALI_RETURN_IF_ERROR((*k1)->SetArgBuffer(0, *a));
    MALI_RETURN_IF_ERROR((*k1)->SetArgBuffer(1, *partial));
    MALI_RETURN_IF_ERROR((*k1)->SetArgI32(2, static_cast<std::int32_t>(n_)));
    MALI_RETURN_IF_ERROR((*k2)->SetArgBuffer(0, *partial));
    MALI_RETURN_IF_ERROR((*k2)->SetArgBuffer(1, *out));
    MALI_RETURN_IF_ERROR((*k2)->SetArgI32(2, static_cast<std::int32_t>(items1)));

    devices.gpu->device().FlushCaches();
    const std::uint64_t tuned_local[3] = {detail::TunedLocalSize(items1, wg), 1,
                                          1};
    detail::GpuLaunch launches[2];
    launches[0].kernel = k1->get();
    launches[0].global[0] = items1;
    launches[0].local = tuned_local;
    launches[1].kernel = k2->get();
    launches[1].global[0] = 1;
    launches[1].local = nullptr;
    StatusOr<RunOutcome> outcome = detail::RunGpuLaunches(devices, launches);
    if (!outcome.ok()) return outcome;

    FpBuffer result(fp64_, 1);
    MALI_RETURN_IF_ERROR(
        detail::ReadGpuBuffer(ctx, **out, result.data(), result.bytes()));
    detail::FinishValidation(
        &*outcome, std::abs(result.Get(0) - ref_sum_) / std::abs(ref_sum_),
        tol());
    return outcome;
  }

  StatusOr<std::string> TunedKernelText(
      const sim::TuningConfig& config) const override {
    const int vec = static_cast<int>(config.Get("vec", 4));
    StatusOr<kir::Program> s1 = BuildTunedStage1(vec);
    if (!s1.ok()) return s1.status();
    StatusOr<kir::Program> s2 = BuildTunedStage2(vec);
    if (!s2.ok()) return s2.status();
    return kir::ToText(*s1) + kir::ToText(*s2);
  }

 private:
  kir::ScalarType ft() const {
    return fp64_ ? kir::ScalarType::kF64 : kir::ScalarType::kF32;
  }
  double tol() const { return fp64_ ? 1e-9 : 5e-2; }

  // partial[gid] = sum of this thread's contiguous chunk.
  StatusOr<kir::Program> BuildCpuKernel() const {
    KernelBuilder kb("red_cpu");
    auto a = kb.ArgBuffer("a", ft(), ArgKind::kBufferRO);
    auto partial = kb.ArgBuffer("partial", ft(), ArgKind::kBufferWO);
    Val n = kb.ArgScalar("n", kir::ScalarType::kI32);
    detail::Chunk chunk = detail::ThreadChunk(kb, n);
    Val acc = kb.Var(kir::FloatType(fp64_), "acc");
    kb.Assign(acc, detail::FConst(kb, fp64_, 0.0));
    kb.For("i", chunk.start, chunk.end, 1,
           [&](Val i) { kb.Assign(acc, acc + kb.Load(a, i)); });
    kb.Store(partial, kb.GlobalId(0), acc);
    return kb.Build();
  }

  StatusOr<RunOutcome> RunCpuVariant(Devices& devices, int threads) {
    StatusOr<kir::Program> program = BuildCpuKernel();
    if (!program.ok()) return program.status();
    FpBuffer partial(fp64_, static_cast<std::size_t>(threads));
    kir::LaunchConfig config;
    config.global_size = {static_cast<std::uint64_t>(threads), 1, 1};
    StatusOr<RunOutcome> outcome = detail::RunCpu(
        devices, *program, config,
        {{a_.data(), a_.bytes()}, {partial.data(), partial.bytes()}},
        {kir::ScalarValue::I32V(static_cast<std::int32_t>(n_))}, threads);
    if (!outcome.ok()) return outcome;
    double sum = 0.0;
    for (int t = 0; t < threads; ++t) sum += partial.Get(t);
    detail::FinishValidation(
        &*outcome, std::abs(sum - ref_sum_) / std::abs(ref_sum_), tol());
    return outcome;
  }

  // Stage 1 (naive): kItems1 work-items, each sums a contiguous chunk with
  // scalar loads. Stage 2: one work-item folds the partials.
  StatusOr<kir::Program> BuildGpuStage1(bool optimized) const {
    KernelBuilder kb(optimized ? "red_stage1_opt" : "red_stage1");
    auto a = kb.ArgBuffer("a", ft(), ArgKind::kBufferRO, optimized, optimized);
    auto partial =
        kb.ArgBuffer("partial", ft(), ArgKind::kBufferWO, optimized, false);
    Val n = kb.ArgScalar("n", kir::ScalarType::kI32);
    detail::Chunk chunk = detail::ThreadChunk(kb, n);
    if (!optimized) {
      Val acc = kb.Var(kir::FloatType(fp64_), "acc");
      kb.Assign(acc, detail::FConst(kb, fp64_, 0.0));
      kb.For("i", chunk.start, chunk.end, 1,
             [&](Val i) { kb.Assign(acc, acc + kb.Load(a, i)); });
      kb.Store(partial, kb.GlobalId(0), acc);
    } else {
      // §III-B vectorization: float4 accumulator + vload4 (chunk sizes are
      // multiples of 4 by construction), folded once at the end.
      Val acc4 = kb.Var(kir::FloatType(fp64_, 4), "acc4");
      kb.Assign(acc4, detail::FConst(kb, fp64_, 0.0, 4));
      kb.For("i", chunk.start, chunk.end, 4,
             [&](Val i) { kb.Assign(acc4, acc4 + kb.Load(a, i, 0, 4)); });
      kb.Store(partial, kb.GlobalId(0), kb.VSum(acc4));
    }
    return kb.Build();
  }

  StatusOr<kir::Program> BuildGpuStage2(bool optimized) const {
    KernelBuilder kb(optimized ? "red_stage2_opt" : "red_stage2");
    auto partial =
        kb.ArgBuffer("partial", ft(), ArgKind::kBufferRO, optimized, optimized);
    auto out = kb.ArgBuffer("out", ft(), ArgKind::kBufferWO, optimized, false);
    Val m = kb.ArgScalar("m", kir::ScalarType::kI32);
    if (!optimized) {
      Val acc = kb.Var(kir::FloatType(fp64_), "acc");
      kb.Assign(acc, detail::FConst(kb, fp64_, 0.0));
      kb.For("i", 0, m, 1, [&](Val i) { kb.Assign(acc, acc + kb.Load(partial, i)); });
      kb.Store(out, kb.ConstI(kir::I32(), 0), acc);
    } else {
      Val acc4 = kb.Var(kir::FloatType(fp64_, 4), "acc4");
      kb.Assign(acc4, detail::FConst(kb, fp64_, 0.0, 4));
      kb.For("i", 0, m, 4,
             [&](Val i) { kb.Assign(acc4, acc4 + kb.Load(partial, i, 0, 4)); });
      kb.Store(out, kb.ConstI(kir::I32(), 0), kb.VSum(acc4));
    }
    return kb.Build();
  }

  /// The optimized stages generalized over accumulator width. vec == 1 is
  /// the scalar body with the §III-C qualifiers.
  StatusOr<kir::Program> BuildTunedStage1(int vec) const {
    KernelBuilder kb("red_stage1_tuned");
    auto a = kb.ArgBuffer("a", ft(), ArgKind::kBufferRO, true, true);
    auto partial = kb.ArgBuffer("partial", ft(), ArgKind::kBufferWO, true,
                                false);
    Val n = kb.ArgScalar("n", kir::ScalarType::kI32);
    detail::Chunk chunk = detail::ThreadChunk(kb, n);
    if (vec <= 1) {
      Val acc = kb.Var(kir::FloatType(fp64_), "acc");
      kb.Assign(acc, detail::FConst(kb, fp64_, 0.0));
      kb.For("i", chunk.start, chunk.end, 1,
             [&](Val i) { kb.Assign(acc, acc + kb.Load(a, i)); });
      kb.Store(partial, kb.GlobalId(0), acc);
    } else {
      const auto lanes = static_cast<std::uint8_t>(vec);
      Val accv = kb.Var(kir::FloatType(fp64_, lanes), "accv");
      kb.Assign(accv, detail::FConst(kb, fp64_, 0.0, lanes));
      kb.For("i", chunk.start, chunk.end, vec,
             [&](Val i) { kb.Assign(accv, accv + kb.Load(a, i, 0, lanes)); });
      kb.Store(partial, kb.GlobalId(0), kb.VSum(accv));
    }
    return kb.Build();
  }

  StatusOr<kir::Program> BuildTunedStage2(int vec) const {
    KernelBuilder kb("red_stage2_tuned");
    auto partial = kb.ArgBuffer("partial", ft(), ArgKind::kBufferRO, true,
                                true);
    auto out = kb.ArgBuffer("out", ft(), ArgKind::kBufferWO, true, false);
    Val m = kb.ArgScalar("m", kir::ScalarType::kI32);
    if (vec <= 1) {
      Val acc = kb.Var(kir::FloatType(fp64_), "acc");
      kb.Assign(acc, detail::FConst(kb, fp64_, 0.0));
      kb.For("i", 0, m, 1,
             [&](Val i) { kb.Assign(acc, acc + kb.Load(partial, i)); });
      kb.Store(out, kb.ConstI(kir::I32(), 0), acc);
    } else {
      const auto lanes = static_cast<std::uint8_t>(vec);
      Val accv = kb.Var(kir::FloatType(fp64_, lanes), "accv");
      kb.Assign(accv, detail::FConst(kb, fp64_, 0.0, lanes));
      kb.For("i", 0, m, vec,
             [&](Val i) { kb.Assign(accv, accv + kb.Load(partial, i, 0, lanes)); });
      kb.Store(out, kb.ConstI(kir::I32(), 0), kb.VSum(accv));
    }
    return kb.Build();
  }

  StatusOr<RunOutcome> RunGpuVariant(Devices& devices, bool optimized) {
    // Naive: many tiny work-groups (driver heuristic); Opt: tuned 128-item
    // groups, 1024 work-items total.
    const std::uint64_t items1 = optimized ? 1024 : 2048;
    StatusOr<kir::Program> s1 = BuildGpuStage1(optimized);
    if (!s1.ok()) return s1.status();
    StatusOr<kir::Program> s2 = BuildGpuStage2(optimized);
    if (!s2.ok()) return s2.status();

    ocl::Context& ctx = *devices.gpu;
    auto a = detail::MakeGpuBuffer(ctx, a_.data(), a_.bytes());
    if (!a.ok()) return a.status();
    auto partial =
        detail::MakeGpuBuffer(ctx, nullptr, items1 * a_.elem_bytes());
    if (!partial.ok()) return partial.status();
    auto out = detail::MakeGpuBuffer(ctx, nullptr, a_.elem_bytes());
    if (!out.ok()) return out.status();

    std::vector<kir::Program> kernels;
    const std::string n1 = s1->name, n2 = s2->name;
    kernels.push_back(*std::move(s1));
    kernels.push_back(*std::move(s2));
    std::shared_ptr<ocl::Program> prog = ctx.CreateProgram(std::move(kernels));
    MALI_RETURN_IF_ERROR(prog->Build());
    auto k1 = ctx.CreateKernel(prog, n1);
    if (!k1.ok()) return k1.status();
    auto k2 = ctx.CreateKernel(prog, n2);
    if (!k2.ok()) return k2.status();
    MALI_RETURN_IF_ERROR((*k1)->SetArgBuffer(0, *a));
    MALI_RETURN_IF_ERROR((*k1)->SetArgBuffer(1, *partial));
    MALI_RETURN_IF_ERROR((*k1)->SetArgI32(2, static_cast<std::int32_t>(n_)));
    MALI_RETURN_IF_ERROR((*k2)->SetArgBuffer(0, *partial));
    MALI_RETURN_IF_ERROR((*k2)->SetArgBuffer(1, *out));
    MALI_RETURN_IF_ERROR((*k2)->SetArgI32(2, static_cast<std::int32_t>(items1)));

    devices.gpu->device().FlushCaches();
    const std::uint64_t tuned_local[3] = {
        detail::TunedLocalSize(items1, 128), 1, 1};
    detail::GpuLaunch launches[2];
    launches[0].kernel = k1->get();
    launches[0].global[0] = items1;
    launches[0].local = optimized ? tuned_local : nullptr;
    launches[1].kernel = k2->get();
    launches[1].global[0] = 1;
    launches[1].local = nullptr;
    StatusOr<RunOutcome> outcome = detail::RunGpuLaunches(devices, launches);
    if (!outcome.ok()) return outcome;

    FpBuffer result(fp64_, 1);
    MALI_RETURN_IF_ERROR(
        detail::ReadGpuBuffer(ctx, **out, result.data(), result.bytes()));
    detail::FinishValidation(
        &*outcome, std::abs(result.Get(0) - ref_sum_) / std::abs(ref_sum_),
        tol());
    return outcome;
  }

  std::uint32_t n_;
  FpBuffer a_;
  double ref_sum_ = 0.0;
};

}  // namespace

std::unique_ptr<Benchmark> MakeReduction(const ProblemSizes& sizes) {
  return std::make_unique<ReductionBenchmark>(sizes);
}

}  // namespace malisim::hpc
