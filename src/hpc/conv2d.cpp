// 2D Convolution (2dcon): 5x5 filter over a dim x dim image.
//
// Paper §IV-A: "useful to evaluate the performance in presence of spatial
// locality and strided memory accesses"; §V-A: 2dcon "provides extensive
// parallelism at both vector and thread level. In these cases most of the
// optimizations can be successfully applied (loop unrolling, vectorization,
// group-size and vector-size tuning) leading to a considerable increase in
// performance" (24x single precision).
//
// The fully optimized kernel computes four adjacent outputs per work-item
// from wide row loads and vext-style sliding windows, holding all ten row
// vectors live — in double precision this exceeds the per-thread register
// budget (CL_OUT_OF_RESOURCES) and the benchmark falls back to a mid-grade
// row-dot kernel, reproducing the shrunken Opt-vs-naive gap of Fig. 2(b).
#include <cmath>
#include <vector>

#include "common/prng.h"
#include "hpc/detail.h"
#include "hpc/kernels.h"
#include "ocl/cl_error.h"

namespace malisim::hpc {
namespace {

using detail::FpBuffer;
using kir::ArgKind;
using kir::KernelBuilder;
using kir::Opcode;
using kir::Val;

constexpr int kTaps = 5;  // 5x5 filter
constexpr int kHalo = kTaps / 2;

class Conv2DBenchmark final : public Benchmark {
 public:
  explicit Conv2DBenchmark(const ProblemSizes& sizes) : dim_(sizes.conv_dim) {}

  std::string name() const override { return "2dcon"; }
  std::string description() const override {
    return "5x5 2D convolution (spatial locality, vectorizable)";
  }

  Status Setup(bool fp64, std::uint64_t seed) override {
    fp64_ = fp64;
    seed_ = seed;
    const std::size_t total = static_cast<std::size_t>(dim_) * dim_;
    in_ = FpBuffer(fp64, total);
    filt_ = FpBuffer(fp64, kTaps * kTaps);
    Xoshiro256 rng(seed);
    for (std::size_t i = 0; i < total; ++i) in_.Set(i, rng.NextDouble(-1, 1));
    double fsum = 0.0;
    for (int i = 0; i < kTaps * kTaps; ++i) {
      const double w = rng.NextDouble(0.0, 1.0);
      filt_.Set(i, w);
      fsum += w;
    }
    for (int i = 0; i < kTaps * kTaps; ++i) {
      filt_.Set(i, filt_.Get(i) / fsum);  // normalized blur
    }

    ref_.assign(total, 0.0);
    const std::size_t d = dim_;
    for (std::size_t y = kHalo; y + kHalo < d; ++y) {
      for (std::size_t x = kHalo; x + kHalo < d; ++x) {
        double acc = 0.0;
        for (int r = 0; r < kTaps; ++r) {
          for (int t = 0; t < kTaps; ++t) {
            acc += filt_.Get(r * kTaps + t) *
                   in_.Get((y + r - kHalo) * d + (x + t - kHalo));
          }
        }
        ref_[y * d + x] = acc;
      }
    }
    return Status::Ok();
  }

  StatusOr<RunOutcome> Run(Variant variant, Devices& devices) override {
    switch (variant) {
      case Variant::kSerial:
        return RunCpuVariant(devices, 1);
      case Variant::kOpenMP:
        return RunCpuVariant(devices, 2);
      case Variant::kOpenCL:
        return RunGpuVariant(devices, false);
      case Variant::kOpenCLOpt:
        return RunGpuVariant(devices, true);
      case Variant::kHetero:
        break;  // resolved by RunVariant; raw dispatch is invalid
    }
    return InvalidArgumentError("bad variant");
  }

  // §III knobs: kernel flavor (row-dot vs register-blocked quad-output)
  // and the 2D work-group shape. In FP64 the quad flavor exceeds the
  // register budget and those candidates are skipped, steering the search
  // to row-dot — the tuner-level analogue of the Fig. 2(b) fallback.
  sim::TuningSpace TunableSpace() const override {
    sim::TuningSpace space;
    space.axes = {{"quad", {0, 1}}, {"wgx", {8, 16, 32}}, {"wgy", {2, 8, 16}}};
    space.valid = [](const sim::TuningConfig& c) {
      return c.Get("wgx", 1) * c.Get("wgy", 1) <=
             static_cast<std::int64_t>(ocl::Context::kMaxWorkGroupSize);
    };
    return space;
  }

  sim::TuningConfig PaperOptConfig() const override {
    sim::TuningConfig config;
    config.Set("quad", 1);
    config.Set("wgx", 16);
    config.Set("wgy", 16);
    return config;
  }

  StatusOr<RunOutcome> RunTuned(const sim::TuningConfig& config,
                                Devices& devices) override {
    MALI_CHECK(devices.gpu != nullptr);
    const bool quad = config.Get("quad", 1) != 0;
    const std::uint64_t wgx = static_cast<std::uint64_t>(config.Get("wgx", 16));
    const std::uint64_t wgy = static_cast<std::uint64_t>(config.Get("wgy", 16));

    StatusOr<kir::Program> program = BuildGpuKernel(
        "2dcon_cl_tuned", quad ? Flavor::kQuadOut : Flavor::kRowDot, true);
    if (!program.ok()) return program.status();
    ocl::Context& ctx = *devices.gpu;
    auto in = detail::MakeGpuBuffer(ctx, in_.data(), in_.bytes());
    if (!in.ok()) return in.status();
    auto filt = detail::MakeGpuBuffer(ctx, filt_.data(), filt_.bytes());
    if (!filt.ok()) return filt.status();
    auto out = detail::MakeGpuBuffer(ctx, nullptr, in_.bytes());
    if (!out.ok()) return out.status();

    const std::string kernel_name = program->name;
    std::vector<kir::Program> kernels;
    kernels.push_back(*std::move(program));
    std::shared_ptr<ocl::Program> prog = ctx.CreateProgram(std::move(kernels));
    MALI_RETURN_IF_ERROR(prog->Build());
    auto kernel = ctx.CreateKernel(prog, kernel_name);
    if (!kernel.ok()) return kernel.status();
    MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(0, *in));
    MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(1, *filt));
    MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(2, *out));
    MALI_RETURN_IF_ERROR(
        (*kernel)->SetArgI32(3, static_cast<std::int32_t>(dim_)));

    devices.gpu->device().FlushCaches();
    detail::GpuLaunch launch;
    launch.kernel = kernel->get();
    launch.work_dim = 2;
    const std::uint64_t grid = quad ? dim_ / 4 : dim_;
    launch.global[0] = grid;
    launch.global[1] = grid;
    const std::uint64_t tuned_local[3] = {detail::TunedLocalSize(grid, wgx),
                                          detail::TunedLocalSize(grid, wgy), 1};
    launch.local = tuned_local;
    StatusOr<RunOutcome> outcome = detail::RunGpuLaunches(devices, {&launch, 1});
    if (!outcome.ok()) return outcome;

    const std::size_t total = static_cast<std::size_t>(dim_) * dim_;
    FpBuffer result(fp64_, total);
    MALI_RETURN_IF_ERROR(
        detail::ReadGpuBuffer(ctx, **out, result.data(), result.bytes()));
    detail::FinishValidation(&*outcome, detail::MaxRelError(result, ref_), tol());
    return outcome;
  }

  StatusOr<std::string> TunedKernelText(
      const sim::TuningConfig& config) const override {
    StatusOr<kir::Program> program = BuildGpuKernel(
        "2dcon_cl_tuned",
        config.Get("quad", 1) != 0 ? Flavor::kQuadOut : Flavor::kRowDot, true);
    if (!program.ok()) return program.status();
    return kir::ToText(*program);
  }

 private:
  kir::ScalarType ft() const {
    return fp64_ ? kir::ScalarType::kF64 : kir::ScalarType::kF32;
  }
  double tol() const { return fp64_ ? 1e-12 : 1e-4; }

  enum class Flavor {
    kScalar,   // naive & CPU: 25 scalar input + 25 scalar filter loads
    kRowDot,   // mid: vec4 row loads + vsum, one output per work-item
    kQuadOut,  // full opt: 4 outputs from vec8-equivalent loads + slides
  };

  /// Scalar 25-tap body for output (x, y).
  void EmitScalarPoint(KernelBuilder& kb, kir::BufferRef in, kir::BufferRef filt,
                       kir::BufferRef out, Val x, Val y, Val d) const {
    const kir::Type FT = kir::FloatType(fp64_);
    Val acc = kb.Var(FT, "acc");
    kb.Assign(acc, detail::FConst(kb, fp64_, 0.0));
    for (int r = 0; r < kTaps; ++r) {
      Val row = kb.Binary(Opcode::kAdd, y, kb.ConstI(kir::I32(), r - kHalo));
      Val row_base = kb.Binary(Opcode::kMul, row, d);
      Val idx0 = kb.Binary(Opcode::kAdd, row_base, x);
      for (int t = 0; t < kTaps; ++t) {
        Val v = kb.Load(in, idx0, t - kHalo);
        Val w = kb.Load(filt, kb.ConstI(kir::I32(), r * kTaps + t));
        kb.Assign(acc, kb.Fma(w, v, acc));
      }
    }
    kb.Store(out, kb.Binary(Opcode::kAdd, kb.Binary(Opcode::kMul, y, d), x),
             acc);
  }

  /// Row-dot body: per filter row one vload4 + one scalar load, vec4
  /// multiply-accumulate folded once at the end.
  void EmitRowDotPoint(KernelBuilder& kb, kir::BufferRef in,
                       kir::BufferRef filt, kir::BufferRef out, Val x, Val y,
                       Val d) const {
    const kir::Type FT = kir::FloatType(fp64_);
    const kir::Type FT4 = kir::FloatType(fp64_, 4);
    Val acc4 = kb.Var(FT4, "acc4");
    Val accs = kb.Var(FT, "accs");
    kb.Assign(acc4, detail::FConst(kb, fp64_, 0.0, 4));
    kb.Assign(accs, detail::FConst(kb, fp64_, 0.0));
    for (int r = 0; r < kTaps; ++r) {
      Val row = kb.Binary(Opcode::kAdd, y, kb.ConstI(kir::I32(), r - kHalo));
      Val idx0 = kb.Binary(Opcode::kAdd, kb.Binary(Opcode::kMul, row, d), x);
      Val v4 = kb.Load(in, idx0, -kHalo, 4);          // taps 0..3
      Val vs = kb.Load(in, idx0, kHalo);              // tap 4
      Val w4 = kb.Load(filt, kb.ConstI(kir::I32(), r * kTaps), 0, 4);
      Val ws = kb.Load(filt, kb.ConstI(kir::I32(), r * kTaps + 4));
      kb.Assign(acc4, kb.Fma(w4, v4, acc4));
      kb.Assign(accs, kb.Fma(ws, vs, accs));
    }
    Val result = kb.VSum(acc4) + accs;
    kb.Store(out, kb.Binary(Opcode::kAdd, kb.Binary(Opcode::kMul, y, d), x),
             result);
  }

  /// Register-blocked body: a 4x4 output tile (columns x4..x4+3, rows
  /// y4..y4+3) from two vload4 per input row and vext-style slides. The
  /// kBlockRows input rows y4-2..y4+5 are each loaded once and their five
  /// sliding windows are shared by every output row that uses them —
  /// 8 vector loads and 40 slides feed 16 outputs. The filter is splat
  /// once per tap per tile. This keeps many vector registers live, which
  /// is exactly what exhausts the register file in FP64 (paper §V-A).
  static constexpr int kBlockRows = 4;
  void EmitQuadBlock(KernelBuilder& kb, kir::BufferRef in, kir::BufferRef filt,
                     kir::BufferRef out, Val x4, Val y4, Val d) const {
    const kir::Type FT4 = kir::FloatType(fp64_, 4);
    Val fzero4 = detail::FConst(kb, fp64_, 0.0, 4);
    // Filter taps loaded once per tile (scalar registers; splat at use —
    // Midgard's scalar-operand broadcast).
    std::vector<Val> wtap(kTaps * kTaps);
    for (int i = 0; i < kTaps * kTaps; ++i) {
      wtap[i] = kb.Load(filt, kb.ConstI(kir::I32(), i));
    }
    std::vector<Val> acc(kBlockRows);
    for (int o = 0; o < kBlockRows; ++o) {
      acc[o] = kb.Var(FT4, "acc" + std::to_string(o));
      kb.Assign(acc[o], fzero4);
    }
    // Stream input rows y4-2 .. y4+kBlockRows+1; each row contributes tap
    // r = row - (output row) + kHalo to every output row in range.
    for (int ir = -kHalo; ir < kBlockRows + kHalo; ++ir) {
      Val row = kb.Binary(Opcode::kAdd, y4, kb.ConstI(kir::I32(), ir));
      Val idx0 = kb.Binary(Opcode::kAdd, kb.Binary(Opcode::kMul, row, d), x4);
      Val lo = kb.Load(in, idx0, -kHalo, 4);
      Val hi = kb.Load(in, idx0, -kHalo + 4, 4);
      for (int t = 0; t < kTaps; ++t) {
        Val window = t == 0 ? lo : kb.Slide(lo, hi, t);
        for (int o = 0; o < kBlockRows; ++o) {
          const int r = ir - o + kHalo;  // filter row seen by output row o
          if (r < 0 || r >= kTaps) continue;
          Val w = kb.Splat(wtap[r * kTaps + t], 4);
          kb.Assign(acc[o], kb.Fma(w, window, acc[o]));
        }
      }
    }
    for (int o = 0; o < kBlockRows; ++o) {
      Val row = kb.Binary(Opcode::kAdd, y4, kb.ConstI(kir::I32(), o));
      Val out_idx = kb.Binary(Opcode::kAdd, kb.Binary(Opcode::kMul, row, d), x4);
      kb.Store(out, out_idx, acc[o]);
    }
  }

  StatusOr<kir::Program> BuildCpuKernel() const {
    KernelBuilder kb("2dcon_cpu");
    auto in = kb.ArgBuffer("in", ft(), ArgKind::kBufferRO);
    auto filt = kb.ArgBuffer("filt", ft(), ArgKind::kBufferRO);
    auto out = kb.ArgBuffer("out", ft(), ArgKind::kBufferWO);
    Val d = kb.ArgScalar("d", kir::ScalarType::kI32);
    Val halo = kb.ConstI(kir::I32(), kHalo);
    Val interior = kb.Binary(Opcode::kSub, d, kb.ConstI(kir::I32(), 2 * kHalo));
    detail::Chunk chunk = detail::ThreadChunk(kb, interior);
    Val y_start = kb.Binary(Opcode::kAdd, chunk.start, halo);
    Val y_end = kb.Binary(Opcode::kAdd, chunk.end, halo);
    Val x_end = kb.Binary(Opcode::kSub, d, halo);
    kb.For("y", y_start, y_end, 1, [&](Val y) {
      kb.For("x", halo, x_end, 1,
             [&](Val x) { EmitScalarPoint(kb, in, filt, out, x, y, d); });
    });
    return kb.Build();
  }

  StatusOr<kir::Program> BuildGpuKernel(const std::string& kernel_name,
                                        Flavor flavor, bool qualified) const {
    KernelBuilder kb(kernel_name);
    auto in = kb.ArgBuffer("in", ft(), ArgKind::kBufferRO, qualified, qualified);
    auto filt = kb.ArgBuffer("filt", ft(), ArgKind::kBufferRO, qualified,
                             qualified);
    auto out = kb.ArgBuffer("out", ft(), ArgKind::kBufferWO, qualified, false);
    Val d = kb.ArgScalar("d", kir::ScalarType::kI32);
    Val halo = kb.ConstI(kir::I32(), kHalo);
    Val x_hi = kb.Binary(Opcode::kSub, d, halo);
    Val y = kb.GlobalId(1);
    Val y_ok = kb.CmpGe(y, halo) & kb.CmpLt(y, x_hi);
    if (flavor == Flavor::kQuadOut) {
      // dim0/dim1 index 4x4 output tiles: x4 = 4*gid0, y4 = 4*gid1.
      Val x4 = kb.Binary(Opcode::kMul, kb.GlobalId(0), kb.ConstI(kir::I32(), 4));
      Val y4 = kb.Binary(Opcode::kMul, kb.GlobalId(1), kb.ConstI(kir::I32(), 4));
      // Full tiles need the span x4-2..x4+5 and rows y4-2..y4+5 in range.
      Val quad_hi = kb.Binary(Opcode::kSub, d,
                              kb.ConstI(kir::I32(), kHalo + 4 + 1));
      Val inside = kb.CmpGe(x4, halo) & kb.CmpLe(x4, quad_hi) &
                   kb.CmpGe(y4, halo) & kb.CmpLe(y4, quad_hi);
      kb.If(inside, [&] { EmitQuadBlock(kb, in, filt, out, x4, y4, d); },
            [&] {
              // Edge tiles fall back to row-dot outputs with bounds checks
              // (kept light so boundary work-items do not unbalance their
              // group — the Job Manager waits for the heaviest item).
              for (int ky = 0; ky < 4; ++ky) {
                Val yy = kb.Binary(Opcode::kAdd, y4, kb.ConstI(kir::I32(), ky));
                Val yy_ok = kb.CmpGe(yy, halo) & kb.CmpLt(yy, x_hi);
                for (int kx = 0; kx < 4; ++kx) {
                  Val x = kb.Binary(Opcode::kAdd, x4, kb.ConstI(kir::I32(), kx));
                  Val ok = kb.CmpGe(x, halo) & kb.CmpLt(x, x_hi) & yy_ok;
                  kb.If(ok,
                        [&] { EmitRowDotPoint(kb, in, filt, out, x, yy, d); });
                }
              }
            });
    } else {
      Val x = kb.GlobalId(0);
      Val inside = kb.CmpGe(x, halo) & kb.CmpLt(x, x_hi) & y_ok;
      kb.If(inside, [&] {
        if (flavor == Flavor::kScalar) {
          EmitScalarPoint(kb, in, filt, out, x, y, d);
        } else {
          EmitRowDotPoint(kb, in, filt, out, x, y, d);
        }
      });
    }
    return kb.Build();
  }

  StatusOr<RunOutcome> RunCpuVariant(Devices& devices, int threads) {
    StatusOr<kir::Program> program = BuildCpuKernel();
    if (!program.ok()) return program.status();
    const std::size_t total = static_cast<std::size_t>(dim_) * dim_;
    FpBuffer out(fp64_, total);
    kir::LaunchConfig config;
    config.global_size = {static_cast<std::uint64_t>(threads), 1, 1};
    StatusOr<RunOutcome> outcome = detail::RunCpu(
        devices, *program, config,
        {{in_.data(), in_.bytes()},
         {filt_.data(), filt_.bytes()},
         {out.data(), out.bytes()}},
        {kir::ScalarValue::I32V(static_cast<std::int32_t>(dim_))}, threads);
    if (!outcome.ok()) return outcome;
    detail::FinishValidation(&*outcome, detail::MaxRelError(out, ref_), tol());
    return outcome;
  }

  StatusOr<RunOutcome> RunGpuVariant(Devices& devices, bool optimized) {
    ocl::Context& ctx = *devices.gpu;
    auto in = detail::MakeGpuBuffer(ctx, in_.data(), in_.bytes());
    if (!in.ok()) return in.status();
    auto filt = detail::MakeGpuBuffer(ctx, filt_.data(), filt_.bytes());
    if (!filt.ok()) return filt.status();
    auto out = detail::MakeGpuBuffer(ctx, nullptr, in_.bytes());
    if (!out.ok()) return out.status();

    // Kernel rungs of the degradation ladder: the quad-output kernel's
    // register appetite trips CL_OUT_OF_RESOURCES in DP and falls back to
    // the row-dot kernel (paper §V-A); injected compiler/queue faults walk
    // the same rungs.
    std::vector<detail::KernelRung> rungs;
    if (optimized) {
      rungs.push_back({"quad-output kernel", [&] {
                         return TryGpu(devices, "2dcon_cl_opt",
                                       Flavor::kQuadOut, true, *in, *filt,
                                       *out);
                       }});
      rungs.push_back({"row-dot kernel", [&] {
                         return TryGpu(devices, "2dcon_cl_opt_mild",
                                       Flavor::kRowDot, true, *in, *filt,
                                       *out);
                       }});
    } else {
      rungs.push_back({"naive scalar kernel", [&] {
                         return TryGpu(devices, "2dcon_cl", Flavor::kScalar,
                                       false, *in, *filt, *out);
                       }});
    }
    StatusOr<RunOutcome> outcome = detail::RunKernelLadder(devices, rungs);
    if (!outcome.ok()) return outcome;

    const std::size_t total = static_cast<std::size_t>(dim_) * dim_;
    FpBuffer result(fp64_, total);
    MALI_RETURN_IF_ERROR(
        detail::ReadGpuBuffer(ctx, **out, result.data(), result.bytes()));
    detail::FinishValidation(&*outcome, detail::MaxRelError(result, ref_), tol());
    return outcome;
  }

  StatusOr<RunOutcome> TryGpu(Devices& devices, const std::string& kernel_name,
                              Flavor flavor, bool tuned,
                              const std::shared_ptr<ocl::Buffer>& in,
                              const std::shared_ptr<ocl::Buffer>& filt,
                              const std::shared_ptr<ocl::Buffer>& out) {
    StatusOr<kir::Program> program = BuildGpuKernel(kernel_name, flavor, tuned);
    if (!program.ok()) return program.status();
    ocl::Context& ctx = *devices.gpu;
    std::vector<kir::Program> kernels;
    kernels.push_back(*std::move(program));
    std::shared_ptr<ocl::Program> prog = ctx.CreateProgram(std::move(kernels));
    MALI_RETURN_IF_ERROR(prog->Build());
    auto kernel = ctx.CreateKernel(prog, kernel_name);
    if (!kernel.ok()) return kernel.status();
    MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(0, in));
    MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(1, filt));
    MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(2, out));
    MALI_RETURN_IF_ERROR(
        (*kernel)->SetArgI32(3, static_cast<std::int32_t>(dim_)));

    devices.gpu->device().FlushCaches();
    detail::GpuLaunch launch;
    launch.kernel = kernel->get();
    launch.work_dim = 2;
    const std::uint64_t tuned_local[3] = {detail::TunedLocalSize(dim_, 32),
                                          detail::TunedLocalSize(dim_, 8), 1};
    const std::uint64_t tuned_local_quad[3] = {
        detail::TunedLocalSize(dim_ / 4, 16),
        detail::TunedLocalSize(dim_ / 4, 16), 1};
    if (flavor == Flavor::kQuadOut) {
      launch.global[0] = dim_ / 4;
      launch.global[1] = dim_ / 4;
      launch.local = tuned_local_quad;
    } else {
      launch.global[0] = dim_;
      launch.global[1] = dim_;
      launch.local = tuned ? tuned_local : nullptr;
    }
    return detail::RunGpuLaunches(devices, {&launch, 1});
  }

  std::uint32_t dim_;
  FpBuffer in_, filt_;
  std::vector<double> ref_;
};

}  // namespace

std::unique_ptr<Benchmark> MakeConv2D(const ProblemSizes& sizes) {
  return std::make_unique<Conv2DBenchmark>(sizes);
}

}  // namespace malisim::hpc
