// Histogram (hist): bucket counts of a real-valued vector.
//
// Paper §IV-A: "uses local privatization that requires a reduction stage
// which can become a bottleneck on highly parallel architectures"; §V-A:
// the GPU version "makes use of atomic operations supported at hardware
// level".
//
// Versions:
//  * Serial/OpenMP — per-thread private bins (no atomics), merged by the
//    host outside the measured region.
//  * OpenCL        — one element per work-item, global atomic_add straight
//    into the shared bins: heavy same-line contention in the L2 atomic unit.
//  * OpenCL Opt    — work-group-private __local bins filled with local
//    atomics behind a barrier, then one global atomic flush per bin per
//    group (the privatization + reduction structure of §IV-A), plus tuned
//    work-group size.
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/prng.h"
#include "hpc/detail.h"
#include "hpc/kernels.h"

namespace malisim::hpc {
namespace {

using detail::FpBuffer;
using kir::ArgKind;
using kir::KernelBuilder;
using kir::Opcode;
using kir::Val;

class HistBenchmark final : public Benchmark {
 public:
  explicit HistBenchmark(const ProblemSizes& sizes)
      : n_(sizes.hist_n), bins_(sizes.hist_bins) {}

  std::string name() const override { return "hist"; }
  std::string description() const override {
    return "histogram with hardware atomics and local privatization";
  }

  Status Setup(bool fp64, std::uint64_t seed) override {
    if (bins_ == 0 || bins_ > 256) {
      return InvalidArgumentError(
          "hist: bin count must be in 1..256 (the optimized kernel "
          "privatizes one bin per work-item of a 256-item group)");
    }
    fp64_ = fp64;
    seed_ = seed;
    data_ = FpBuffer(fp64, n_);
    ref_.assign(bins_, 0);
    Xoshiro256 rng(seed);
    for (std::uint32_t i = 0; i < n_; ++i) {
      // Mild skew (squared uniform) so some bins are hot, as in real data.
      const double u = rng.NextDouble();
      data_.Set(i, u * u);
    }
    // Reference bucketing replicates the kernels' arithmetic per precision.
    for (std::uint32_t i = 0; i < n_; ++i) {
      ref_[BucketOf(data_.Get(i))]++;
    }
    return Status::Ok();
  }

  StatusOr<RunOutcome> Run(Variant variant, Devices& devices) override {
    switch (variant) {
      case Variant::kSerial:
        return RunCpuVariant(devices, 1);
      case Variant::kOpenMP:
        return RunCpuVariant(devices, 2);
      case Variant::kOpenCL:
        return RunGpuNaive(devices);
      case Variant::kOpenCLOpt:
        return RunGpuOpt(devices);
      case Variant::kHetero:
        break;  // resolved by RunVariant; raw dispatch is invalid
    }
    return InvalidArgumentError("bad variant");
  }

  // §III knobs: work-group size and group count. The tuned kernel strides
  // the zero/flush stages over the bins (unlike the fixed opt kernel's
  // one-bin-per-item form) so work-groups smaller than the bin count stay
  // legal; at wg == bins == 256 the loops collapse to the fixed kernel's
  // single iteration.
  sim::TuningSpace TunableSpace() const override {
    sim::TuningSpace space;
    space.axes = {{"wg", {64, 128, 256}}, {"groups", {4, 8, 16}}};
    return space;
  }

  sim::TuningConfig PaperOptConfig() const override {
    sim::TuningConfig config;
    config.Set("wg", 256);
    config.Set("groups", 8);
    return config;
  }

  StatusOr<RunOutcome> RunTuned(const sim::TuningConfig& config,
                                Devices& devices) override {
    MALI_CHECK(devices.gpu != nullptr);
    const int wg = static_cast<int>(config.Get("wg", 256));
    const std::uint64_t groups =
        static_cast<std::uint64_t>(config.Get("groups", 8));

    StatusOr<kir::Program> program = BuildGpuTuned(wg);
    if (!program.ok()) return program.status();
    ocl::Context& ctx = *devices.gpu;
    auto data = detail::MakeGpuBuffer(ctx, data_.data(), data_.bytes());
    if (!data.ok()) return data.status();
    auto bins =
        detail::MakeGpuBuffer(ctx, nullptr, bins_ * sizeof(std::int32_t));
    if (!bins.ok()) return bins.status();

    const std::string kernel_name = program->name;
    std::vector<kir::Program> kernels;
    kernels.push_back(*std::move(program));
    std::shared_ptr<ocl::Program> prog = ctx.CreateProgram(std::move(kernels));
    MALI_RETURN_IF_ERROR(prog->Build());
    auto kernel = ctx.CreateKernel(prog, kernel_name);
    if (!kernel.ok()) return kernel.status();
    MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(0, *data));
    MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(1, *bins));
    MALI_RETURN_IF_ERROR((*kernel)->SetArgI32(2, static_cast<std::int32_t>(n_)));
    MALI_RETURN_IF_ERROR(
        (*kernel)->SetArgI32(3, static_cast<std::int32_t>(bins_)));

    detail::GpuLaunch launch;
    launch.kernel = kernel->get();
    launch.global[0] = groups * static_cast<std::uint64_t>(wg);
    const std::uint64_t tuned_local[3] = {static_cast<std::uint64_t>(wg), 1, 1};
    launch.local = tuned_local;

    devices.gpu->device().FlushCaches();
    StatusOr<RunOutcome> outcome = detail::RunGpuLaunches(devices, {&launch, 1});
    if (!outcome.ok()) return outcome;

    std::vector<std::int32_t> result(bins_, 0);
    MALI_RETURN_IF_ERROR(detail::ReadGpuBuffer(
        ctx, **bins, result.data(), result.size() * sizeof(std::int32_t)));
    detail::FinishValidation(&*outcome, BinError(result), 0.0);
    return outcome;
  }

  StatusOr<std::string> TunedKernelText(
      const sim::TuningConfig& config) const override {
    StatusOr<kir::Program> program =
        BuildGpuTuned(static_cast<int>(config.Get("wg", 256)));
    if (!program.ok()) return program.status();
    return kir::ToText(*program);
  }

 private:
  kir::ScalarType ft() const {
    return fp64_ ? kir::ScalarType::kF64 : kir::ScalarType::kF32;
  }

  std::int32_t BucketOf(double v) const {
    // Matches the kernel: bucket = min((i32)(v * bins), bins - 1).
    std::int32_t b;
    if (fp64_) {
      b = static_cast<std::int32_t>(v * static_cast<double>(bins_));
    } else {
      b = static_cast<std::int32_t>(static_cast<float>(v) *
                                    static_cast<float>(bins_));
    }
    return std::min(b, static_cast<std::int32_t>(bins_) - 1);
  }

  /// Emits: bucket = min(convert_i32(v * bins), bins-1).
  Val EmitBucket(KernelBuilder& kb, Val v, Val bins_f, Val bins_minus_1) const {
    Val scaled = v * bins_f;
    Val b = kb.Convert(scaled, kir::ScalarType::kI32);
    return kb.Min(b, bins_minus_1);
  }

  StatusOr<kir::Program> BuildCpuKernel() const {
    KernelBuilder kb("hist_cpu");
    auto data = kb.ArgBuffer("data", ft(), ArgKind::kBufferRO);
    auto priv = kb.ArgBuffer("priv", kir::ScalarType::kI32, ArgKind::kBufferRW);
    Val n = kb.ArgScalar("n", kir::ScalarType::kI32);
    Val nbins = kb.ArgScalar("nbins", kir::ScalarType::kI32);
    detail::Chunk chunk = detail::ThreadChunk(kb, n);
    Val base = kb.Binary(Opcode::kMul, kb.GlobalId(0), nbins);
    Val bins_f = kb.Convert(nbins, ft());
    Val bins_m1 = kb.Binary(Opcode::kSub, nbins, kb.ConstI(kir::I32(), 1));
    Val one = kb.ConstI(kir::I32(), 1);
    kb.For("i", chunk.start, chunk.end, 1, [&](Val i) {
      Val bucket = EmitBucket(kb, kb.Load(data, i), bins_f, bins_m1);
      Val idx = kb.Binary(Opcode::kAdd, base, bucket);
      kb.Store(priv, idx, kb.Load(priv, idx) + one);
    });
    return kb.Build();
  }

  StatusOr<RunOutcome> RunCpuVariant(Devices& devices, int threads) {
    StatusOr<kir::Program> program = BuildCpuKernel();
    if (!program.ok()) return program.status();
    std::vector<std::int32_t> priv(
        static_cast<std::size_t>(threads) * bins_, 0);
    kir::LaunchConfig config;
    config.global_size = {static_cast<std::uint64_t>(threads), 1, 1};
    StatusOr<RunOutcome> outcome = detail::RunCpu(
        devices, *program, config,
        {{data_.data(), data_.bytes()},
         {priv.data(), priv.size() * sizeof(std::int32_t)}},
        {kir::ScalarValue::I32V(static_cast<std::int32_t>(n_)),
         kir::ScalarValue::I32V(static_cast<std::int32_t>(bins_))},
        threads);
    if (!outcome.ok()) return outcome;
    // Host-side merge of the per-thread bins (outside the measured region).
    std::vector<std::int32_t> merged(bins_, 0);
    for (int t = 0; t < threads; ++t) {
      for (std::uint32_t b = 0; b < bins_; ++b) {
        merged[b] += priv[static_cast<std::size_t>(t) * bins_ + b];
      }
    }
    detail::FinishValidation(&*outcome, BinError(merged), 0.0);
    return outcome;
  }

  double BinError(const std::vector<std::int32_t>& got) const {
    double err = 0.0;
    for (std::uint32_t b = 0; b < bins_; ++b) {
      err = std::max(err, static_cast<double>(std::abs(got[b] - ref_[b])));
    }
    return err;
  }

  StatusOr<kir::Program> BuildGpuNaive() const {
    KernelBuilder kb("hist_cl");
    auto data = kb.ArgBuffer("data", ft(), ArgKind::kBufferRO);
    auto bins = kb.ArgBuffer("bins", kir::ScalarType::kI32, ArgKind::kBufferRW);
    Val nbins = kb.ArgScalar("nbins", kir::ScalarType::kI32);
    Val bins_f = kb.Convert(nbins, ft());
    Val bins_m1 = kb.Binary(Opcode::kSub, nbins, kb.ConstI(kir::I32(), 1));
    Val gid = kb.GlobalId(0);
    Val bucket = EmitBucket(kb, kb.Load(data, gid), bins_f, bins_m1);
    kb.AtomicAdd(bins, bucket, kb.ConstI(kir::I32(), 1));
    return kb.Build();
  }

  StatusOr<kir::Program> BuildGpuOpt() const {
    KernelBuilder kb("hist_cl_opt");
    auto data = kb.ArgBuffer("data", ft(), ArgKind::kBufferRO, true, true);
    auto bins = kb.ArgBuffer("bins", kir::ScalarType::kI32, ArgKind::kBufferRW,
                             true, false);
    Val n = kb.ArgScalar("n", kir::ScalarType::kI32);
    Val nbins = kb.ArgScalar("nbins", kir::ScalarType::kI32);
    auto local_bins = kb.LocalArray("local_bins", kir::ScalarType::kI32, 256);

    Val lid = kb.LocalId(0);
    Val zero = kb.ConstI(kir::I32(), 0);
    Val one = kb.ConstI(kir::I32(), 1);
    // Work-group size equals the bin count: each work-item owns one bin of
    // the privatized histogram for zeroing and for the final flush.
    kb.Store(local_bins, lid, zero);
    kb.Barrier();

    Val bins_f = kb.Convert(nbins, ft());
    Val bins_m1 = kb.Binary(Opcode::kSub, nbins, one);
    detail::Chunk chunk = detail::ThreadChunk(kb, n);
    kb.For("i", chunk.start, chunk.end, 1, [&](Val i) {
      Val bucket = EmitBucket(kb, kb.Load(data, i), bins_f, bins_m1);
      kb.AtomicAdd(local_bins, bucket, one);
    });

    kb.Barrier();
    Val count = kb.Load(local_bins, lid);
    kb.If(kb.CmpNe(count, zero),
          [&] { kb.AtomicAdd(bins, lid, count); });
    return kb.Build();
  }

  /// BuildGpuOpt generalized over the work-group size: the privatized
  /// zero/flush stages stride over the bins in steps of `wg` instead of
  /// assuming one bin per work-item.
  StatusOr<kir::Program> BuildGpuTuned(int wg) const {
    KernelBuilder kb("hist_cl_tuned");
    auto data = kb.ArgBuffer("data", ft(), ArgKind::kBufferRO, true, true);
    auto bins = kb.ArgBuffer("bins", kir::ScalarType::kI32, ArgKind::kBufferRW,
                             true, false);
    Val n = kb.ArgScalar("n", kir::ScalarType::kI32);
    Val nbins = kb.ArgScalar("nbins", kir::ScalarType::kI32);
    auto local_bins = kb.LocalArray("local_bins", kir::ScalarType::kI32, 256);

    Val lid = kb.LocalId(0);
    Val zero = kb.ConstI(kir::I32(), 0);
    Val one = kb.ConstI(kir::I32(), 1);
    kb.For("z", lid, nbins, wg, [&](Val b) { kb.Store(local_bins, b, zero); });
    kb.Barrier();

    Val bins_f = kb.Convert(nbins, ft());
    Val bins_m1 = kb.Binary(Opcode::kSub, nbins, one);
    detail::Chunk chunk = detail::ThreadChunk(kb, n);
    kb.For("i", chunk.start, chunk.end, 1, [&](Val i) {
      Val bucket = EmitBucket(kb, kb.Load(data, i), bins_f, bins_m1);
      kb.AtomicAdd(local_bins, bucket, one);
    });

    kb.Barrier();
    kb.For("f", lid, nbins, wg, [&](Val b) {
      Val count = kb.Load(local_bins, b);
      kb.If(kb.CmpNe(count, zero), [&] { kb.AtomicAdd(bins, b, count); });
    });
    return kb.Build();
  }

  StatusOr<RunOutcome> RunGpuNaive(Devices& devices) {
    StatusOr<kir::Program> program = BuildGpuNaive();
    if (!program.ok()) return program.status();
    return RunGpuCommon(devices, *std::move(program), /*optimized=*/false);
  }

  StatusOr<RunOutcome> RunGpuOpt(Devices& devices) {
    StatusOr<kir::Program> program = BuildGpuOpt();
    if (!program.ok()) return program.status();
    return RunGpuCommon(devices, *std::move(program), /*optimized=*/true);
  }

  StatusOr<RunOutcome> RunGpuCommon(Devices& devices, kir::Program program,
                                    bool optimized) {
    ocl::Context& ctx = *devices.gpu;
    auto data = detail::MakeGpuBuffer(ctx, data_.data(), data_.bytes());
    if (!data.ok()) return data.status();
    auto bins = detail::MakeGpuBuffer(ctx, nullptr, bins_ * sizeof(std::int32_t));
    if (!bins.ok()) return bins.status();

    const std::string kernel_name = program.name;
    std::vector<kir::Program> kernels;
    kernels.push_back(std::move(program));
    std::shared_ptr<ocl::Program> prog = ctx.CreateProgram(std::move(kernels));
    MALI_RETURN_IF_ERROR(prog->Build());
    auto kernel = ctx.CreateKernel(prog, kernel_name);
    if (!kernel.ok()) return kernel.status();

    detail::GpuLaunch launch;
    launch.kernel = kernel->get();
    const std::uint64_t tuned_local[3] = {256, 1, 1};
    if (optimized) {
      MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(0, *data));
      MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(1, *bins));
      MALI_RETURN_IF_ERROR(
          (*kernel)->SetArgI32(2, static_cast<std::int32_t>(n_)));
      MALI_RETURN_IF_ERROR(
          (*kernel)->SetArgI32(3, static_cast<std::int32_t>(bins_)));
      // 8 groups of 256: each group privatizes into __local bins; the flush
      // stage issues only groups x bins global atomics.
      launch.global[0] = 8 * 256;
      launch.local = tuned_local;
    } else {
      MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(0, *data));
      MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(1, *bins));
      MALI_RETURN_IF_ERROR(
          (*kernel)->SetArgI32(2, static_cast<std::int32_t>(bins_)));
      launch.global[0] = n_;
      launch.local = nullptr;
    }

    devices.gpu->device().FlushCaches();
    StatusOr<RunOutcome> outcome = detail::RunGpuLaunches(devices, {&launch, 1});
    if (!outcome.ok()) return outcome;

    std::vector<std::int32_t> result(bins_, 0);
    MALI_RETURN_IF_ERROR(detail::ReadGpuBuffer(
        ctx, **bins, result.data(), result.size() * sizeof(std::int32_t)));
    detail::FinishValidation(&*outcome, BinError(result), 0.0);
    return outcome;
  }

  std::uint32_t n_;
  std::uint32_t bins_;
  FpBuffer data_;
  std::vector<std::int32_t> ref_;
};

}  // namespace

std::unique_ptr<Benchmark> MakeHist(const ProblemSizes& sizes) {
  return std::make_unique<HistBenchmark>(sizes);
}

}  // namespace malisim::hpc
