// Internal factory declarations for the nine benchmark implementations.
#pragma once

#include <memory>

#include "hpc/benchmark.h"
#include "hpc/problem_sizes.h"

namespace malisim::hpc {

std::unique_ptr<Benchmark> MakeSpmv(const ProblemSizes& sizes);
std::unique_ptr<Benchmark> MakeVecop(const ProblemSizes& sizes);
std::unique_ptr<Benchmark> MakeHist(const ProblemSizes& sizes);
std::unique_ptr<Benchmark> MakeStencil3D(const ProblemSizes& sizes);
std::unique_ptr<Benchmark> MakeReduction(const ProblemSizes& sizes);
std::unique_ptr<Benchmark> MakeAmcd(const ProblemSizes& sizes);
std::unique_ptr<Benchmark> MakeNbody(const ProblemSizes& sizes);
std::unique_ptr<Benchmark> MakeConv2D(const ProblemSizes& sizes);
std::unique_ptr<Benchmark> MakeDmmm(const ProblemSizes& sizes);

}  // namespace malisim::hpc
