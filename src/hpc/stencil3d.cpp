// 3D Stencil (3dstc): 7-point stencil over a dim^3 volume.
//
// Paper §IV-A: "useful to evaluate the performance in presence of memory
// accesses with regular strides"; §V-A: "3dstc does not take advantage of
// vector instructions and limits the optimizations to work-group size
// tuning and data reuse".
#include <cmath>
#include <vector>

#include "common/prng.h"
#include "hpc/detail.h"
#include "hpc/kernels.h"

namespace malisim::hpc {
namespace {

using detail::FpBuffer;
using kir::ArgKind;
using kir::KernelBuilder;
using kir::Opcode;
using kir::Val;

constexpr double kC0 = 0.4;   // centre weight
constexpr double kC1 = 0.1;   // each of the six neighbours

class Stencil3DBenchmark final : public Benchmark {
 public:
  explicit Stencil3DBenchmark(const ProblemSizes& sizes)
      : dim_(sizes.stencil_dim) {}

  std::string name() const override { return "3dstc"; }
  std::string description() const override {
    return "7-point 3D stencil (regular strided accesses)";
  }

  Status Setup(bool fp64, std::uint64_t seed) override {
    fp64_ = fp64;
    seed_ = seed;
    const std::size_t total = Volume();
    in_ = FpBuffer(fp64, total);
    Xoshiro256 rng(seed);
    for (std::size_t i = 0; i < total; ++i) in_.Set(i, rng.NextDouble(-1, 1));

    ref_.assign(total, 0.0);
    const std::size_t d = dim_;
    auto at = [&](std::size_t x, std::size_t y, std::size_t z) {
      return (z * d + y) * d + x;
    };
    for (std::size_t z = 1; z + 1 < d; ++z) {
      for (std::size_t y = 1; y + 1 < d; ++y) {
        for (std::size_t x = 1; x + 1 < d; ++x) {
          ref_[at(x, y, z)] =
              kC0 * in_.Get(at(x, y, z)) +
              kC1 * (in_.Get(at(x - 1, y, z)) + in_.Get(at(x + 1, y, z)) +
                     in_.Get(at(x, y - 1, z)) + in_.Get(at(x, y + 1, z)) +
                     in_.Get(at(x, y, z - 1)) + in_.Get(at(x, y, z + 1)));
        }
      }
    }
    return Status::Ok();
  }

  StatusOr<RunOutcome> Run(Variant variant, Devices& devices) override {
    switch (variant) {
      case Variant::kSerial:
        return RunCpuVariant(devices, 1);
      case Variant::kOpenMP:
        return RunCpuVariant(devices, 2);
      case Variant::kOpenCL:
        return RunGpuVariant(devices, false);
      case Variant::kOpenCLOpt:
        return RunGpuVariant(devices, true);
      case Variant::kHetero:
        break;  // resolved by RunVariant; raw dispatch is invalid
    }
    return InvalidArgumentError("bad variant");
  }

  // §V-A: "3dstc ... limits the optimizations to work-group size tuning and
  // data reuse" — the tunable surface is exactly the 3D work-group shape;
  // the kernel itself is the fixed optimized one.
  sim::TuningSpace TunableSpace() const override {
    sim::TuningSpace space;
    space.axes = {{"wgx", {16, 32, 64}}, {"wgy", {1, 2, 4}},
                  {"wgz", {1, 2, 4}}};
    space.valid = [](const sim::TuningConfig& c) {
      return c.Get("wgx", 1) * c.Get("wgy", 1) * c.Get("wgz", 1) <=
             static_cast<std::int64_t>(ocl::Context::kMaxWorkGroupSize);
    };
    return space;
  }

  sim::TuningConfig PaperOptConfig() const override {
    sim::TuningConfig config;
    config.Set("wgx", 64);
    config.Set("wgy", 2);
    config.Set("wgz", 2);
    return config;
  }

  StatusOr<RunOutcome> RunTuned(const sim::TuningConfig& config,
                                Devices& devices) override {
    MALI_CHECK(devices.gpu != nullptr);
    StatusOr<kir::Program> program = BuildGpuKernel(/*optimized=*/true);
    if (!program.ok()) return program.status();
    ocl::Context& ctx = *devices.gpu;
    auto in = detail::MakeGpuBuffer(ctx, in_.data(), in_.bytes());
    if (!in.ok()) return in.status();
    auto out = detail::MakeGpuBuffer(ctx, nullptr, in_.bytes());
    if (!out.ok()) return out.status();

    const std::string kernel_name = program->name;
    std::vector<kir::Program> kernels;
    kernels.push_back(*std::move(program));
    std::shared_ptr<ocl::Program> prog = ctx.CreateProgram(std::move(kernels));
    MALI_RETURN_IF_ERROR(prog->Build());
    auto kernel = ctx.CreateKernel(prog, kernel_name);
    if (!kernel.ok()) return kernel.status();
    MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(0, *in));
    MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(1, *out));
    MALI_RETURN_IF_ERROR(
        (*kernel)->SetArgI32(2, static_cast<std::int32_t>(dim_)));

    devices.gpu->device().FlushCaches();
    detail::GpuLaunch launch;
    launch.kernel = kernel->get();
    launch.work_dim = 3;
    launch.global[0] = dim_;
    launch.global[1] = dim_;
    launch.global[2] = dim_;
    const std::uint64_t tuned_local[3] = {
        detail::TunedLocalSize(
            dim_, static_cast<std::uint64_t>(config.Get("wgx", 64))),
        detail::TunedLocalSize(
            dim_, static_cast<std::uint64_t>(config.Get("wgy", 2))),
        detail::TunedLocalSize(
            dim_, static_cast<std::uint64_t>(config.Get("wgz", 2)))};
    launch.local = tuned_local;
    StatusOr<RunOutcome> outcome = detail::RunGpuLaunches(devices, {&launch, 1});
    if (!outcome.ok()) return outcome;

    FpBuffer result(fp64_, Volume());
    MALI_RETURN_IF_ERROR(
        detail::ReadGpuBuffer(ctx, **out, result.data(), result.bytes()));
    detail::FinishValidation(&*outcome, detail::MaxRelError(result, ref_), tol());
    return outcome;
  }

  StatusOr<std::string> TunedKernelText(
      const sim::TuningConfig& config) const override {
    (void)config;  // every point launches the same optimized kernel
    StatusOr<kir::Program> program = BuildGpuKernel(/*optimized=*/true);
    if (!program.ok()) return program.status();
    return kir::ToText(*program);
  }

 private:
  std::size_t Volume() const {
    return static_cast<std::size_t>(dim_) * dim_ * dim_;
  }
  kir::ScalarType ft() const {
    return fp64_ ? kir::ScalarType::kF64 : kir::ScalarType::kF32;
  }
  double tol() const { return fp64_ ? 1e-12 : 1e-5; }

  /// Emits the 7-point update for point (x, y, z); idx = (z*d + y)*d + x.
  void EmitPoint(KernelBuilder& kb, kir::BufferRef in, kir::BufferRef out,
                 Val x, Val y, Val z, Val d, Val d2, Val c0, Val c1) const {
    Val idx = kb.Binary(
        Opcode::kAdd,
        kb.Binary(Opcode::kAdd, kb.Binary(Opcode::kMul, z, d2),
                  kb.Binary(Opcode::kMul, y, d)),
        x);
    Val centre = kb.Load(in, idx);
    Val sum = kb.Load(in, idx, -1) + kb.Load(in, idx, +1);
    // d and d2 strides as immediate offsets are not possible (they are
    // runtime values), so neighbour indices are computed explicitly.
    Val up = kb.Binary(Opcode::kSub, idx, d);
    Val down = kb.Binary(Opcode::kAdd, idx, d);
    Val back = kb.Binary(Opcode::kSub, idx, d2);
    Val front = kb.Binary(Opcode::kAdd, idx, d2);
    sum = sum + kb.Load(in, up) + kb.Load(in, down);
    sum = sum + kb.Load(in, back) + kb.Load(in, front);
    kb.Store(out, idx, kb.Fma(c0, centre, c1 * sum));
  }

  StatusOr<kir::Program> BuildCpuKernel() const {
    KernelBuilder kb("3dstc_cpu");
    auto in = kb.ArgBuffer("in", ft(), ArgKind::kBufferRO);
    auto out = kb.ArgBuffer("out", ft(), ArgKind::kBufferWO);
    Val d = kb.ArgScalar("d", kir::ScalarType::kI32);
    Val one = kb.ConstI(kir::I32(), 1);
    Val d2 = kb.Binary(Opcode::kMul, d, d);
    Val dm1 = kb.Binary(Opcode::kSub, d, one);
    Val c0 = detail::FConst(kb, fp64_, kC0);
    Val c1 = detail::FConst(kb, fp64_, kC1);
    // Chunk interior z planes across threads.
    Val interior = kb.Binary(Opcode::kSub, d, kb.ConstI(kir::I32(), 2));
    detail::Chunk chunk = detail::ThreadChunk(kb, interior);
    Val z_start = kb.Binary(Opcode::kAdd, chunk.start, one);
    Val z_end = kb.Binary(Opcode::kAdd, chunk.end, one);
    kb.For("z", z_start, z_end, 1, [&](Val z) {
      kb.For("y", one, dm1, 1, [&](Val y) {
        kb.For("x", one, dm1, 1, [&](Val x) {
          EmitPoint(kb, in, out, x, y, z, d, d2, c0, c1);
        });
      });
    });
    return kb.Build();
  }

  StatusOr<kir::Program> BuildGpuKernel(bool optimized) const {
    KernelBuilder kb(optimized ? "3dstc_cl_opt" : "3dstc_cl");
    auto in = kb.ArgBuffer("in", ft(), ArgKind::kBufferRO, optimized, optimized);
    auto out = kb.ArgBuffer("out", ft(), ArgKind::kBufferWO, optimized, false);
    Val d = kb.ArgScalar("d", kir::ScalarType::kI32);
    Val one = kb.ConstI(kir::I32(), 1);
    Val d2 = kb.Binary(Opcode::kMul, d, d);
    Val dm1 = kb.Binary(Opcode::kSub, d, one);
    Val c0 = detail::FConst(kb, fp64_, kC0);
    Val c1 = detail::FConst(kb, fp64_, kC1);
    // Global size is the padded dim^3 (a "nice" multiple for the NDRange);
    // the kernel masks out the boundary — standard OpenCL stencil practice.
    Val x = kb.GlobalId(0);
    Val y = kb.GlobalId(1);
    Val z = kb.GlobalId(2);
    Val inside = kb.CmpGe(x, one) & kb.CmpLt(x, dm1) & kb.CmpGe(y, one) &
                 kb.CmpLt(y, dm1) & kb.CmpGe(z, one) & kb.CmpLt(z, dm1);
    kb.If(inside, [&] { EmitPoint(kb, in, out, x, y, z, d, d2, c0, c1); });
    return kb.Build();
  }

  StatusOr<RunOutcome> RunCpuVariant(Devices& devices, int threads) {
    StatusOr<kir::Program> program = BuildCpuKernel();
    if (!program.ok()) return program.status();
    FpBuffer out(fp64_, Volume());
    kir::LaunchConfig config;
    config.global_size = {static_cast<std::uint64_t>(threads), 1, 1};
    StatusOr<RunOutcome> outcome = detail::RunCpu(
        devices, *program, config,
        {{in_.data(), in_.bytes()}, {out.data(), out.bytes()}},
        {kir::ScalarValue::I32V(static_cast<std::int32_t>(dim_))}, threads);
    if (!outcome.ok()) return outcome;
    detail::FinishValidation(&*outcome, detail::MaxRelError(out, ref_), tol());
    return outcome;
  }

  StatusOr<RunOutcome> RunGpuVariant(Devices& devices, bool optimized) {
    StatusOr<kir::Program> program = BuildGpuKernel(optimized);
    if (!program.ok()) return program.status();
    ocl::Context& ctx = *devices.gpu;
    auto in = detail::MakeGpuBuffer(ctx, in_.data(), in_.bytes());
    if (!in.ok()) return in.status();
    auto out = detail::MakeGpuBuffer(ctx, nullptr, in_.bytes());
    if (!out.ok()) return out.status();

    const std::string kernel_name = program->name;
    std::vector<kir::Program> kernels;
    kernels.push_back(*std::move(program));
    std::shared_ptr<ocl::Program> prog = ctx.CreateProgram(std::move(kernels));
    MALI_RETURN_IF_ERROR(prog->Build());
    auto kernel = ctx.CreateKernel(prog, kernel_name);
    if (!kernel.ok()) return kernel.status();
    MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(0, *in));
    MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(1, *out));
    MALI_RETURN_IF_ERROR(
        (*kernel)->SetArgI32(2, static_cast<std::int32_t>(dim_)));

    devices.gpu->device().FlushCaches();
    detail::GpuLaunch launch;
    launch.kernel = kernel->get();
    launch.work_dim = 3;
    launch.global[0] = dim_;
    launch.global[1] = dim_;
    launch.global[2] = dim_;
    // Opt: a flat 64x2x2 block walks x fastest -> line reuse in L1 across
    // the y/z neighbours of the same block (§V-A "data reuse").
    const std::uint64_t tuned_local[3] = {
        detail::TunedLocalSize(dim_, 64), detail::TunedLocalSize(dim_, 2),
        detail::TunedLocalSize(dim_, 2)};
    launch.local = optimized ? tuned_local : nullptr;
    StatusOr<RunOutcome> outcome = detail::RunGpuLaunches(devices, {&launch, 1});
    if (!outcome.ok()) return outcome;

    FpBuffer result(fp64_, Volume());
    MALI_RETURN_IF_ERROR(
        detail::ReadGpuBuffer(ctx, **out, result.data(), result.bytes()));
    detail::FinishValidation(&*outcome, detail::MaxRelError(result, ref_), tol());
    return outcome;
  }

  std::uint32_t dim_;
  FpBuffer in_;
  std::vector<double> ref_;
};

}  // namespace

std::unique_ptr<Benchmark> MakeStencil3D(const ProblemSizes& sizes) {
  return std::make_unique<Stencil3DBenchmark>(sizes);
}

}  // namespace malisim::hpc
