// Dense Matrix-Matrix Multiplication (dmmm): C = A * B, square matrices.
//
// Paper §IV-A: "measures the ability of the compute accelerator to exploit
// data reuse and compute performance"; §V-A: with the full optimization
// stack (vectorization, unrolling, group-size tuning) it posts the paper's
// biggest gain (25.5x single precision, 30x double precision — notably the
// one heavily-optimized kernel whose FP64 version fits the register file).
#include <cmath>
#include <vector>

#include "common/prng.h"
#include "hpc/detail.h"
#include "hpc/kernels.h"

namespace malisim::hpc {
namespace {

using detail::FpBuffer;
using kir::ArgKind;
using kir::KernelBuilder;
using kir::Opcode;
using kir::Val;

class DmmmBenchmark final : public Benchmark {
 public:
  explicit DmmmBenchmark(const ProblemSizes& sizes) : n_(sizes.dmmm_n) {}

  std::string name() const override { return "dmmm"; }
  std::string description() const override {
    return "dense matrix-matrix multiplication (data reuse, compute)";
  }

  Status Setup(bool fp64, std::uint64_t seed) override {
    fp64_ = fp64;
    seed_ = seed;
    const std::size_t total = static_cast<std::size_t>(n_) * n_;
    a_ = FpBuffer(fp64, total);
    b_ = FpBuffer(fp64, total);
    Xoshiro256 rng(seed);
    for (std::size_t i = 0; i < total; ++i) {
      a_.Set(i, rng.NextDouble(-1, 1));
      b_.Set(i, rng.NextDouble(-1, 1));
    }
    ref_.assign(total, 0.0);
    for (std::uint32_t i = 0; i < n_; ++i) {
      for (std::uint32_t j = 0; j < n_; ++j) {
        double acc = 0.0;
        for (std::uint32_t k = 0; k < n_; ++k) {
          acc += a_.Get(static_cast<std::size_t>(i) * n_ + k) *
                 b_.Get(static_cast<std::size_t>(k) * n_ + j);
        }
        ref_[static_cast<std::size_t>(i) * n_ + j] = acc;
      }
    }
    return Status::Ok();
  }

  StatusOr<RunOutcome> Run(Variant variant, Devices& devices) override {
    switch (variant) {
      case Variant::kSerial:
        return RunCpuVariant(devices, 1);
      case Variant::kOpenMP:
        return RunCpuVariant(devices, 2);
      case Variant::kOpenCL:
        return RunGpuVariant(devices, false);
      case Variant::kOpenCLOpt:
        return RunGpuVariant(devices, true);
      case Variant::kHetero:
        break;  // resolved by RunVariant; raw dispatch is invalid
    }
    return InvalidArgumentError("bad variant");
  }

  // §III knobs: output vector width (B-row vload width = outputs per
  // work-item), k-loop unroll factor, and the square work-group tile edge.
  sim::TuningSpace TunableSpace() const override {
    sim::TuningSpace space;
    space.axes = {{"vec", {1, 2, 4}}, {"unroll", {1, 2, 4}}, {"tile", {8, 16}}};
    space.valid = [n = n_](const sim::TuningConfig& c) {
      return n % static_cast<std::uint32_t>(c.Get("vec", 1)) == 0;
    };
    return space;
  }

  sim::TuningConfig PaperOptConfig() const override {
    sim::TuningConfig config;
    config.Set("vec", 4);
    config.Set("unroll", 4);
    config.Set("tile", 16);
    return config;
  }

  StatusOr<RunOutcome> RunTuned(const sim::TuningConfig& config,
                                Devices& devices) override {
    MALI_CHECK(devices.gpu != nullptr);
    const int vec = static_cast<int>(config.Get("vec", 4));
    const int unroll = static_cast<int>(config.Get("unroll", 4));
    const std::uint64_t tile = static_cast<std::uint64_t>(config.Get("tile", 16));

    StatusOr<kir::Program> program = BuildGpuTuned(vec, unroll);
    if (!program.ok()) return program.status();
    ocl::Context& ctx = *devices.gpu;
    auto a = detail::MakeGpuBuffer(ctx, a_.data(), a_.bytes());
    if (!a.ok()) return a.status();
    auto b = detail::MakeGpuBuffer(ctx, b_.data(), b_.bytes());
    if (!b.ok()) return b.status();
    auto c = detail::MakeGpuBuffer(ctx, nullptr, a_.bytes());
    if (!c.ok()) return c.status();

    const std::string kernel_name = program->name;
    std::vector<kir::Program> kernels;
    kernels.push_back(*std::move(program));
    std::shared_ptr<ocl::Program> prog = ctx.CreateProgram(std::move(kernels));
    MALI_RETURN_IF_ERROR(prog->Build());
    auto kernel = ctx.CreateKernel(prog, kernel_name);
    if (!kernel.ok()) return kernel.status();
    MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(0, *a));
    MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(1, *b));
    MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(2, *c));
    MALI_RETURN_IF_ERROR(
        (*kernel)->SetArgI32(3, static_cast<std::int32_t>(n_)));

    devices.gpu->device().FlushCaches();
    detail::GpuLaunch launch;
    launch.kernel = kernel->get();
    launch.work_dim = 2;
    launch.global[0] = n_ / static_cast<std::uint64_t>(vec);
    launch.global[1] = n_;
    const std::uint64_t tuned_local[3] = {
        detail::TunedLocalSize(launch.global[0], tile),
        detail::TunedLocalSize(n_, tile), 1};
    launch.local = tuned_local;
    StatusOr<RunOutcome> outcome = detail::RunGpuLaunches(devices, {&launch, 1});
    if (!outcome.ok()) return outcome;

    const std::size_t total = static_cast<std::size_t>(n_) * n_;
    FpBuffer result(fp64_, total);
    MALI_RETURN_IF_ERROR(
        detail::ReadGpuBuffer(ctx, **c, result.data(), result.bytes()));
    detail::FinishValidation(&*outcome, detail::MaxRelError(result, ref_), tol());
    return outcome;
  }

  StatusOr<std::string> TunedKernelText(
      const sim::TuningConfig& config) const override {
    StatusOr<kir::Program> program =
        BuildGpuTuned(static_cast<int>(config.Get("vec", 4)),
                      static_cast<int>(config.Get("unroll", 4)));
    if (!program.ok()) return program.status();
    return kir::ToText(*program);
  }

 private:
  kir::ScalarType ft() const {
    return fp64_ ? kir::ScalarType::kF64 : kir::ScalarType::kF32;
  }
  double tol() const { return fp64_ ? 1e-10 : 2e-3; }

  /// Scalar inner product: C[i,j] = sum_k A[i,k] * B[k,j].
  void EmitScalarOutput(KernelBuilder& kb, kir::BufferRef a, kir::BufferRef b,
                        kir::BufferRef c, Val i, Val j, Val n) const {
    const kir::Type FT = kir::FloatType(fp64_);
    Val acc = kb.Var(FT, "acc");
    kb.Assign(acc, detail::FConst(kb, fp64_, 0.0));
    Val row_base = kb.Binary(Opcode::kMul, i, n);
    kb.For("k", kb.ConstI(kir::I32(), 0), n, 1, [&](Val k) {
      Val av = kb.Load(a, kb.Binary(Opcode::kAdd, row_base, k));
      Val bv = kb.Load(b, kb.Binary(Opcode::kAdd, kb.Binary(Opcode::kMul, k, n), j));
      kb.Assign(acc, kb.Fma(av, bv, acc));
    });
    kb.Store(c, kb.Binary(Opcode::kAdd, row_base, j), acc);
  }

  StatusOr<kir::Program> BuildCpuKernel() const {
    KernelBuilder kb("dmmm_cpu");
    auto a = kb.ArgBuffer("a", ft(), ArgKind::kBufferRO);
    auto b = kb.ArgBuffer("b", ft(), ArgKind::kBufferRO);
    auto c = kb.ArgBuffer("c", ft(), ArgKind::kBufferWO);
    Val n = kb.ArgScalar("n", kir::ScalarType::kI32);
    detail::Chunk chunk = detail::ThreadChunk(kb, n);  // rows of C
    kb.For("i", chunk.start, chunk.end, 1, [&](Val i) {
      kb.For("j", kb.ConstI(kir::I32(), 0), n, 1,
             [&](Val j) { EmitScalarOutput(kb, a, b, c, i, j, n); });
    });
    return kb.Build();
  }

  StatusOr<kir::Program> BuildGpuNaive() const {
    KernelBuilder kb("dmmm_cl");
    auto a = kb.ArgBuffer("a", ft(), ArgKind::kBufferRO);
    auto b = kb.ArgBuffer("b", ft(), ArgKind::kBufferRO);
    auto c = kb.ArgBuffer("c", ft(), ArgKind::kBufferWO);
    Val n = kb.ArgScalar("n", kir::ScalarType::kI32);
    EmitScalarOutput(kb, a, b, c, kb.GlobalId(1), kb.GlobalId(0), n);
    return kb.Build();
  }

  // Opt (§III-B: vectorization + unrolling + tuned work-group size): each
  // work-item computes C[i, 4j..4j+3] with a float4 accumulator; per k the
  // B row contributes a contiguous vload4 and A contributes one splat
  // scalar. The k loop is hand-unrolled by four.
  StatusOr<kir::Program> BuildGpuOpt() const {
    KernelBuilder kb("dmmm_cl_opt");
    auto a = kb.ArgBuffer("a", ft(), ArgKind::kBufferRO, true, true);
    auto b = kb.ArgBuffer("b", ft(), ArgKind::kBufferRO, true, true);
    auto c = kb.ArgBuffer("c", ft(), ArgKind::kBufferWO, true, false);
    Val n = kb.ArgScalar("n", kir::ScalarType::kI32);
    const kir::Type FT4 = kir::FloatType(fp64_, 4);
    Val i = kb.GlobalId(1);
    Val j4 = kb.Binary(Opcode::kMul, kb.GlobalId(0), kb.ConstI(kir::I32(), 4));
    Val row_base = kb.Binary(Opcode::kMul, i, n);
    Val acc4 = kb.Var(FT4, "acc4");
    kb.Assign(acc4, detail::FConst(kb, fp64_, 0.0, 4));
    kb.ForUnrolled("k", kb.ConstI(kir::I32(), 0), n, 1, 4, [&](Val k) {
      Val av = kb.Splat(kb.Load(a, kb.Binary(Opcode::kAdd, row_base, k)), 4);
      Val b4 = kb.Load(b, kb.Binary(Opcode::kAdd,
                                    kb.Binary(Opcode::kMul, k, n), j4),
                       0, 4);
      kb.Assign(acc4, kb.Fma(av, b4, acc4));
    });
    kb.Store(c, kb.Binary(Opcode::kAdd, row_base, j4), acc4);
    return kb.Build();
  }

  /// BuildGpuOpt generalized over output width and k unroll. vec == 1 is
  /// the scalar-accumulator form with the §III-C qualifiers.
  StatusOr<kir::Program> BuildGpuTuned(int vec, int unroll) const {
    KernelBuilder kb("dmmm_cl_tuned");
    auto a = kb.ArgBuffer("a", ft(), ArgKind::kBufferRO, true, true);
    auto b = kb.ArgBuffer("b", ft(), ArgKind::kBufferRO, true, true);
    auto c = kb.ArgBuffer("c", ft(), ArgKind::kBufferWO, true, false);
    Val n = kb.ArgScalar("n", kir::ScalarType::kI32);
    Val i = kb.GlobalId(1);
    Val row_base = kb.Binary(Opcode::kMul, i, n);
    Val zero = kb.ConstI(kir::I32(), 0);

    auto k_loop = [&](auto body) {
      if (unroll > 1) {
        kb.ForUnrolled("k", zero, n, 1, unroll, body);
      } else {
        kb.For("k", zero, n, 1, body);
      }
    };
    if (vec <= 1) {
      Val j = kb.GlobalId(0);
      Val acc = kb.Var(kir::FloatType(fp64_), "acc");
      kb.Assign(acc, detail::FConst(kb, fp64_, 0.0));
      k_loop([&](Val k) {
        Val av = kb.Load(a, kb.Binary(Opcode::kAdd, row_base, k));
        Val bv = kb.Load(
            b, kb.Binary(Opcode::kAdd, kb.Binary(Opcode::kMul, k, n), j));
        kb.Assign(acc, kb.Fma(av, bv, acc));
      });
      kb.Store(c, kb.Binary(Opcode::kAdd, row_base, j), acc);
    } else {
      const auto lanes = static_cast<std::uint8_t>(vec);
      Val jv = kb.Binary(Opcode::kMul, kb.GlobalId(0), kb.ConstI(kir::I32(), vec));
      Val accv = kb.Var(kir::FloatType(fp64_, lanes), "accv");
      kb.Assign(accv, detail::FConst(kb, fp64_, 0.0, lanes));
      k_loop([&](Val k) {
        Val av = kb.Splat(kb.Load(a, kb.Binary(Opcode::kAdd, row_base, k)),
                          lanes);
        Val bv = kb.Load(b, kb.Binary(Opcode::kAdd,
                                      kb.Binary(Opcode::kMul, k, n), jv),
                         0, lanes);
        kb.Assign(accv, kb.Fma(av, bv, accv));
      });
      kb.Store(c, kb.Binary(Opcode::kAdd, row_base, jv), accv);
    }
    return kb.Build();
  }

  StatusOr<RunOutcome> RunCpuVariant(Devices& devices, int threads) {
    StatusOr<kir::Program> program = BuildCpuKernel();
    if (!program.ok()) return program.status();
    const std::size_t total = static_cast<std::size_t>(n_) * n_;
    FpBuffer c(fp64_, total);
    kir::LaunchConfig config;
    config.global_size = {static_cast<std::uint64_t>(threads), 1, 1};
    StatusOr<RunOutcome> outcome = detail::RunCpu(
        devices, *program, config,
        {{a_.data(), a_.bytes()}, {b_.data(), b_.bytes()}, {c.data(), c.bytes()}},
        {kir::ScalarValue::I32V(static_cast<std::int32_t>(n_))}, threads);
    if (!outcome.ok()) return outcome;
    detail::FinishValidation(&*outcome, detail::MaxRelError(c, ref_), tol());
    return outcome;
  }

  StatusOr<RunOutcome> RunGpuVariant(Devices& devices, bool optimized) {
    StatusOr<kir::Program> program =
        optimized ? BuildGpuOpt() : BuildGpuNaive();
    if (!program.ok()) return program.status();
    ocl::Context& ctx = *devices.gpu;
    auto a = detail::MakeGpuBuffer(ctx, a_.data(), a_.bytes());
    if (!a.ok()) return a.status();
    auto b = detail::MakeGpuBuffer(ctx, b_.data(), b_.bytes());
    if (!b.ok()) return b.status();
    auto c = detail::MakeGpuBuffer(ctx, nullptr, a_.bytes());
    if (!c.ok()) return c.status();

    const std::string kernel_name = program->name;
    std::vector<kir::Program> kernels;
    kernels.push_back(*std::move(program));
    std::shared_ptr<ocl::Program> prog = ctx.CreateProgram(std::move(kernels));
    MALI_RETURN_IF_ERROR(prog->Build());
    auto kernel = ctx.CreateKernel(prog, kernel_name);
    if (!kernel.ok()) return kernel.status();
    MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(0, *a));
    MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(1, *b));
    MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(2, *c));
    MALI_RETURN_IF_ERROR(
        (*kernel)->SetArgI32(3, static_cast<std::int32_t>(n_)));

    devices.gpu->device().FlushCaches();
    detail::GpuLaunch launch;
    launch.kernel = kernel->get();
    launch.work_dim = 2;
    // Opt: 16x16 output blocks maximize B-row reuse within a group.
    const std::uint64_t tuned_local[3] = {detail::TunedLocalSize(n_ / 4, 16),
                                          detail::TunedLocalSize(n_, 16), 1};
    if (optimized) {
      launch.global[0] = n_ / 4;
      launch.global[1] = n_;
      launch.local = tuned_local;
    } else {
      launch.global[0] = n_;
      launch.global[1] = n_;
      launch.local = nullptr;
    }
    StatusOr<RunOutcome> outcome = detail::RunGpuLaunches(devices, {&launch, 1});
    if (!outcome.ok()) return outcome;

    const std::size_t total = static_cast<std::size_t>(n_) * n_;
    FpBuffer result(fp64_, total);
    MALI_RETURN_IF_ERROR(
        detail::ReadGpuBuffer(ctx, **c, result.data(), result.bytes()));
    detail::FinishValidation(&*outcome, detail::MaxRelError(result, ref_), tol());
    return outcome;
  }

  std::uint32_t n_;
  FpBuffer a_, b_;
  std::vector<double> ref_;
};

}  // namespace

std::unique_ptr<Benchmark> MakeDmmm(const ProblemSizes& sizes) {
  return std::make_unique<DmmmBenchmark>(sizes);
}

}  // namespace malisim::hpc
