// Dense Matrix-Matrix Multiplication (dmmm): C = A * B, square matrices.
//
// Paper §IV-A: "measures the ability of the compute accelerator to exploit
// data reuse and compute performance"; §V-A: with the full optimization
// stack (vectorization, unrolling, group-size tuning) it posts the paper's
// biggest gain (25.5x single precision, 30x double precision — notably the
// one heavily-optimized kernel whose FP64 version fits the register file).
#include <cmath>
#include <vector>

#include "common/prng.h"
#include "hpc/detail.h"
#include "hpc/kernels.h"

namespace malisim::hpc {
namespace {

using detail::FpBuffer;
using kir::ArgKind;
using kir::KernelBuilder;
using kir::Opcode;
using kir::Val;

class DmmmBenchmark final : public Benchmark {
 public:
  explicit DmmmBenchmark(const ProblemSizes& sizes) : n_(sizes.dmmm_n) {}

  std::string name() const override { return "dmmm"; }
  std::string description() const override {
    return "dense matrix-matrix multiplication (data reuse, compute)";
  }

  Status Setup(bool fp64, std::uint64_t seed) override {
    fp64_ = fp64;
    seed_ = seed;
    const std::size_t total = static_cast<std::size_t>(n_) * n_;
    a_ = FpBuffer(fp64, total);
    b_ = FpBuffer(fp64, total);
    Xoshiro256 rng(seed);
    for (std::size_t i = 0; i < total; ++i) {
      a_.Set(i, rng.NextDouble(-1, 1));
      b_.Set(i, rng.NextDouble(-1, 1));
    }
    ref_.assign(total, 0.0);
    for (std::uint32_t i = 0; i < n_; ++i) {
      for (std::uint32_t j = 0; j < n_; ++j) {
        double acc = 0.0;
        for (std::uint32_t k = 0; k < n_; ++k) {
          acc += a_.Get(static_cast<std::size_t>(i) * n_ + k) *
                 b_.Get(static_cast<std::size_t>(k) * n_ + j);
        }
        ref_[static_cast<std::size_t>(i) * n_ + j] = acc;
      }
    }
    return Status::Ok();
  }

  StatusOr<RunOutcome> Run(Variant variant, Devices& devices) override {
    switch (variant) {
      case Variant::kSerial:
        return RunCpuVariant(devices, 1);
      case Variant::kOpenMP:
        return RunCpuVariant(devices, 2);
      case Variant::kOpenCL:
        return RunGpuVariant(devices, false);
      case Variant::kOpenCLOpt:
        return RunGpuVariant(devices, true);
      case Variant::kHetero:
        break;  // resolved by RunVariant; raw dispatch is invalid
    }
    return InvalidArgumentError("bad variant");
  }

 private:
  kir::ScalarType ft() const {
    return fp64_ ? kir::ScalarType::kF64 : kir::ScalarType::kF32;
  }
  double tol() const { return fp64_ ? 1e-10 : 2e-3; }

  /// Scalar inner product: C[i,j] = sum_k A[i,k] * B[k,j].
  void EmitScalarOutput(KernelBuilder& kb, kir::BufferRef a, kir::BufferRef b,
                        kir::BufferRef c, Val i, Val j, Val n) const {
    const kir::Type FT = kir::FloatType(fp64_);
    Val acc = kb.Var(FT, "acc");
    kb.Assign(acc, detail::FConst(kb, fp64_, 0.0));
    Val row_base = kb.Binary(Opcode::kMul, i, n);
    kb.For("k", kb.ConstI(kir::I32(), 0), n, 1, [&](Val k) {
      Val av = kb.Load(a, kb.Binary(Opcode::kAdd, row_base, k));
      Val bv = kb.Load(b, kb.Binary(Opcode::kAdd, kb.Binary(Opcode::kMul, k, n), j));
      kb.Assign(acc, kb.Fma(av, bv, acc));
    });
    kb.Store(c, kb.Binary(Opcode::kAdd, row_base, j), acc);
  }

  StatusOr<kir::Program> BuildCpuKernel() const {
    KernelBuilder kb("dmmm_cpu");
    auto a = kb.ArgBuffer("a", ft(), ArgKind::kBufferRO);
    auto b = kb.ArgBuffer("b", ft(), ArgKind::kBufferRO);
    auto c = kb.ArgBuffer("c", ft(), ArgKind::kBufferWO);
    Val n = kb.ArgScalar("n", kir::ScalarType::kI32);
    detail::Chunk chunk = detail::ThreadChunk(kb, n);  // rows of C
    kb.For("i", chunk.start, chunk.end, 1, [&](Val i) {
      kb.For("j", kb.ConstI(kir::I32(), 0), n, 1,
             [&](Val j) { EmitScalarOutput(kb, a, b, c, i, j, n); });
    });
    return kb.Build();
  }

  StatusOr<kir::Program> BuildGpuNaive() const {
    KernelBuilder kb("dmmm_cl");
    auto a = kb.ArgBuffer("a", ft(), ArgKind::kBufferRO);
    auto b = kb.ArgBuffer("b", ft(), ArgKind::kBufferRO);
    auto c = kb.ArgBuffer("c", ft(), ArgKind::kBufferWO);
    Val n = kb.ArgScalar("n", kir::ScalarType::kI32);
    EmitScalarOutput(kb, a, b, c, kb.GlobalId(1), kb.GlobalId(0), n);
    return kb.Build();
  }

  // Opt (§III-B: vectorization + unrolling + tuned work-group size): each
  // work-item computes C[i, 4j..4j+3] with a float4 accumulator; per k the
  // B row contributes a contiguous vload4 and A contributes one splat
  // scalar. The k loop is hand-unrolled by four.
  StatusOr<kir::Program> BuildGpuOpt() const {
    KernelBuilder kb("dmmm_cl_opt");
    auto a = kb.ArgBuffer("a", ft(), ArgKind::kBufferRO, true, true);
    auto b = kb.ArgBuffer("b", ft(), ArgKind::kBufferRO, true, true);
    auto c = kb.ArgBuffer("c", ft(), ArgKind::kBufferWO, true, false);
    Val n = kb.ArgScalar("n", kir::ScalarType::kI32);
    const kir::Type FT4 = kir::FloatType(fp64_, 4);
    Val i = kb.GlobalId(1);
    Val j4 = kb.Binary(Opcode::kMul, kb.GlobalId(0), kb.ConstI(kir::I32(), 4));
    Val row_base = kb.Binary(Opcode::kMul, i, n);
    Val acc4 = kb.Var(FT4, "acc4");
    kb.Assign(acc4, detail::FConst(kb, fp64_, 0.0, 4));
    kb.ForUnrolled("k", kb.ConstI(kir::I32(), 0), n, 1, 4, [&](Val k) {
      Val av = kb.Splat(kb.Load(a, kb.Binary(Opcode::kAdd, row_base, k)), 4);
      Val b4 = kb.Load(b, kb.Binary(Opcode::kAdd,
                                    kb.Binary(Opcode::kMul, k, n), j4),
                       0, 4);
      kb.Assign(acc4, kb.Fma(av, b4, acc4));
    });
    kb.Store(c, kb.Binary(Opcode::kAdd, row_base, j4), acc4);
    return kb.Build();
  }

  StatusOr<RunOutcome> RunCpuVariant(Devices& devices, int threads) {
    StatusOr<kir::Program> program = BuildCpuKernel();
    if (!program.ok()) return program.status();
    const std::size_t total = static_cast<std::size_t>(n_) * n_;
    FpBuffer c(fp64_, total);
    kir::LaunchConfig config;
    config.global_size = {static_cast<std::uint64_t>(threads), 1, 1};
    StatusOr<RunOutcome> outcome = detail::RunCpu(
        devices, *program, config,
        {{a_.data(), a_.bytes()}, {b_.data(), b_.bytes()}, {c.data(), c.bytes()}},
        {kir::ScalarValue::I32V(static_cast<std::int32_t>(n_))}, threads);
    if (!outcome.ok()) return outcome;
    detail::FinishValidation(&*outcome, detail::MaxRelError(c, ref_), tol());
    return outcome;
  }

  StatusOr<RunOutcome> RunGpuVariant(Devices& devices, bool optimized) {
    StatusOr<kir::Program> program =
        optimized ? BuildGpuOpt() : BuildGpuNaive();
    if (!program.ok()) return program.status();
    ocl::Context& ctx = *devices.gpu;
    auto a = detail::MakeGpuBuffer(ctx, a_.data(), a_.bytes());
    if (!a.ok()) return a.status();
    auto b = detail::MakeGpuBuffer(ctx, b_.data(), b_.bytes());
    if (!b.ok()) return b.status();
    auto c = detail::MakeGpuBuffer(ctx, nullptr, a_.bytes());
    if (!c.ok()) return c.status();

    const std::string kernel_name = program->name;
    std::vector<kir::Program> kernels;
    kernels.push_back(*std::move(program));
    std::shared_ptr<ocl::Program> prog = ctx.CreateProgram(std::move(kernels));
    MALI_RETURN_IF_ERROR(prog->Build());
    auto kernel = ctx.CreateKernel(prog, kernel_name);
    if (!kernel.ok()) return kernel.status();
    MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(0, *a));
    MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(1, *b));
    MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(2, *c));
    MALI_RETURN_IF_ERROR(
        (*kernel)->SetArgI32(3, static_cast<std::int32_t>(n_)));

    devices.gpu->device().FlushCaches();
    detail::GpuLaunch launch;
    launch.kernel = kernel->get();
    launch.work_dim = 2;
    // Opt: 16x16 output blocks maximize B-row reuse within a group.
    const std::uint64_t tuned_local[3] = {detail::TunedLocalSize(n_ / 4, 16),
                                          detail::TunedLocalSize(n_, 16), 1};
    if (optimized) {
      launch.global[0] = n_ / 4;
      launch.global[1] = n_;
      launch.local = tuned_local;
    } else {
      launch.global[0] = n_;
      launch.global[1] = n_;
      launch.local = nullptr;
    }
    StatusOr<RunOutcome> outcome = detail::RunGpuLaunches(devices, {&launch, 1});
    if (!outcome.ok()) return outcome;

    const std::size_t total = static_cast<std::size_t>(n_) * n_;
    FpBuffer result(fp64_, total);
    MALI_RETURN_IF_ERROR(
        detail::ReadGpuBuffer(ctx, **c, result.data(), result.bytes()));
    detail::FinishValidation(&*outcome, detail::MaxRelError(result, ref_), tol());
    return outcome;
  }

  std::uint32_t n_;
  FpBuffer a_, b_;
  std::vector<double> ref_;
};

}  // namespace

std::unique_ptr<Benchmark> MakeDmmm(const ProblemSizes& sizes) {
  return std::make_unique<DmmmBenchmark>(sizes);
}

}  // namespace malisim::hpc
