#include "hpc/benchmark.h"

#include "fault/degrade.h"
#include "hpc/kernels.h"

namespace malisim::hpc {

std::string_view VariantName(Variant v) {
  switch (v) {
    case Variant::kSerial:
      return "Serial";
    case Variant::kOpenMP:
      return "OpenMP";
    case Variant::kOpenCL:
      return "OpenCL";
    case Variant::kOpenCLOpt:
      return "OpenCL Opt";
    case Variant::kHetero:
      return "Hetero";
  }
  return "<bad>";
}

std::span<const Variant> FallbackVariants(Variant v) {
  return fault::RungsBelow(std::span<const Variant>(kDegradationLadder), v);
}

StatusOr<RunOutcome> Benchmark::RunTuned(const sim::TuningConfig& config,
                                         Devices& devices) {
  (void)config;
  (void)devices;
  return UnimplementedError("benchmark '" + name() +
                            "' declares no tuning surface");
}

StatusOr<std::string> Benchmark::TunedKernelText(
    const sim::TuningConfig& config) const {
  (void)config;
  return UnimplementedError("benchmark '" + name() +
                            "' declares no tuning surface");
}

StatusOr<RunOutcome> Benchmark::RunVariant(Variant variant, Devices& devices) {
  if (variant != Variant::kHetero) return Run(variant, devices);
  if (devices.hetero == nullptr) {
    return FailedPreconditionError(
        "Hetero variant needs a hetero-backend context");
  }
  // The co-execution column runs the optimized OpenCL version; the hetero
  // context's backend splits each NDRange across the Mali and the A15s.
  Devices hetero_devices = devices;
  hetero_devices.gpu = devices.hetero;
  return Run(Variant::kOpenCLOpt, hetero_devices);
}

std::vector<std::string> RegisteredBenchmarks() {
  // Paper figure order (Fig. 2-4 X axes).
  return {"spmv", "vecop", "hist", "3dstc", "red",
          "amcd", "nbody", "2dcon", "dmmm"};
}

std::unique_ptr<Benchmark> CreateBenchmark(const std::string& name,
                                           const ProblemSizes& sizes) {
  if (name == "spmv") return MakeSpmv(sizes);
  if (name == "vecop") return MakeVecop(sizes);
  if (name == "hist") return MakeHist(sizes);
  if (name == "3dstc") return MakeStencil3D(sizes);
  if (name == "red") return MakeReduction(sizes);
  if (name == "amcd") return MakeAmcd(sizes);
  if (name == "nbody") return MakeNbody(sizes);
  if (name == "2dcon") return MakeConv2D(sizes);
  if (name == "dmmm") return MakeDmmm(sizes);
  return nullptr;
}

}  // namespace malisim::hpc
