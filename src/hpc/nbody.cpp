// N-Body (nbody): all-pairs gravitational update over one time step.
//
// Paper §IV-A/§V-A: bodies are kept in the natural Array-of-Structures
// layout ("the OpenCL version does not apply any change to the main data
// structure representation that would lead to an easier applicability of
// vector optimizations. For this reason, the OpenCL Opt version does not
// show significant improvements"). The naive GPU port is already fast —
// the inner loop is dominated by the reciprocal-square-root, which the
// Mali's special-function path evaluates far more cheaply (in relative
// cycle terms) than the A15's scalar VFP.
//
// The fully optimized kernel vector-gathers four interaction partners per
// iteration; in double precision that blows the per-thread register budget
// (CL_OUT_OF_RESOURCES at enqueue, as the paper reports) and the benchmark
// falls back to a mildly optimized scalar kernel, closing most of the
// Opt-vs-naive gap in Fig. 2(b).
#include <cmath>
#include <vector>

#include "common/prng.h"
#include "hpc/detail.h"
#include "hpc/kernels.h"
#include "ocl/cl_error.h"

namespace malisim::hpc {
namespace {

using detail::FpBuffer;
using kir::ArgKind;
using kir::KernelBuilder;
using kir::Opcode;
using kir::Val;

constexpr double kDt = 0.01;
constexpr double kEps = 0.05;  // softening

class NbodyBenchmark final : public Benchmark {
 public:
  explicit NbodyBenchmark(const ProblemSizes& sizes) : n_(sizes.nbody_n) {}

  std::string name() const override { return "nbody"; }
  std::string description() const override {
    return "all-pairs gravitational N-body step (AOS layout)";
  }

  Status Setup(bool fp64, std::uint64_t seed) override {
    fp64_ = fp64;
    seed_ = seed;
    // AOS: bodies[i*4 + {0,1,2,3}] = {x, y, z, mass};
    //      vel[i*4 + {0,1,2}] = {vx, vy, vz} (lane 3 padding).
    bodies_ = FpBuffer(fp64, static_cast<std::size_t>(n_) * 4);
    vel_ = FpBuffer(fp64, static_cast<std::size_t>(n_) * 4);
    Xoshiro256 rng(seed);
    for (std::uint32_t i = 0; i < n_; ++i) {
      bodies_.Set(i * 4 + 0, rng.NextDouble(-1, 1));
      bodies_.Set(i * 4 + 1, rng.NextDouble(-1, 1));
      bodies_.Set(i * 4 + 2, rng.NextDouble(-1, 1));
      bodies_.Set(i * 4 + 3, rng.NextDouble(0.1, 1.0));
      vel_.Set(i * 4 + 0, rng.NextDouble(-0.1, 0.1));
      vel_.Set(i * 4 + 1, rng.NextDouble(-0.1, 0.1));
      vel_.Set(i * 4 + 2, rng.NextDouble(-0.1, 0.1));
      vel_.Set(i * 4 + 3, 0.0);
    }

    // SOA mirror of the bodies for the tuned layout axis (separate x/y/z/m
    // streams; outputs stay AOS so validation is layout-independent).
    soa_x_ = FpBuffer(fp64, n_);
    soa_y_ = FpBuffer(fp64, n_);
    soa_z_ = FpBuffer(fp64, n_);
    soa_m_ = FpBuffer(fp64, n_);
    for (std::uint32_t i = 0; i < n_; ++i) {
      soa_x_.Set(i, bodies_.Get(i * 4 + 0));
      soa_y_.Set(i, bodies_.Get(i * 4 + 1));
      soa_z_.Set(i, bodies_.Get(i * 4 + 2));
      soa_m_.Set(i, bodies_.Get(i * 4 + 3));
    }

    // Double-precision reference (tolerances absorb ordering differences).
    ref_pos_.assign(static_cast<std::size_t>(n_) * 4, 0.0);
    ref_vel_.assign(static_cast<std::size_t>(n_) * 4, 0.0);
    for (std::uint32_t i = 0; i < n_; ++i) {
      const double xi = bodies_.Get(i * 4), yi = bodies_.Get(i * 4 + 1),
                   zi = bodies_.Get(i * 4 + 2);
      double ax = 0, ay = 0, az = 0;
      for (std::uint32_t j = 0; j < n_; ++j) {
        const double dx = bodies_.Get(j * 4) - xi;
        const double dy = bodies_.Get(j * 4 + 1) - yi;
        const double dz = bodies_.Get(j * 4 + 2) - zi;
        const double r2 = dx * dx + dy * dy + dz * dz + kEps;
        const double inv = 1.0 / std::sqrt(r2);
        const double w = bodies_.Get(j * 4 + 3) * inv * inv * inv;
        ax += w * dx;
        ay += w * dy;
        az += w * dz;
      }
      for (int a = 0; a < 3; ++a) {
        const double acc = a == 0 ? ax : (a == 1 ? ay : az);
        const double v = vel_.Get(i * 4 + a) + kDt * acc;
        ref_vel_[i * 4 + a] = v;
        ref_pos_[i * 4 + a] = bodies_.Get(i * 4 + a) + kDt * v;
      }
      ref_pos_[i * 4 + 3] = bodies_.Get(i * 4 + 3);
    }
    return Status::Ok();
  }

  StatusOr<RunOutcome> Run(Variant variant, Devices& devices) override {
    switch (variant) {
      case Variant::kSerial:
        return RunCpuVariant(devices, 1);
      case Variant::kOpenMP:
        return RunCpuVariant(devices, 2);
      case Variant::kOpenCL:
        return RunGpuVariant(devices, false);
      case Variant::kOpenCLOpt:
        return RunGpuVariant(devices, true);
      case Variant::kHetero:
        break;  // resolved by RunVariant; raw dispatch is invalid
    }
    return InvalidArgumentError("bad variant");
  }

  // §III knobs: kernel flavor (scalar rsqrt+unroll vs vector), body layout
  // (AOS as the paper keeps it, or the SOA transform the paper explicitly
  // does NOT apply — §V-A's "change to the main data structure
  // representation that would lead to an easier applicability of vector
  // optimizations"), and work-group size. The tuner is allowed to find that
  // SOA+vector beats the paper's AOS point; conformance only requires
  // matching-or-beating it.
  sim::TuningSpace TunableSpace() const override {
    sim::TuningSpace space;
    space.axes = {{"vecflavor", {0, 1}},
                  {"soa", {0, 1}},
                  {"wg", {32, 64, 128}}};
    space.valid = [n = n_](const sim::TuningConfig& c) {
      return c.Get("vecflavor", 0) == 0 || n % 4 == 0;
    };
    return space;
  }

  sim::TuningConfig PaperOptConfig() const override {
    sim::TuningConfig config;
    config.Set("vecflavor", 1);
    config.Set("soa", 0);
    config.Set("wg", 64);
    return config;
  }

  StatusOr<RunOutcome> RunTuned(const sim::TuningConfig& config,
                                Devices& devices) override {
    MALI_CHECK(devices.gpu != nullptr);
    const bool vector = config.Get("vecflavor", 1) != 0;
    const bool soa = config.Get("soa", 0) != 0;
    const std::uint64_t wg = static_cast<std::uint64_t>(config.Get("wg", 64));

    StatusOr<kir::Program> program = BuildGpuTunedKernel(vector, soa);
    if (!program.ok()) return program.status();
    ocl::Context& ctx = *devices.gpu;

    std::vector<std::shared_ptr<ocl::Buffer>> args;
    if (soa) {
      for (const FpBuffer* src : {&soa_x_, &soa_y_, &soa_z_, &soa_m_}) {
        auto buffer = detail::MakeGpuBuffer(ctx, src->data(), src->bytes());
        if (!buffer.ok()) return buffer.status();
        args.push_back(*std::move(buffer));
      }
    } else {
      auto bodies = detail::MakeGpuBuffer(ctx, bodies_.data(), bodies_.bytes());
      if (!bodies.ok()) return bodies.status();
      args.push_back(*std::move(bodies));
    }
    auto vel = detail::MakeGpuBuffer(ctx, vel_.data(), vel_.bytes());
    if (!vel.ok()) return vel.status();
    args.push_back(*std::move(vel));
    auto out_pos = detail::MakeGpuBuffer(ctx, nullptr, bodies_.bytes());
    if (!out_pos.ok()) return out_pos.status();
    args.push_back(*out_pos);
    auto out_vel = detail::MakeGpuBuffer(ctx, nullptr, vel_.bytes());
    if (!out_vel.ok()) return out_vel.status();
    args.push_back(*out_vel);

    const std::string kernel_name = program->name;
    std::vector<kir::Program> kernels;
    kernels.push_back(*std::move(program));
    std::shared_ptr<ocl::Program> prog = ctx.CreateProgram(std::move(kernels));
    MALI_RETURN_IF_ERROR(prog->Build());
    auto kernel = ctx.CreateKernel(prog, kernel_name);
    if (!kernel.ok()) return kernel.status();
    for (std::size_t a = 0; a < args.size(); ++a) {
      MALI_RETURN_IF_ERROR(
          (*kernel)->SetArgBuffer(static_cast<std::uint32_t>(a), args[a]));
    }
    MALI_RETURN_IF_ERROR((*kernel)->SetArgI32(
        static_cast<std::uint32_t>(args.size()),
        static_cast<std::int32_t>(n_)));

    devices.gpu->device().FlushCaches();
    detail::GpuLaunch launch;
    launch.kernel = kernel->get();
    launch.global[0] = n_;
    const std::uint64_t tuned_local[3] = {detail::TunedLocalSize(n_, wg), 1, 1};
    launch.local = tuned_local;
    StatusOr<RunOutcome> outcome = detail::RunGpuLaunches(devices, {&launch, 1});
    if (!outcome.ok()) return outcome;

    FpBuffer got_pos(fp64_, bodies_.size()), got_vel(fp64_, vel_.size());
    MALI_RETURN_IF_ERROR(
        detail::ReadGpuBuffer(ctx, **out_pos, got_pos.data(), got_pos.bytes()));
    MALI_RETURN_IF_ERROR(
        detail::ReadGpuBuffer(ctx, **out_vel, got_vel.data(), got_vel.bytes()));
    detail::FinishValidation(&*outcome, Error(got_pos, got_vel), tol());
    return outcome;
  }

  StatusOr<std::string> TunedKernelText(
      const sim::TuningConfig& config) const override {
    StatusOr<kir::Program> program = BuildGpuTunedKernel(
        config.Get("vecflavor", 1) != 0, config.Get("soa", 0) != 0);
    if (!program.ok()) return program.status();
    return kir::ToText(*program);
  }

 private:
  kir::ScalarType ft() const {
    return fp64_ ? kir::ScalarType::kF64 : kir::ScalarType::kF32;
  }
  double tol() const { return fp64_ ? 1e-9 : 2e-2; }

  enum class Flavor {
    kScalarDivSqrt,  // naive & CPU: inv = 1 / sqrt(r2)
    kScalarRsqrt,    // mild opt: native rsqrt + unrolled x2
    kVectorGather,   // full opt: 4 partners per iteration via vector gathers
  };

  /// Emits the per-body update for body index `i`.
  void EmitBody(KernelBuilder& kb, kir::BufferRef bodies, kir::BufferRef vel,
                kir::BufferRef out_pos, kir::BufferRef out_vel, Val i, Val n,
                Flavor flavor) const {
    const kir::Type FT = kir::FloatType(fp64_);
    const kir::Type FT4 = kir::FloatType(fp64_, 4);
    Val four = kb.ConstI(kir::I32(), 4);
    Val base_i = kb.Binary(Opcode::kMul, i, four);
    Val xi = kb.Load(bodies, base_i, 0);
    Val yi = kb.Load(bodies, base_i, 1);
    Val zi = kb.Load(bodies, base_i, 2);
    Val eps = detail::FConst(kb, fp64_, kEps);
    Val dt = detail::FConst(kb, fp64_, kDt);

    Val ax = kb.Var(FT, "ax"), ay = kb.Var(FT, "ay"), az = kb.Var(FT, "az");
    Val fzero = detail::FConst(kb, fp64_, 0.0);
    kb.Assign(ax, fzero);
    kb.Assign(ay, fzero);
    kb.Assign(az, fzero);

    if (flavor == Flavor::kVectorGather) {
      // Four partners per iteration. The AOS layout forces a transpose:
      // four vload4 of whole bodies plus lane extraction — many live vector
      // registers (this is what exhausts the register file in FP64).
      Val xi4 = kb.Splat(xi, 4), yi4 = kb.Splat(yi, 4), zi4 = kb.Splat(zi, 4);
      Val eps4 = kb.Splat(eps, 4);
      Val ax4 = kb.Var(FT4, "ax4"), ay4 = kb.Var(FT4, "ay4"),
          az4 = kb.Var(FT4, "az4");
      Val fzero4 = detail::FConst(kb, fp64_, 0.0, 4);
      kb.Assign(ax4, fzero4);
      kb.Assign(ay4, fzero4);
      kb.Assign(az4, fzero4);
      kb.For("j", kb.ConstI(kir::I32(), 0), n, 4, [&](Val j) {
        Val base_j = kb.Binary(Opcode::kMul, j, four);
        // Load 4 complete bodies (x,y,z,m each) and transpose via lanes.
        Val b0 = kb.Load(bodies, base_j, 0, 4);
        Val b1 = kb.Load(bodies, base_j, 4, 4);
        Val b2 = kb.Load(bodies, base_j, 8, 4);
        Val b3 = kb.Load(bodies, base_j, 12, 4);
        auto gather = [&](int lane) {
          Val g = fzero4;
          g = kb.Insert(g, 0, kb.Extract(b0, lane));
          g = kb.Insert(g, 1, kb.Extract(b1, lane));
          g = kb.Insert(g, 2, kb.Extract(b2, lane));
          g = kb.Insert(g, 3, kb.Extract(b3, lane));
          return g;
        };
        Val xj = gather(0), yj = gather(1), zj = gather(2), mj = gather(3);
        Val dx = xj - xi4, dy = yj - yi4, dz = zj - zi4;
        Val r2 = kb.Fma(dx, dx, kb.Fma(dy, dy, kb.Fma(dz, dz, eps4)));
        Val inv = kb.Rsqrt(r2);
        Val w = mj * inv * inv * inv;
        kb.Assign(ax4, kb.Fma(w, dx, ax4));
        kb.Assign(ay4, kb.Fma(w, dy, ay4));
        kb.Assign(az4, kb.Fma(w, dz, az4));
      });
      kb.Assign(ax, kb.VSum(ax4));
      kb.Assign(ay, kb.VSum(ay4));
      kb.Assign(az, kb.VSum(az4));
    } else {
      auto body = [&](Val j) {
        Val base_j = kb.Binary(Opcode::kMul, j, four);
        Val dx = kb.Load(bodies, base_j, 0) - xi;
        Val dy = kb.Load(bodies, base_j, 1) - yi;
        Val dz = kb.Load(bodies, base_j, 2) - zi;
        Val mj = kb.Load(bodies, base_j, 3);
        Val r2 = kb.Fma(dx, dx, kb.Fma(dy, dy, kb.Fma(dz, dz, eps)));
        Val inv = flavor == Flavor::kScalarRsqrt
                      ? kb.Rsqrt(r2)
                      : detail::FConst(kb, fp64_, 1.0) / kb.Sqrt(r2);
        Val w = mj * inv * inv * inv;
        kb.Assign(ax, kb.Fma(w, dx, ax));
        kb.Assign(ay, kb.Fma(w, dy, ay));
        kb.Assign(az, kb.Fma(w, dz, az));
      };
      if (flavor == Flavor::kScalarRsqrt) {
        kb.ForUnrolled("j", kb.ConstI(kir::I32(), 0), n, 1, 2, body);
      } else {
        kb.For("j", kb.ConstI(kir::I32(), 0), n, 1, body);
      }
    }

    // Semi-implicit Euler update.
    Val vx = kb.Fma(dt, ax, kb.Load(vel, base_i, 0));
    Val vy = kb.Fma(dt, ay, kb.Load(vel, base_i, 1));
    Val vz = kb.Fma(dt, az, kb.Load(vel, base_i, 2));
    kb.Store(out_vel, base_i, vx, 0);
    kb.Store(out_vel, base_i, vy, 1);
    kb.Store(out_vel, base_i, vz, 2);
    kb.Store(out_pos, base_i, kb.Fma(dt, vx, xi), 0);
    kb.Store(out_pos, base_i, kb.Fma(dt, vy, yi), 1);
    kb.Store(out_pos, base_i, kb.Fma(dt, vz, zi), 2);
    kb.Store(out_pos, base_i, kb.Load(bodies, base_i, 3), 3);
  }

  StatusOr<kir::Program> BuildKernel(const std::string& kernel_name,
                                     bool cpu_chunked, Flavor flavor,
                                     bool qualified) const {
    KernelBuilder kb(kernel_name);
    auto bodies = kb.ArgBuffer("bodies", ft(), ArgKind::kBufferRO, qualified,
                               qualified);
    auto vel = kb.ArgBuffer("vel", ft(), ArgKind::kBufferRO, qualified, qualified);
    auto out_pos = kb.ArgBuffer("out_pos", ft(), ArgKind::kBufferWO, qualified,
                                false);
    auto out_vel = kb.ArgBuffer("out_vel", ft(), ArgKind::kBufferWO, qualified,
                                false);
    Val n = kb.ArgScalar("n", kir::ScalarType::kI32);
    if (cpu_chunked) {
      detail::Chunk chunk = detail::ThreadChunk(kb, n);
      kb.For("i", chunk.start, chunk.end, 1, [&](Val i) {
        EmitBody(kb, bodies, vel, out_pos, out_vel, i, n, flavor);
      });
    } else {
      EmitBody(kb, bodies, vel, out_pos, out_vel, kb.GlobalId(0), n, flavor);
    }
    return kb.Build();
  }

  StatusOr<kir::Program> BuildGpuTunedKernel(bool vector, bool soa) const {
    if (!soa) {
      return BuildKernel("nbody_cl_tuned", false,
                         vector ? Flavor::kVectorGather : Flavor::kScalarRsqrt,
                         true);
    }
    // SOA layout: x/y/z/m as separate streams. The vector flavor needs no
    // transpose — partner coordinates vload4 directly, which is the "easier
    // applicability of vector optimizations" §V-A alludes to (and far fewer
    // live registers than the AOS gather).
    KernelBuilder kb("nbody_cl_tuned_soa");
    auto xs = kb.ArgBuffer("xs", ft(), ArgKind::kBufferRO, true, true);
    auto ys = kb.ArgBuffer("ys", ft(), ArgKind::kBufferRO, true, true);
    auto zs = kb.ArgBuffer("zs", ft(), ArgKind::kBufferRO, true, true);
    auto ms = kb.ArgBuffer("ms", ft(), ArgKind::kBufferRO, true, true);
    auto vel = kb.ArgBuffer("vel", ft(), ArgKind::kBufferRO, true, true);
    auto out_pos = kb.ArgBuffer("out_pos", ft(), ArgKind::kBufferWO, true,
                                false);
    auto out_vel = kb.ArgBuffer("out_vel", ft(), ArgKind::kBufferWO, true,
                                false);
    Val n = kb.ArgScalar("n", kir::ScalarType::kI32);

    const kir::Type FT = kir::FloatType(fp64_);
    const kir::Type FT4 = kir::FloatType(fp64_, 4);
    Val i = kb.GlobalId(0);
    Val base_i = kb.Binary(Opcode::kMul, i, kb.ConstI(kir::I32(), 4));
    Val xi = kb.Load(xs, i);
    Val yi = kb.Load(ys, i);
    Val zi = kb.Load(zs, i);
    Val eps = detail::FConst(kb, fp64_, kEps);
    Val dt = detail::FConst(kb, fp64_, kDt);
    Val fzero = detail::FConst(kb, fp64_, 0.0);
    Val ax = kb.Var(FT, "ax"), ay = kb.Var(FT, "ay"), az = kb.Var(FT, "az");
    kb.Assign(ax, fzero);
    kb.Assign(ay, fzero);
    kb.Assign(az, fzero);

    if (vector) {
      Val xi4 = kb.Splat(xi, 4), yi4 = kb.Splat(yi, 4), zi4 = kb.Splat(zi, 4);
      Val eps4 = kb.Splat(eps, 4);
      Val fzero4 = detail::FConst(kb, fp64_, 0.0, 4);
      Val ax4 = kb.Var(FT4, "ax4"), ay4 = kb.Var(FT4, "ay4"),
          az4 = kb.Var(FT4, "az4");
      kb.Assign(ax4, fzero4);
      kb.Assign(ay4, fzero4);
      kb.Assign(az4, fzero4);
      kb.For("j", kb.ConstI(kir::I32(), 0), n, 4, [&](Val j) {
        Val xj = kb.Load(xs, j, 0, 4);
        Val yj = kb.Load(ys, j, 0, 4);
        Val zj = kb.Load(zs, j, 0, 4);
        Val mj = kb.Load(ms, j, 0, 4);
        Val dx = xj - xi4, dy = yj - yi4, dz = zj - zi4;
        Val r2 = kb.Fma(dx, dx, kb.Fma(dy, dy, kb.Fma(dz, dz, eps4)));
        Val inv = kb.Rsqrt(r2);
        Val w = mj * inv * inv * inv;
        kb.Assign(ax4, kb.Fma(w, dx, ax4));
        kb.Assign(ay4, kb.Fma(w, dy, ay4));
        kb.Assign(az4, kb.Fma(w, dz, az4));
      });
      kb.Assign(ax, kb.VSum(ax4));
      kb.Assign(ay, kb.VSum(ay4));
      kb.Assign(az, kb.VSum(az4));
    } else {
      kb.ForUnrolled("j", kb.ConstI(kir::I32(), 0), n, 1, 2, [&](Val j) {
        Val dx = kb.Load(xs, j) - xi;
        Val dy = kb.Load(ys, j) - yi;
        Val dz = kb.Load(zs, j) - zi;
        Val mj = kb.Load(ms, j);
        Val r2 = kb.Fma(dx, dx, kb.Fma(dy, dy, kb.Fma(dz, dz, eps)));
        Val inv = kb.Rsqrt(r2);
        Val w = mj * inv * inv * inv;
        kb.Assign(ax, kb.Fma(w, dx, ax));
        kb.Assign(ay, kb.Fma(w, dy, ay));
        kb.Assign(az, kb.Fma(w, dz, az));
      });
    }

    Val vx = kb.Fma(dt, ax, kb.Load(vel, base_i, 0));
    Val vy = kb.Fma(dt, ay, kb.Load(vel, base_i, 1));
    Val vz = kb.Fma(dt, az, kb.Load(vel, base_i, 2));
    kb.Store(out_vel, base_i, vx, 0);
    kb.Store(out_vel, base_i, vy, 1);
    kb.Store(out_vel, base_i, vz, 2);
    kb.Store(out_pos, base_i, kb.Fma(dt, vx, xi), 0);
    kb.Store(out_pos, base_i, kb.Fma(dt, vy, yi), 1);
    kb.Store(out_pos, base_i, kb.Fma(dt, vz, zi), 2);
    kb.Store(out_pos, base_i, kb.Load(ms, i), 3);
    return kb.Build();
  }

  StatusOr<RunOutcome> RunCpuVariant(Devices& devices, int threads) {
    StatusOr<kir::Program> program =
        BuildKernel("nbody_cpu", true, Flavor::kScalarDivSqrt, false);
    if (!program.ok()) return program.status();
    FpBuffer out_pos(fp64_, bodies_.size()), out_vel(fp64_, vel_.size());
    kir::LaunchConfig config;
    config.global_size = {static_cast<std::uint64_t>(threads), 1, 1};
    StatusOr<RunOutcome> outcome = detail::RunCpu(
        devices, *program, config,
        {{bodies_.data(), bodies_.bytes()},
         {vel_.data(), vel_.bytes()},
         {out_pos.data(), out_pos.bytes()},
         {out_vel.data(), out_vel.bytes()}},
        {kir::ScalarValue::I32V(static_cast<std::int32_t>(n_))}, threads);
    if (!outcome.ok()) return outcome;
    detail::FinishValidation(&*outcome, Error(out_pos, out_vel), tol());
    return outcome;
  }

  StatusOr<RunOutcome> RunGpuVariant(Devices& devices, bool optimized) {
    ocl::Context& ctx = *devices.gpu;
    auto bodies = detail::MakeGpuBuffer(ctx, bodies_.data(), bodies_.bytes());
    if (!bodies.ok()) return bodies.status();
    auto vel = detail::MakeGpuBuffer(ctx, vel_.data(), vel_.bytes());
    if (!vel.ok()) return vel.status();
    auto out_pos = detail::MakeGpuBuffer(ctx, nullptr, bodies_.bytes());
    if (!out_pos.ok()) return out_pos.status();
    auto out_vel = detail::MakeGpuBuffer(ctx, nullptr, vel_.bytes());
    if (!out_vel.ok()) return out_vel.status();

    // Kernel rungs of the degradation ladder. The optimized ladder encodes
    // the paper's FP64 failure: the register-hungry vector-gather kernel
    // cannot launch (CL_OUT_OF_RESOURCES) and the benchmark falls back to
    // the mild optimization level (paper §V-A: the DP Opt results barely
    // beat the naive version). With fault injection on, transient enqueue
    // failures are retried and compiler faults fall down the same rungs.
    std::vector<detail::KernelRung> rungs;
    if (optimized) {
      rungs.push_back({"vector-gather kernel", [&] {
                         return TryGpu(devices, "nbody_cl_opt",
                                       Flavor::kVectorGather, true, *bodies,
                                       *vel, *out_pos, *out_vel);
                       }});
      rungs.push_back({"scalar rsqrt+unroll kernel", [&] {
                         return TryGpu(devices, "nbody_cl_opt_mild",
                                       Flavor::kScalarRsqrt, true, *bodies,
                                       *vel, *out_pos, *out_vel);
                       }});
    } else {
      rungs.push_back({"naive scalar kernel", [&] {
                         return TryGpu(devices, "nbody_cl",
                                       Flavor::kScalarDivSqrt, false, *bodies,
                                       *vel, *out_pos, *out_vel);
                       }});
    }
    StatusOr<RunOutcome> outcome = detail::RunKernelLadder(devices, rungs);
    if (!outcome.ok()) return outcome;

    FpBuffer got_pos(fp64_, bodies_.size()), got_vel(fp64_, vel_.size());
    MALI_RETURN_IF_ERROR(
        detail::ReadGpuBuffer(ctx, **out_pos, got_pos.data(), got_pos.bytes()));
    MALI_RETURN_IF_ERROR(
        detail::ReadGpuBuffer(ctx, **out_vel, got_vel.data(), got_vel.bytes()));
    detail::FinishValidation(&*outcome, Error(got_pos, got_vel), tol());
    return outcome;
  }

  StatusOr<RunOutcome> TryGpu(Devices& devices, const std::string& kernel_name,
                              Flavor flavor, bool tuned,
                              const std::shared_ptr<ocl::Buffer>& bodies,
                              const std::shared_ptr<ocl::Buffer>& vel,
                              const std::shared_ptr<ocl::Buffer>& out_pos,
                              const std::shared_ptr<ocl::Buffer>& out_vel) {
    StatusOr<kir::Program> program =
        BuildKernel(kernel_name, false, flavor, tuned);
    if (!program.ok()) return program.status();
    ocl::Context& ctx = *devices.gpu;
    std::vector<kir::Program> kernels;
    kernels.push_back(*std::move(program));
    std::shared_ptr<ocl::Program> prog = ctx.CreateProgram(std::move(kernels));
    MALI_RETURN_IF_ERROR(prog->Build());
    auto kernel = ctx.CreateKernel(prog, kernel_name);
    if (!kernel.ok()) return kernel.status();
    MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(0, bodies));
    MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(1, vel));
    MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(2, out_pos));
    MALI_RETURN_IF_ERROR((*kernel)->SetArgBuffer(3, out_vel));
    MALI_RETURN_IF_ERROR(
        (*kernel)->SetArgI32(4, static_cast<std::int32_t>(n_)));

    devices.gpu->device().FlushCaches();
    detail::GpuLaunch launch;
    launch.kernel = kernel->get();
    launch.global[0] = n_;
    const std::uint64_t tuned_local[3] = {detail::TunedLocalSize(n_, 64), 1, 1};
    launch.local = tuned ? tuned_local : nullptr;
    return detail::RunGpuLaunches(devices, {&launch, 1});
  }

  double Error(const FpBuffer& got_pos, const FpBuffer& got_vel) const {
    return std::max(detail::MaxRelError(got_pos, ref_pos_),
                    detail::MaxRelError(got_vel, ref_vel_));
  }

  std::uint32_t n_;
  FpBuffer bodies_, vel_;
  FpBuffer soa_x_, soa_y_, soa_z_, soa_m_;
  std::vector<double> ref_pos_, ref_vel_;
};

}  // namespace

std::unique_ptr<Benchmark> MakeNbody(const ProblemSizes& sizes) {
  return std::make_unique<NbodyBenchmark>(sizes);
}

}  // namespace malisim::hpc
