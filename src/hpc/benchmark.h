// Benchmark framework: the nine paper benchmarks, each in the four versions
// of §IV-B (Serial / OpenMP on the A15 model, OpenCL / OpenCL Opt on the
// Mali model), with functional validation against host references.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/stats.h"
#include "cpu/a15_device.h"
#include "kir/exec_types.h"
#include "hpc/problem_sizes.h"
#include "ocl/runtime.h"
#include "power/profile.h"
#include "sim/tuner.h"

namespace malisim::hpc {

/// The four paper versions plus kHetero: the optimized OpenCL version
/// co-executed across the Mali and both A15 cores by the sim::Device hetero
/// backend. Benchmarks themselves only implement the four paper versions;
/// Benchmark::RunVariant resolves kHetero onto the optimized path against
/// the hetero-backend context.
enum class Variant : std::uint8_t {
  kSerial,
  kOpenMP,
  kOpenCL,
  kOpenCLOpt,
  kHetero
};
/// The paper's four versions (§IV-B), the default sweep.
inline constexpr Variant kAllVariants[] = {Variant::kSerial, Variant::kOpenMP,
                                           Variant::kOpenCL,
                                           Variant::kOpenCLOpt};
/// The four versions plus the co-execution column.
inline constexpr Variant kAllVariantsWithHetero[] = {
    Variant::kSerial, Variant::kOpenMP, Variant::kOpenCL, Variant::kOpenCLOpt,
    Variant::kHetero};

std::string_view VariantName(Variant v);

/// Degradation-ladder order, most- to least-ambitious (DESIGN.md §8). The
/// co-execution rung sits on top: losing a device degrades to the Mali-only
/// optimized version, then down the paper ladder to Serial. Fallbacks are
/// derived positionally (fault::RungsBelow), not per-enumerator.
inline constexpr Variant kDegradationLadder[] = {
    Variant::kHetero, Variant::kOpenCLOpt, Variant::kOpenCL, Variant::kOpenMP,
    Variant::kSerial};

/// Variants to try, in order, after `v` fails degradably.
std::span<const Variant> FallbackVariants(Variant v);

/// Devices a benchmark runs against. The harness owns them; reusing one
/// CPU/GPU pair across variants matches the single-board methodology.
/// `hetero` (optional) is a context whose backend co-executes each NDRange
/// across both devices; kHetero is unavailable while it is null.
struct Devices {
  cpu::CortexA15Device* cpu = nullptr;
  ocl::Context* gpu = nullptr;
  ocl::Context* hetero = nullptr;
};

/// Result of running one variant once.
struct RunOutcome {
  /// Modelled time of the measured region (parallel/kernel region only,
  /// §IV-D: initialization and finalization are excluded).
  double seconds = 0.0;
  /// Activity over the measured region, for the power model.
  power::ActivityProfile profile;
  /// Functional execution counts (dynamic op histogram, memory traffic,
  /// atomics, imbalance) aggregated over the region's kernel launches.
  kir::WorkGroupRun run;
  /// Functional validation against the host reference.
  bool validated = false;
  double max_rel_error = 0.0;
  /// Free-form annotation (e.g. "CL_OUT_OF_RESOURCES: fell back to vec2").
  std::string note;
  StatRegistry stats;
};

class Benchmark {
 public:
  virtual ~Benchmark() = default;

  virtual std::string name() const = 0;
  virtual std::string description() const = 0;

  /// Generates inputs and the double-precision host reference for the given
  /// arithmetic precision. Deterministic in `seed`.
  virtual Status Setup(bool fp64, std::uint64_t seed) = 0;

  /// Runs one of the four paper versions. Requires Setup. GPU variants may
  /// fail with BuildFailure (amcd FP64 erratum) — the harness reports those
  /// as the paper does (missing bars in Fig. 2b).
  virtual StatusOr<RunOutcome> Run(Variant variant, Devices& devices) = 0;

  /// Runs any variant, including the kHetero pseudo-variant, which executes
  /// the optimized OpenCL version against devices.hetero (FailedPrecondition
  /// while that context is absent). The four paper versions pass through to
  /// Run() unchanged.
  StatusOr<RunOutcome> RunVariant(Variant variant, Devices& devices);

  // ---- §III tuning surface (sim::Tuner clients) ----

  /// Declarative search space of the optimized OpenCL version's knobs
  /// (work-group size, vector width, unroll factor, buffer strategy,
  /// kernel flavor). Empty space (the default) = not tunable.
  virtual sim::TuningSpace TunableSpace() const { return {}; }

  /// The paper's hand-picked §III operating point inside TunableSpace().
  /// The tuner conformance battery checks the searched winner matches or
  /// beats this configuration under both time and energy objectives.
  virtual sim::TuningConfig PaperOptConfig() const { return {}; }

  /// Runs the optimized OpenCL version parameterized by `config` against
  /// devices.gpu. Requires Setup. Unimplemented for non-tunable
  /// benchmarks. The fixed Run(kOpenCLOpt) path stays untouched so golden
  /// figures are byte-identical; RunTuned(PaperOptConfig()) expresses the
  /// same optimization decisions through the parameterized kernels.
  virtual StatusOr<RunOutcome> RunTuned(const sim::TuningConfig& config,
                                        Devices& devices);

  /// Canonical KIR text of the kernel(s) RunTuned would launch at
  /// `config` — the content the tuning cache fingerprints. Requires Setup
  /// (kernels depend on precision and problem size).
  virtual StatusOr<std::string> TunedKernelText(
      const sim::TuningConfig& config) const;

 protected:
  bool fp64_ = false;
  std::uint64_t seed_ = 0;
};

/// Benchmark names in the paper's figure order.
std::vector<std::string> RegisteredBenchmarks();

/// Factory; returns nullptr for unknown names.
std::unique_ptr<Benchmark> CreateBenchmark(const std::string& name,
                                           const ProblemSizes& sizes = {});

}  // namespace malisim::hpc
