// Benchmark framework: the nine paper benchmarks, each in the four versions
// of §IV-B (Serial / OpenMP on the A15 model, OpenCL / OpenCL Opt on the
// Mali model), with functional validation against host references.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/stats.h"
#include "cpu/a15_device.h"
#include "kir/exec_types.h"
#include "hpc/problem_sizes.h"
#include "ocl/runtime.h"
#include "power/profile.h"

namespace malisim::hpc {

enum class Variant : std::uint8_t { kSerial, kOpenMP, kOpenCL, kOpenCLOpt };
inline constexpr Variant kAllVariants[] = {Variant::kSerial, Variant::kOpenMP,
                                           Variant::kOpenCL,
                                           Variant::kOpenCLOpt};

std::string_view VariantName(Variant v);

/// Devices a benchmark runs against. The harness owns them; reusing one
/// CPU/GPU pair across variants matches the single-board methodology.
struct Devices {
  cpu::CortexA15Device* cpu = nullptr;
  ocl::Context* gpu = nullptr;
};

/// Result of running one variant once.
struct RunOutcome {
  /// Modelled time of the measured region (parallel/kernel region only,
  /// §IV-D: initialization and finalization are excluded).
  double seconds = 0.0;
  /// Activity over the measured region, for the power model.
  power::ActivityProfile profile;
  /// Functional execution counts (dynamic op histogram, memory traffic,
  /// atomics, imbalance) aggregated over the region's kernel launches.
  kir::WorkGroupRun run;
  /// Functional validation against the host reference.
  bool validated = false;
  double max_rel_error = 0.0;
  /// Free-form annotation (e.g. "CL_OUT_OF_RESOURCES: fell back to vec2").
  std::string note;
  StatRegistry stats;
};

class Benchmark {
 public:
  virtual ~Benchmark() = default;

  virtual std::string name() const = 0;
  virtual std::string description() const = 0;

  /// Generates inputs and the double-precision host reference for the given
  /// arithmetic precision. Deterministic in `seed`.
  virtual Status Setup(bool fp64, std::uint64_t seed) = 0;

  /// Runs one variant. Requires Setup. GPU variants may fail with
  /// BuildFailure (amcd FP64 erratum) — the harness reports those as the
  /// paper does (missing bars in Fig. 2b).
  virtual StatusOr<RunOutcome> Run(Variant variant, Devices& devices) = 0;

 protected:
  bool fp64_ = false;
  std::uint64_t seed_ = 0;
};

/// Benchmark names in the paper's figure order.
std::vector<std::string> RegisteredBenchmarks();

/// Factory; returns nullptr for unknown names.
std::unique_ptr<Benchmark> CreateBenchmark(const std::string& name,
                                           const ProblemSizes& sizes = {});

}  // namespace malisim::hpc
