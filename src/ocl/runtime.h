// tinycl: an OpenCL-1.1-Full-Profile-shaped host runtime over the Mali-T604
// device model.
//
// The API mirrors the host-side objects and semantics the paper's §III-A
// optimizations live in:
//  * Buffers carry CL_MEM_* flags. kUseHostPtr buffers get a driver-side
//    shadow (the Mali cannot address plain malloc memory) and must be moved
//    with EnqueueWrite/ReadBuffer — the copy cost is modelled. kAllocHostPtr
//    buffers live in driver memory mapped into both address spaces (unified
//    memory), and Map/Unmap are cheap cache-maintenance operations with no
//    copy: the paper's recommended zero-copy path.
//  * EnqueueNDRange with a null local size invokes the driver work-group
//    heuristic, reproducing "the driver is not always capable of doing a
//    good selection"; passing an explicit local size is the manual tuning
//    the paper recommends.
//  * Programs are built at runtime (clBuildProgram); the build runs the IR
//    pass pipeline and the Mali kernel compiler with its modelled erratum
//    and resource accounting. Build failures land in the build log.
//
// The runtime executes eagerly — every enqueue runs to completion and
// returns an Event carrying modelled duration and an activity profile for
// the power model — but each command also appends a node to the queue's
// modelled-time event graph. In the default in-order mode every node
// depends on its predecessor and the scheduled makespan equals the eager
// sum bit-for-bit; switching the queue to async mode lets callers express
// explicit wait lists so independent kernels and transfers overlap in
// modelled time (functional results are unchanged — the graph only changes
// what the clock would have read). CommandQueue::Finish() exists for API
// fidelity.
//
// The context dispatches kernels through the sim::Device backend interface:
// kMali (the Mali-T604 model, default), kA15 (both Cortex-A15 cores) and
// kHetero (a co-execution backend splitting each NDRange across both).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/sim_options.h"
#include "common/status.h"
#include "cpu/a15_device.h"
#include "fault/fault_plan.h"
#include "kir/exec_types.h"
#include "kir/program.h"
#include "mali/compiler.h"
#include "mali/t604_device.h"
#include "ocl/cl_error.h"
#include "power/profile.h"
#include "sim/device.h"
#include "sim/hetero_device.h"
#include "sim/scheduler.h"

namespace malisim::fault {
class FaultInjector;
}  // namespace malisim::fault

namespace malisim::mali {
class CompileCache;
}  // namespace malisim::mali

namespace malisim::ocl {

/// OpenCL device type (CL_DEVICE_TYPE_GPU / _CPU / a fused device). This is
/// the backend enum of the sim::Device layer: kMali is the Mali-T604 model,
/// kA15 runs kernels across both Cortex-A15 cores — the "OpenCL on the
/// application processor" configuration the related-work systems in §VI
/// use — and kHetero co-executes each NDRange on both. The A15 path has no
/// Mali kernel compiler, so neither the FP64 erratum nor the register
/// budget applies (matching the paper: the CPU versions of amcd ran fine
/// in FP64).
using DeviceType = sim::BackendKind;

/// CL_MEM_* flag bitmask.
enum MemFlags : std::uint32_t {
  kMemReadWrite = 1u << 0,
  kMemReadOnly = 1u << 1,
  kMemWriteOnly = 1u << 2,
  kMemUseHostPtr = 1u << 3,    // wrap app malloc memory (shadow + copies)
  kMemAllocHostPtr = 1u << 4,  // driver-allocated, zero-copy mappable
  kMemCopyHostPtr = 1u << 5,   // initialize from host_ptr at creation
};

/// Host-side cost parameters (driver + Cortex-A15 doing the host work).
struct HostParams {
  double memcpy_bytes_per_sec = 2.2e9;   // A15 memcpy to/from DRAM
  double map_overhead_sec = 18e-6;       // cache maintenance + syscall
  double unmap_overhead_sec = 12e-6;
  double enqueue_overhead_sec = 9e-6;    // per command submission
};

/// Completed-command descriptor (the profiling-enabled cl_event analogue).
struct Event {
  enum class Kind { kWrite, kRead, kMap, kUnmap, kKernel };
  Kind kind = Kind::kKernel;
  double seconds = 0.0;
  power::ActivityProfile profile;
  /// Kernel commands only: functional counts and device stats.
  kir::WorkGroupRun run;
  StatRegistry stats;
  /// This command's node in the queue's modelled-time event graph; pass it
  /// in CommandQueue::SetWaitList to make later async commands depend on it.
  sim::EventId node = sim::kNullEvent;
};

class Context;

/// A cl_mem analogue. Create through Context::CreateBuffer.
class Buffer {
 public:
  std::uint64_t size() const { return size_; }
  std::uint32_t flags() const { return flags_; }
  std::uint64_t sim_addr() const { return sim_addr_; }

  /// Device-visible storage (tests and the zero-copy map path).
  std::byte* device_storage() { return storage_.data(); }
  const std::byte* device_storage() const { return storage_.data(); }

 private:
  friend class Context;
  friend class CommandQueue;

  Buffer() = default;

  std::uint32_t flags_ = kMemReadWrite;
  std::uint64_t size_ = 0;
  std::uint64_t sim_addr_ = 0;
  AlignedBuffer storage_;   // driver allocation (GPU-mapped)
  void* user_ptr_ = nullptr;  // kUseHostPtr app memory
  bool mapped_ = false;
};

/// A cl_program analogue: a set of KIR kernels built for the device.
class Program {
 public:
  /// clBuildProgram: IR pass pipeline + Mali kernel compile for every
  /// kernel. On failure returns the aggregate error; per-kernel diagnostics
  /// are in build_log().
  Status Build();

  bool built() const { return built_; }
  const std::string& build_log() const { return build_log_; }

  /// Compiled form of a kernel, or NotFound / FailedPrecondition.
  StatusOr<const mali::CompiledKernel*> GetCompiled(const std::string& name) const;
  const kir::Program* GetSource(const std::string& name) const;

 private:
  friend class Context;
  explicit Program(std::vector<kir::Program> kernels,
                   mali::MaliTimingParams timing,
                   mali::MaliCompilerParams compiler);

  std::vector<kir::Program> kernels_;
  mali::MaliTimingParams timing_;
  mali::MaliCompilerParams compiler_;
  std::map<std::string, mali::CompiledKernel> compiled_;
  std::string build_log_;
  bool built_ = false;
  /// Recorder snapshot from CreateProgram time, used only to attribute
  /// Build() host time to the compile phase. Never read by the compile
  /// itself.
  obs::Recorder* recorder_ = nullptr;
  /// Shared content-addressed cache for the pure half of the compile
  /// (nullptr = compile from scratch, the historical behaviour). A cache
  /// hit skips the IR passes and AnalyzeForMali but still runs
  /// ApplyBuildFaults, so the injector decision streams are identical on
  /// hit and miss.
  mali::CompileCache* compile_cache_ = nullptr;
};

/// A cl_kernel analogue: positional argument binding over a built program
/// kernel. OpenCL numbers arguments across buffers and scalars in
/// declaration order; tinycl keeps the same convention.
class Kernel {
 public:
  Status SetArgBuffer(std::uint32_t index, std::shared_ptr<Buffer> buffer);
  Status SetArgScalar(std::uint32_t index, kir::ScalarValue value);
  Status SetArgI32(std::uint32_t index, std::int32_t v) {
    return SetArgScalar(index, kir::ScalarValue::I32V(v));
  }
  Status SetArgF32(std::uint32_t index, float v) {
    return SetArgScalar(index, kir::ScalarValue::F32V(v));
  }
  Status SetArgF64(std::uint32_t index, double v) {
    return SetArgScalar(index, kir::ScalarValue::F64V(v));
  }

  const std::string& name() const { return name_; }

 private:
  friend class Context;
  friend class CommandQueue;
  Kernel(std::string name, std::shared_ptr<const Program> program,
         const kir::Program* source, const mali::CompiledKernel* compiled);

  /// Builds interpreter bindings; fails if any argument is unset.
  StatusOr<kir::Bindings> MakeBindings() const;

  std::string name_;
  /// Pins the program: source_ and compiled_ point into its storage, and a
  /// kernel may outlive the caller's program handle (clRetainProgram
  /// semantics of the real runtime).
  std::shared_ptr<const Program> program_;
  const kir::Program* source_;
  const mali::CompiledKernel* compiled_;
  struct ArgSlot {
    bool is_buffer = false;
    bool set = false;
    std::shared_ptr<Buffer> buffer;
    kir::ScalarValue scalar;
  };
  std::vector<ArgSlot> args_;
};

/// A cl_command_queue analogue (in-order, synchronous, profiling always on).
class CommandQueue {
 public:
  /// clEnqueueWriteBuffer: host copy user memory -> device storage.
  StatusOr<Event> EnqueueWriteBuffer(Buffer& buffer, const void* src,
                                     std::uint64_t bytes,
                                     std::uint64_t offset = 0);
  /// clEnqueueReadBuffer: device storage -> user memory.
  StatusOr<Event> EnqueueReadBuffer(Buffer& buffer, void* dst,
                                    std::uint64_t bytes,
                                    std::uint64_t offset = 0);
  /// clEnqueueCopyBuffer: device-side copy (the GPU's LS path moves it; no
  /// host involvement, so it is cheaper per byte than Write/ReadBuffer).
  StatusOr<Event> EnqueueCopyBuffer(Buffer& src, Buffer& dst,
                                    std::uint64_t bytes,
                                    std::uint64_t src_offset = 0,
                                    std::uint64_t dst_offset = 0);
  /// clEnqueueFillBuffer: pattern fill performed on the device.
  StatusOr<Event> EnqueueFillBuffer(Buffer& buffer, const void* pattern,
                                    std::uint64_t pattern_bytes,
                                    std::uint64_t bytes,
                                    std::uint64_t offset = 0);
  /// clEnqueueMapBuffer on a kMemAllocHostPtr buffer: zero-copy, returns the
  /// unified-memory pointer. On a kMemUseHostPtr buffer the driver must
  /// copy out to the app allocation first (modelled), matching §III-A.
  StatusOr<void*> MapBuffer(Buffer& buffer, Event* event = nullptr);
  Status UnmapBuffer(Buffer& buffer, void* mapped, Event* event = nullptr);

  /// clEnqueueNDRangeKernel. `local` may be nullptr: the driver heuristic
  /// picks the work-group size (§III-A "Load distribution").
  StatusOr<Event> EnqueueNDRange(Kernel& kernel, std::uint32_t work_dim,
                                 const std::uint64_t* global,
                                 const std::uint64_t* local);

  /// clFinish: execution is eager, so this only exists for fidelity.
  Status Finish() { return Status::Ok(); }

  /// Sum of modelled seconds of everything enqueued since construction —
  /// the serialized (in-order) clock, independent of the async mode.
  double total_seconds() const { return total_seconds_; }

  // --- modelled-time event graph ----------------------------------------
  // Every enqueue appends a node. In the default in-order mode each node
  // depends on the previous one, so ScheduledSeconds() == total_seconds()
  // bit-for-bit. In async mode a node depends only on the wait list staged
  // with SetWaitList (empty → no dependencies), and the scheduler overlaps
  // independent work: kernels on the compute lane, device-side copies and
  // fills on the transfer lane, host copies and map/unmap on the host lane.

  /// Switches dependency tracking for subsequently enqueued commands.
  void set_async(bool async) { async_ = async; }
  bool async() const { return async_; }
  /// Stages the dependency list for the next async enqueue (consumed by
  /// it). Ignored in in-order mode.
  void SetWaitList(std::vector<sim::EventId> wait_list) {
    pending_wait_ = std::move(wait_list);
  }
  /// Appends a zero-cost barrier node depending on every command enqueued
  /// so far (clEnqueueBarrier); returns its node id.
  sim::EventId EnqueueBarrier();
  /// List-schedules the graph and returns the modelled makespan.
  StatusOr<double> ScheduledSeconds() const;
  /// Full schedule (per-event start/finish, lane busy time, critical path).
  StatusOr<sim::ScheduleResult> Schedule() const {
    return sim::ScheduleEvents(graph_);
  }
  /// Schedules the queue's event graph and appends an obs::GraphRecord
  /// (per-node start/finish, lane busy time, critical-path marking) to the
  /// context's recorder so exporters can render the causal timeline. No-op
  /// when the graph is empty or no recorder is attached.
  Status RecordScheduledGraph(const std::string& label);
  const sim::EventGraph& graph() const { return graph_; }
  /// Node id of the most recently enqueued command (kNullEvent if none).
  sim::EventId last_event() const { return last_event_; }

 private:
  friend class Context;
  explicit CommandQueue(Context* context) : context_(context) {}

  Event HostCopyEvent(Event::Kind kind, std::uint64_t bytes, double overhead);
  /// Appends a node for a just-executed command: in-order mode chains it on
  /// the previous node, async mode consumes the staged wait list.
  sim::EventId AddGraphNode(sim::CmdKind kind, std::string label,
                            double seconds, int lane);
  /// Appends a CommandRecord when the context has a recorder attached.
  void RecordCommand(const char* kind, const std::string& detail,
                     std::uint64_t bytes, double seconds);
  /// Asks the context's fault injector (if any) whether this operation
  /// faults; returns the injected error Status when it trips. Called
  /// before any state is mutated so a failed command leaves buffers and
  /// map flags untouched.
  Status MaybeInject(fault::FaultSite site, const std::string& key);

  Context* context_;
  double total_seconds_ = 0.0;
  sim::EventGraph graph_;
  sim::EventId last_event_ = sim::kNullEvent;
  std::vector<sim::EventId> pending_wait_;
  bool async_ = false;
};

/// A cl_context analogue owning the device model, the unified simulated
/// address space, and all objects created from it.
class Context {
 public:
  explicit Context(
      const mali::MaliTimingParams& timing = mali::MaliTimingParams(),
      const mali::MaliMemoryConfig& memory = mali::MaliMemoryConfig(),
      const mali::MaliCompilerParams& compiler = mali::MaliCompilerParams(),
      const HostParams& host = HostParams());

  /// Context for another backend in the platform (clCreateContextFromType
  /// with CL_DEVICE_TYPE_CPU, or the fused hetero device). Context(kMali)
  /// is identical to the default constructor.
  explicit Context(DeviceType type);

  /// clCreateBuffer. host_ptr is required for kMemUseHostPtr/kMemCopyHostPtr.
  StatusOr<std::shared_ptr<Buffer>> CreateBuffer(std::uint32_t flags,
                                                 std::uint64_t bytes,
                                                 void* host_ptr = nullptr);

  /// clCreateProgramWithSource analogue (KIR plays the role of OpenCL C).
  std::shared_ptr<Program> CreateProgram(std::vector<kir::Program> kernels);

  /// clCreateKernel.
  StatusOr<std::shared_ptr<Kernel>> CreateKernel(
      const std::shared_ptr<Program>& program, const std::string& name);

  CommandQueue& queue() { return queue_; }
  DeviceType device_type() const { return type_; }
  mali::MaliT604Device& device() { return device_; }
  cpu::CortexA15Device& cpu_device() { return cpu_device_; }
  sim::HeteroDevice& hetero_device() { return hetero_; }

  /// The sim::Device the queue dispatches kernels to, per device_type().
  sim::Device& backend() {
    switch (type_) {
      case DeviceType::kA15:
        return cpu_device_;
      case DeviceType::kHetero:
        return hetero_;
      case DeviceType::kMali:
        break;
    }
    return device_;
  }
  const sim::Device& backend() const {
    return const_cast<Context*>(this)->backend();
  }

  /// GPU share of each NDRange on the hetero backend: 0.0 = all-A15,
  /// 1.0 = all-Mali, negative = self-tuning (default). No effect on the
  /// single-device backends.
  void set_hetero_ratio(double ratio) { hetero_.set_ratio(ratio); }

  /// Host-side simulation options, forwarded to both device models.
  /// threads == 1 (default) is the serial reference engine; threads > 1
  /// enables the record/replay parallel engine, which is guaranteed to
  /// produce bit-identical buffers, counts and modelled times.
  void set_sim_options(const SimOptions& options) {
    sim_options_ = options;
    device_.set_sim_options(options);
    cpu_device_.set_sim_options(options);
  }
  const SimOptions& sim_options() const { return sim_options_; }

  /// Attaches a fault injector (nullptr detaches) to the runtime, the
  /// kernel compiler (programs created afterwards) and the GPU device
  /// model. With no injector — or one whose plan has every rate at zero —
  /// behaviour is bit-identical to the uninstrumented runtime.
  void set_fault_injector(fault::FaultInjector* injector) {
    fault_injector_ = injector;
    compiler_.injector = injector;
    device_.set_fault_injector(injector);
  }
  fault::FaultInjector* fault_injector() const { return fault_injector_; }

  /// Attaches a process-wide compile cache (nullptr detaches); programs
  /// created afterwards share pure compile results through it. Safe to
  /// share one cache across contexts on different threads. Never changes
  /// compile results or fault schedules — only host-side compile work.
  void set_compile_cache(mali::CompileCache* cache) { compile_cache_ = cache; }
  mali::CompileCache* compile_cache() const { return compile_cache_; }

  /// Attaches an observability recorder to the runtime and both device
  /// models: kernel launches, transfers and map/unmap traffic are recorded.
  /// nullptr detaches. Never affects modelled times.
  void set_recorder(obs::Recorder* recorder) {
    recorder_ = recorder;
    device_.set_recorder(recorder);
    cpu_device_.set_recorder(recorder);
  }
  obs::Recorder* recorder() const { return recorder_; }

  const HostParams& host_params() const { return host_; }
  const mali::MaliTimingParams& timing() const { return timing_; }

  /// clGetDeviceInfo analogue.
  struct DeviceInfo {
    std::string name;
    DeviceType type;
    std::uint32_t compute_units;
    std::uint64_t max_work_group_size;
    bool fp64;          // CL_FP_DENORM... both devices are Full Profile
    double clock_hz;
  };
  DeviceInfo device_info() const;

  /// Device info strings for API fidelity.
  static constexpr const char* kDeviceName = "Mali-T604 (modelled)";
  static constexpr const char* kCpuDeviceName = "Cortex-A15 MP2 (modelled)";
  static constexpr std::uint64_t kMaxWorkGroupSize = 256;

 private:
  friend class CommandQueue;

  DeviceType type_ = DeviceType::kMali;
  mali::MaliTimingParams timing_;
  mali::MaliCompilerParams compiler_;
  HostParams host_;
  mali::MaliT604Device device_;
  cpu::CortexA15Device cpu_device_;
  // Declared after its children: the HeteroDevice constructor reads their
  // caps() to build the fused capability record.
  sim::HeteroDevice hetero_;
  obs::Recorder* recorder_ = nullptr;
  fault::FaultInjector* fault_injector_ = nullptr;
  mali::CompileCache* compile_cache_ = nullptr;
  SimOptions sim_options_;
  CommandQueue queue_;
  std::uint64_t next_sim_addr_ = 0x1000'0000ULL;
};

}  // namespace malisim::ocl
