// OpenCL-style error codes for the tinycl host API.
//
// tinycl reports failures as Status (library idiom) but tags them with the
// OpenCL error the real driver would return — the paper's narrative hinges
// on two of them: CL_BUILD_PROGRAM_FAILURE (amcd FP64 compiler erratum) and
// CL_OUT_OF_RESOURCES (optimized FP64 nbody/2dcon register pressure).
#pragma once

#include <optional>
#include <string_view>

#include "common/status.h"
#include "sim/device.h"

namespace malisim::ocl {

enum class ClError : int {
  kSuccess = 0,
  kDeviceNotFound = -1,
  kOutOfResources = -5,
  kMemObjectAllocationFailure = -4,
  kBuildProgramFailure = -11,
  kMapFailure = -12,
  kInvalidValue = -30,
  kInvalidBufferSize = -61,
  kInvalidKernelArgs = -52,
  kInvalidWorkGroupSize = -54,
  kInvalidWorkItemSize = -55,
  kInvalidOperation = -59,
};

/// Every ClError value, for exhaustive iteration in tests and tooling.
inline constexpr ClError kAllClErrors[] = {
    ClError::kSuccess,
    ClError::kDeviceNotFound,
    ClError::kOutOfResources,
    ClError::kMemObjectAllocationFailure,
    ClError::kBuildProgramFailure,
    ClError::kMapFailure,
    ClError::kInvalidValue,
    ClError::kInvalidBufferSize,
    ClError::kInvalidKernelArgs,
    ClError::kInvalidWorkGroupSize,
    ClError::kInvalidWorkItemSize,
    ClError::kInvalidOperation,
};

/// "CL_SUCCESS", "CL_OUT_OF_RESOURCES", ...
std::string_view ClErrorName(ClError err);

/// Inverse of ClErrorName; false on unknown names.
bool ClErrorFromName(std::string_view name, ClError* out);

/// Maps a library Status to the OpenCL error a driver would surface.
ClError ClErrorFromStatus(const Status& status);

/// Prefixes a failing status's message with "[backend:<name>] " so an error
/// surfaced through the harness names the device it came from. Ok statuses
/// and already-annotated messages pass through unchanged. The default Mali
/// backend is reported verbatim by the runtime (golden outputs embed its
/// CL error strings), so callers only annotate the non-default backends.
Status AnnotateStatusWithBackend(const Status& status, sim::BackendKind kind);

/// Recovers the backend a status was annotated with, or nullopt when the
/// message carries no (known) "[backend:...]" prefix. Round-trips with
/// AnnotateStatusWithBackend for every sim::BackendKind.
std::optional<sim::BackendKind> BackendFromStatus(const Status& status);

}  // namespace malisim::ocl
