#include "ocl/runtime.h"

#include <cstring>
#include <utility>

#include "common/log.h"
#include "fault/injector.h"
#include "kir/passes.h"
#include "kir/vm/bytecode.h"
#include "mali/compiler_cache.h"
#include "obs/recorder.h"

namespace malisim::ocl {

// ---------------------------------------------------------------- Context

Context::Context(const mali::MaliTimingParams& timing,
                 const mali::MaliMemoryConfig& memory,
                 const mali::MaliCompilerParams& compiler,
                 const HostParams& host)
    : timing_(timing),
      compiler_(compiler),
      host_(host),
      device_(timing, memory),
      hetero_(&device_, &cpu_device_, sim::HeteroConfig{}),
      queue_(this) {}

Context::Context(DeviceType type)
    : type_(type),
      device_(timing_, mali::MaliMemoryConfig()),
      hetero_(&device_, &cpu_device_, sim::HeteroConfig{}),
      queue_(this) {
  if (type_ == DeviceType::kA15) {
    // The CPU path compiles with the generic pipeline only: no Mali
    // erratum, no shader-core register budget. The hetero backend keeps
    // the Mali compiler configuration — its GPU half needs it.
    compiler_.emulate_fp64_erratum = false;
    timing_.max_thread_reg_bytes = 0xFFFFFFFFu;
  }
}

Context::DeviceInfo Context::device_info() const {
  const sim::DeviceCaps& caps = backend().caps();
  DeviceInfo info;
  info.name = caps.name;
  info.type = caps.kind;
  info.compute_units = caps.compute_units;
  info.max_work_group_size = kMaxWorkGroupSize;
  info.clock_hz = caps.clock_hz;
  info.fp64 = true;  // OpenCL Full Profile on both (the paper's premise)
  return info;
}

StatusOr<std::shared_ptr<Buffer>> Context::CreateBuffer(std::uint32_t flags,
                                                        std::uint64_t bytes,
                                                        void* host_ptr) {
  if (bytes == 0) {
    return InvalidArgumentError("CL_INVALID_BUFFER_SIZE: zero-sized buffer");
  }
  const bool use_host = (flags & kMemUseHostPtr) != 0;
  const bool copy_host = (flags & kMemCopyHostPtr) != 0;
  const bool alloc_host = (flags & kMemAllocHostPtr) != 0;
  if ((use_host || copy_host) && host_ptr == nullptr) {
    return InvalidArgumentError(
        "CL_INVALID_VALUE: kMemUseHostPtr/kMemCopyHostPtr need a host_ptr");
  }
  if (use_host && alloc_host) {
    return InvalidArgumentError(
        "CL_INVALID_VALUE: kMemUseHostPtr and kMemAllocHostPtr are exclusive");
  }
  if (fault_injector_ != nullptr &&
      fault_injector_->Trip(fault::FaultSite::kAlloc,
                            std::to_string(bytes) + "B")) {
    return AllocationFailureError(
        "CL_MEM_OBJECT_ALLOCATION_FAILURE (injected fault): driver could "
        "not back a " +
        std::to_string(bytes) + "-byte buffer");
  }

  auto buffer = std::shared_ptr<Buffer>(new Buffer());
  buffer->flags_ = flags;
  buffer->size_ = bytes;
  buffer->storage_ = AlignedBuffer(bytes);
  buffer->storage_.ZeroFill();
  buffer->user_ptr_ = use_host ? host_ptr : nullptr;
  // Unified simulated address space, 4 KiB-aligned allocations.
  buffer->sim_addr_ = next_sim_addr_;
  next_sim_addr_ += (bytes + 4095) / 4096 * 4096 + 4096;

  if (copy_host || use_host) {
    // kCopyHostPtr initializes the driver allocation; for kUseHostPtr the
    // shadow starts in sync with the app memory (creation-time snapshot).
    std::memcpy(buffer->storage_.data(), host_ptr, bytes);
  }
  return buffer;
}

std::shared_ptr<Program> Context::CreateProgram(
    std::vector<kir::Program> kernels) {
  auto program = std::shared_ptr<Program>(
      new Program(std::move(kernels), timing_, compiler_));
  program->recorder_ = recorder_;
  program->compile_cache_ = compile_cache_;
  return program;
}

StatusOr<std::shared_ptr<Kernel>> Context::CreateKernel(
    const std::shared_ptr<Program>& program, const std::string& name) {
  MALI_CHECK(program != nullptr);
  if (!program->built()) {
    return FailedPreconditionError(
        "CL_INVALID_PROGRAM_EXECUTABLE: program not built");
  }
  StatusOr<const mali::CompiledKernel*> compiled = program->GetCompiled(name);
  if (!compiled.ok()) return compiled.status();
  const kir::Program* source = program->GetSource(name);
  return std::shared_ptr<Kernel>(new Kernel(name, program, source, *compiled));
}

// ---------------------------------------------------------------- Program

Program::Program(std::vector<kir::Program> kernels,
                 mali::MaliTimingParams timing,
                 mali::MaliCompilerParams compiler)
    : kernels_(std::move(kernels)), timing_(timing), compiler_(compiler) {}

Status Program::Build() {
  if (built_) return Status::Ok();
  obs::HostProf::PhaseSpan compile_span(
      recorder_ != nullptr ? recorder_->host_prof() : nullptr,
      obs::HostPhase::kCompile);
  build_log_.clear();
  Status first_error;
  for (kir::Program& kernel : kernels_) {
    std::shared_ptr<const mali::CompileCache::Entry> entry;
    std::uint64_t cache_key = 0;
    if (compile_cache_ != nullptr) {
      cache_key = mali::CompileCache::Key(kernel, timing_);
      entry = compile_cache_->Lookup(cache_key);
    }

    StatusOr<mali::CompiledKernel> compiled = InternalError("uncompiled");
    if (entry != nullptr) {
      // Cache hit: reuse the post-pass program and the pure analysis, then
      // run the fault gates exactly as a fresh compile would — the injector
      // consumes the same decisions on hit and miss.
      kernel = entry->transformed;
      mali::CompiledKernel k = entry->analyzed;
      k.program = &kernel;
      Status faults = mali::ApplyBuildFaults(&k, kernel, timing_, compiler_);
      if (faults.ok()) {
        compiled = std::move(k);
      } else {
        compiled = std::move(faults);
      }
    } else {
      // Driver-side optimization pipeline (-cl-opt level of the real
      // driver).
      StatusOr<int> folded = kir::ConstantFold(&kernel);
      if (!folded.ok()) return folded.status();
      StatusOr<int> removed = kir::DeadCodeElim(&kernel);
      if (!removed.ok()) return removed.status();

      StatusOr<mali::CompiledKernel> analyzed =
          mali::AnalyzeForMali(kernel, timing_);
      if (analyzed.ok()) {
        // Lower to VM bytecode under its own phase so malisim-prof can
        // separate it from the analysis; it rides the cache entry, so a
        // hit skips this too.
        obs::HostProf::PhaseSpan vm_span(
            recorder_ != nullptr ? recorder_->host_prof() : nullptr,
            obs::HostPhase::kVmCompile);
        StatusOr<std::shared_ptr<const kir::vm::CompiledProgram>> bytecode =
            kir::vm::CompileProgram(kernel);
        if (bytecode.ok()) {
          analyzed->bytecode = *std::move(bytecode);
        } else {
          analyzed = bytecode.status();
        }
      }
      if (!analyzed.ok()) {
        compiled = analyzed.status();
      } else {
        if (compile_cache_ != nullptr) {
          mali::CompileCache::Entry fresh;
          fresh.transformed = kernel;
          fresh.analyzed = *analyzed;
          fresh.analyzed.program = nullptr;
          compile_cache_->Insert(cache_key, std::move(fresh));
        }
        mali::CompiledKernel k = *std::move(analyzed);
        Status faults =
            mali::ApplyBuildFaults(&k, kernel, timing_, compiler_);
        if (faults.ok()) {
          compiled = std::move(k);
        } else {
          compiled = std::move(faults);
        }
      }
    }
    if (!compiled.ok()) {
      MALI_LOG_WARN("clBuildProgram: kernel '%s' failed to compile: %s",
                    kernel.name.c_str(),
                    compiled.status().ToString().c_str());
      build_log_ += "error: kernel '" + kernel.name +
                    "': " + compiled.status().ToString() + "\n";
      if (first_error.ok()) first_error = compiled.status();
      continue;
    }
    build_log_ += "kernel '" + kernel.name + "': " +
                  std::to_string(compiled->live_reg_bytes) +
                  " reg bytes/work-item, " +
                  std::to_string(compiled->threads_per_core) +
                  " threads/core" +
                  (compiled->exceeds_resources
                       ? " (exceeds per-thread budget: enqueue will fail)"
                       : "") +
                  "\n";
    compiled_.emplace(kernel.name, *compiled);
  }
  if (!first_error.ok()) return first_error;
  built_ = true;
  return Status::Ok();
}

StatusOr<const mali::CompiledKernel*> Program::GetCompiled(
    const std::string& name) const {
  if (!built_) {
    return FailedPreconditionError("program not built");
  }
  auto it = compiled_.find(name);
  if (it == compiled_.end()) {
    return NotFoundError("no kernel named '" + name + "'");
  }
  return &it->second;
}

const kir::Program* Program::GetSource(const std::string& name) const {
  for (const kir::Program& kernel : kernels_) {
    if (kernel.name == name) return &kernel;
  }
  return nullptr;
}

// ----------------------------------------------------------------- Kernel

Kernel::Kernel(std::string name, std::shared_ptr<const Program> program,
               const kir::Program* source, const mali::CompiledKernel* compiled)
    : name_(std::move(name)),
      program_(std::move(program)),
      source_(source),
      compiled_(compiled) {
  MALI_CHECK(source_ != nullptr && compiled_ != nullptr);
  args_.resize(source_->args.size());
  for (std::size_t i = 0; i < source_->args.size(); ++i) {
    args_[i].is_buffer = source_->args[i].kind != kir::ArgKind::kScalar;
  }
}

Status Kernel::SetArgBuffer(std::uint32_t index,
                            std::shared_ptr<Buffer> buffer) {
  if (index >= args_.size() || !args_[index].is_buffer) {
    return InvalidArgumentError("CL_INVALID_KERNEL_ARGS: arg " +
                                std::to_string(index) + " is not a buffer");
  }
  if (buffer == nullptr) {
    return InvalidArgumentError("CL_INVALID_KERNEL_ARGS: null buffer");
  }
  args_[index].buffer = std::move(buffer);
  args_[index].set = true;
  return Status::Ok();
}

Status Kernel::SetArgScalar(std::uint32_t index, kir::ScalarValue value) {
  if (index >= args_.size() || args_[index].is_buffer) {
    return InvalidArgumentError("CL_INVALID_KERNEL_ARGS: arg " +
                                std::to_string(index) + " is not a scalar");
  }
  if (source_->args[index].elem != value.type) {
    return InvalidArgumentError("CL_INVALID_KERNEL_ARGS: scalar type "
                                "mismatch for arg " +
                                std::to_string(index));
  }
  args_[index].scalar = value;
  args_[index].set = true;
  return Status::Ok();
}

StatusOr<kir::Bindings> Kernel::MakeBindings() const {
  kir::Bindings bindings;
  for (std::size_t i = 0; i < args_.size(); ++i) {
    const ArgSlot& slot = args_[i];
    if (!slot.set) {
      return InvalidArgumentError("CL_INVALID_KERNEL_ARGS: arg " +
                                  std::to_string(i) + " ('" +
                                  source_->args[i].name + "') is unset");
    }
    if (slot.is_buffer) {
      bindings.buffers.push_back({slot.buffer->device_storage(),
                                  slot.buffer->sim_addr(),
                                  slot.buffer->size()});
    } else {
      bindings.scalars.push_back(slot.scalar);
    }
  }
  return bindings;
}

// ----------------------------------------------------------- CommandQueue

void CommandQueue::RecordCommand(const char* kind, const std::string& detail,
                                 std::uint64_t bytes, double seconds) {
  obs::Recorder* recorder = context_->recorder_;
  if (recorder == nullptr || !recorder->counters_enabled()) return;
  recorder->AddCommand({kind, detail, bytes, seconds});
}

Status CommandQueue::MaybeInject(fault::FaultSite site,
                                 const std::string& key) {
  fault::FaultInjector* injector = context_->fault_injector_;
  if (injector == nullptr || !injector->Trip(site, key)) {
    return Status::Ok();
  }
  const std::string name(fault::FaultSiteName(site));
  if (site == fault::FaultSite::kMap || site == fault::FaultSite::kUnmap) {
    return UnavailableError("CL_MAP_FAILURE (injected fault): transient " +
                            name + " failure on '" + key + "'");
  }
  return UnavailableError("CL_OUT_OF_RESOURCES (injected fault): transient " +
                          name + " failure on '" + key + "'");
}

sim::EventId CommandQueue::AddGraphNode(sim::CmdKind kind, std::string label,
                                        double seconds, int lane) {
  std::vector<sim::EventId> deps;
  if (async_) {
    deps = std::move(pending_wait_);
    pending_wait_.clear();
  } else if (last_event_ != sim::kNullEvent) {
    deps.push_back(last_event_);
  }
  last_event_ = graph_.Add(kind, std::move(label), seconds, lane, deps);
  return last_event_;
}

sim::EventId CommandQueue::EnqueueBarrier() {
  std::vector<sim::EventId> deps;
  if (async_) {
    // clEnqueueBarrier waits for everything previously submitted.
    deps.resize(graph_.size());
    for (sim::EventId id = 0; id < deps.size(); ++id) deps[id] = id;
    pending_wait_.clear();
  } else if (last_event_ != sim::kNullEvent) {
    deps.push_back(last_event_);
  }
  last_event_ = graph_.Add(sim::CmdKind::kBarrier, "barrier", 0.0,
                           sim::kLaneHost, deps);
  return last_event_;
}

StatusOr<double> CommandQueue::ScheduledSeconds() const {
  if (graph_.empty()) return 0.0;
  obs::Recorder* recorder = context_->recorder_;
  obs::HostProf::PhaseSpan schedule_span(
      recorder != nullptr ? recorder->host_prof() : nullptr,
      obs::HostPhase::kSchedule);
  StatusOr<sim::ScheduleResult> result = sim::ScheduleEvents(graph_);
  if (!result.ok()) return result.status();
  return result->makespan_sec;
}

Status CommandQueue::RecordScheduledGraph(const std::string& label) {
  obs::Recorder* recorder = context_->recorder_;
  if (recorder == nullptr || graph_.empty()) return Status::Ok();
  obs::HostProf::PhaseSpan schedule_span(recorder->host_prof(),
                                         obs::HostPhase::kSchedule);
  StatusOr<sim::ScheduleResult> schedule = sim::ScheduleEvents(graph_);
  if (!schedule.ok()) return schedule.status();
  const std::vector<bool> critical = sim::CriticalPathNodes(graph_);

  obs::GraphRecord record;
  record.label = label;
  record.makespan_sec = schedule->makespan_sec;
  record.serial_sec = schedule->serial_sec;
  record.critical_path_sec = schedule->critical_path_sec;
  record.lane_busy_sec = schedule->lane_busy_sec;

  // start/finish indexed by event id (`order` is retirement-sorted).
  std::vector<double> start(graph_.size(), 0.0);
  std::vector<double> finish(graph_.size(), 0.0);
  for (const sim::ScheduledEvent& ev : schedule->order) {
    start[ev.id] = ev.start_sec;
    finish[ev.id] = ev.finish_sec;
  }
  record.nodes.reserve(graph_.size());
  for (const sim::EventNode& node : graph_.nodes()) {
    obs::GraphNodeRecord out;
    out.label = node.label;
    out.lane = node.lane;
    out.start_sec = start[node.id];
    out.finish_sec = finish[node.id];
    out.deps.assign(node.deps.begin(), node.deps.end());
    out.critical = critical[node.id];
    record.nodes.push_back(std::move(out));
  }
  recorder->AddGraph(std::move(record));
  return Status::Ok();
}

Event CommandQueue::HostCopyEvent(Event::Kind kind, std::uint64_t bytes,
                                  double overhead) {
  Event event;
  event.kind = kind;
  event.seconds =
      overhead + static_cast<double>(bytes) / context_->host_.memcpy_bytes_per_sec;
  event.profile.seconds = event.seconds;
  event.profile.cpu_busy[0] = 1.0;  // the A15 performs the copy
  event.profile.gpu_on = true;      // context holds the GPU powered
  event.profile.dram_bytes = 2 * bytes;  // read source + write destination
  total_seconds_ += event.seconds;
  return event;
}

StatusOr<Event> CommandQueue::EnqueueWriteBuffer(Buffer& buffer,
                                                 const void* src,
                                                 std::uint64_t bytes,
                                                 std::uint64_t offset) {
  if (src == nullptr || offset + bytes > buffer.size()) {
    return InvalidArgumentError("CL_INVALID_VALUE: bad write range");
  }
  MALI_RETURN_IF_ERROR(MaybeInject(fault::FaultSite::kWrite, "write"));
  std::memcpy(buffer.storage_.data() + offset, src, bytes);
  Event event = HostCopyEvent(Event::Kind::kWrite, bytes,
                              context_->host_.enqueue_overhead_sec);
  event.node = AddGraphNode(sim::CmdKind::kWrite, "write", event.seconds,
                            sim::kLaneHost);
  RecordCommand("write", "", bytes, event.seconds);
  return event;
}

StatusOr<Event> CommandQueue::EnqueueReadBuffer(Buffer& buffer, void* dst,
                                                std::uint64_t bytes,
                                                std::uint64_t offset) {
  if (dst == nullptr || offset + bytes > buffer.size()) {
    return InvalidArgumentError("CL_INVALID_VALUE: bad read range");
  }
  MALI_RETURN_IF_ERROR(MaybeInject(fault::FaultSite::kRead, "read"));
  std::memcpy(dst, buffer.storage_.data() + offset, bytes);
  Event event = HostCopyEvent(Event::Kind::kRead, bytes,
                              context_->host_.enqueue_overhead_sec);
  event.node = AddGraphNode(sim::CmdKind::kRead, "read", event.seconds,
                            sim::kLaneHost);
  RecordCommand("read", "", bytes, event.seconds);
  return event;
}

StatusOr<Event> CommandQueue::EnqueueCopyBuffer(Buffer& src, Buffer& dst,
                                                std::uint64_t bytes,
                                                std::uint64_t src_offset,
                                                std::uint64_t dst_offset) {
  if (src_offset + bytes > src.size() || dst_offset + bytes > dst.size()) {
    return InvalidArgumentError("CL_INVALID_VALUE: bad copy range");
  }
  MALI_RETURN_IF_ERROR(MaybeInject(fault::FaultSite::kCopy, "copy"));
  std::memcpy(dst.storage_.data() + dst_offset,
              src.storage_.data() + src_offset, bytes);
  // Device-side copy: the GPU streams it at (roughly) DRAM read+write
  // bandwidth without occupying the host CPU.
  const mali::MaliMemoryConfig mem;
  const double bw = mem.dram.peak_bandwidth_bytes_per_sec *
                    mem.dram.streaming_efficiency / 2.0;  // read + write
  Event event;
  event.kind = Event::Kind::kWrite;
  event.seconds =
      context_->host_.enqueue_overhead_sec + static_cast<double>(bytes) / bw;
  event.profile.seconds = event.seconds;
  event.profile.gpu_on = true;
  event.profile.gpu_core_busy[0] = 0.5;  // one core's LS pipe streams it
  event.profile.dram_bytes = 2 * bytes;
  total_seconds_ += event.seconds;
  event.node = AddGraphNode(sim::CmdKind::kCopy, "copy", event.seconds,
                            sim::kLaneTransfer);
  RecordCommand("copy", "", bytes, event.seconds);
  return event;
}

StatusOr<Event> CommandQueue::EnqueueFillBuffer(Buffer& buffer,
                                                const void* pattern,
                                                std::uint64_t pattern_bytes,
                                                std::uint64_t bytes,
                                                std::uint64_t offset) {
  if (pattern == nullptr || pattern_bytes == 0 ||
      bytes % pattern_bytes != 0 || offset + bytes > buffer.size()) {
    return InvalidArgumentError("CL_INVALID_VALUE: bad fill");
  }
  MALI_RETURN_IF_ERROR(MaybeInject(fault::FaultSite::kFill, "fill"));
  for (std::uint64_t pos = 0; pos < bytes; pos += pattern_bytes) {
    std::memcpy(buffer.storage_.data() + offset + pos, pattern, pattern_bytes);
  }
  const mali::MaliMemoryConfig mem;
  const double bw =
      mem.dram.peak_bandwidth_bytes_per_sec * mem.dram.streaming_efficiency;
  Event event;
  event.kind = Event::Kind::kWrite;
  event.seconds =
      context_->host_.enqueue_overhead_sec + static_cast<double>(bytes) / bw;
  event.profile.seconds = event.seconds;
  event.profile.gpu_on = true;
  event.profile.gpu_core_busy[0] = 0.5;
  event.profile.dram_bytes = bytes;
  total_seconds_ += event.seconds;
  event.node = AddGraphNode(sim::CmdKind::kFill, "fill", event.seconds,
                            sim::kLaneTransfer);
  RecordCommand("fill", "", bytes, event.seconds);
  return event;
}

StatusOr<void*> CommandQueue::MapBuffer(Buffer& buffer, Event* event) {
  if (buffer.mapped_) {
    return FailedPreconditionError("CL_INVALID_OPERATION: already mapped");
  }
  MALI_RETURN_IF_ERROR(MaybeInject(fault::FaultSite::kMap, "map"));
  buffer.mapped_ = true;
  if ((buffer.flags_ & kMemUseHostPtr) != 0) {
    // The app mapped a malloc-backed buffer: the driver must copy the
    // device shadow out to the app allocation (§III-A: this path does not
    // solve "the additional copy issue").
    std::memcpy(buffer.user_ptr_, buffer.storage_.data(), buffer.size_);
    Event e = HostCopyEvent(Event::Kind::kMap, buffer.size_,
                            context_->host_.map_overhead_sec);
    e.node = AddGraphNode(sim::CmdKind::kMap, "map", e.seconds,
                          sim::kLaneHost);
    RecordCommand("map", "copy-out", buffer.size_, e.seconds);
    if (event != nullptr) *event = e;
    return buffer.user_ptr_;
  }
  // Unified memory: cache maintenance only, no copy.
  Event e;
  e.kind = Event::Kind::kMap;
  e.seconds = context_->host_.map_overhead_sec;
  e.profile.seconds = e.seconds;
  e.profile.cpu_busy[0] = 1.0;
  e.profile.gpu_on = true;
  total_seconds_ += e.seconds;
  e.node = AddGraphNode(sim::CmdKind::kMap, "map", e.seconds, sim::kLaneHost);
  RecordCommand("map", "zero-copy", 0, e.seconds);
  if (event != nullptr) *event = e;
  return buffer.storage_.data();
}

Status CommandQueue::UnmapBuffer(Buffer& buffer, void* mapped, Event* event) {
  if (!buffer.mapped_) {
    return FailedPreconditionError("CL_INVALID_OPERATION: not mapped");
  }
  MALI_RETURN_IF_ERROR(MaybeInject(fault::FaultSite::kUnmap, "unmap"));
  if ((buffer.flags_ & kMemUseHostPtr) != 0) {
    if (mapped != buffer.user_ptr_) {
      return InvalidArgumentError("CL_INVALID_VALUE: wrong mapped pointer");
    }
    buffer.mapped_ = false;
    // Propagate app writes back into the device shadow.
    std::memcpy(buffer.storage_.data(), buffer.user_ptr_, buffer.size_);
    Event e = HostCopyEvent(Event::Kind::kUnmap, buffer.size_,
                            context_->host_.unmap_overhead_sec);
    e.node = AddGraphNode(sim::CmdKind::kUnmap, "unmap", e.seconds,
                          sim::kLaneHost);
    RecordCommand("unmap", "copy-in", buffer.size_, e.seconds);
    if (event != nullptr) *event = e;
    return Status::Ok();
  }
  if (mapped != static_cast<void*>(buffer.storage_.data())) {
    return InvalidArgumentError("CL_INVALID_VALUE: wrong mapped pointer");
  }
  buffer.mapped_ = false;
  Event e;
  e.kind = Event::Kind::kUnmap;
  e.seconds = context_->host_.unmap_overhead_sec;
  e.profile.seconds = e.seconds;
  e.profile.cpu_busy[0] = 1.0;
  e.profile.gpu_on = true;
  total_seconds_ += e.seconds;
  e.node =
      AddGraphNode(sim::CmdKind::kUnmap, "unmap", e.seconds, sim::kLaneHost);
  RecordCommand("unmap", "zero-copy", 0, e.seconds);
  if (event != nullptr) *event = e;
  return Status::Ok();
}

StatusOr<Event> CommandQueue::EnqueueNDRange(Kernel& kernel,
                                             std::uint32_t work_dim,
                                             const std::uint64_t* global,
                                             const std::uint64_t* local) {
  if (work_dim < 1 || work_dim > 3 || global == nullptr) {
    return InvalidArgumentError("CL_INVALID_VALUE: bad work dimensions");
  }
  // Enqueue span: self time is the host-side driver work (validation,
  // binding, bookkeeping); the device's execute span nests inside and is
  // charged as child time, so the hotspot table separates the two.
  obs::Recorder* recorder = context_->recorder_;
  obs::HostProf::PhaseSpan enqueue_span(
      recorder != nullptr ? recorder->host_prof() : nullptr,
      obs::HostPhase::kEnqueue);
  kir::LaunchConfig config;
  config.work_dim = work_dim;
  std::uint64_t driver_budget = 64;  // the heuristic's total group size cap
  for (std::uint32_t d = 0; d < work_dim; ++d) {
    if (global[d] == 0) {
      return InvalidArgumentError("CL_INVALID_VALUE: zero global size");
    }
    config.global_size[d] = global[d];
    if (local != nullptr) {
      config.local_size[d] = local[d];
    } else {
      config.local_size[d] =
          mali::MaliT604Device::DriverPickLocalSize(global[d], driver_budget);
      driver_budget /= config.local_size[d];
    }
  }
  if (local == nullptr) {
    MALI_LOG_DEBUG(
        "clEnqueueNDRangeKernel('%s'): driver picked local size "
        "%llu x %llu x %llu for global %llu x %llu x %llu",
        kernel.name().c_str(),
        static_cast<unsigned long long>(config.local_size[0]),
        static_cast<unsigned long long>(config.local_size[1]),
        static_cast<unsigned long long>(config.local_size[2]),
        static_cast<unsigned long long>(config.global_size[0]),
        static_cast<unsigned long long>(config.global_size[1]),
        static_cast<unsigned long long>(config.global_size[2]));
  }
  if (config.work_group_size() > Context::kMaxWorkGroupSize) {
    return InvalidArgumentError(
        "CL_INVALID_WORK_GROUP_SIZE: work-group size exceeds device maximum");
  }
  if (!config.IsValid()) {
    return InvalidArgumentError(
        "CL_INVALID_WORK_GROUP_SIZE: global size is not a multiple of the "
        "local size");
  }

  StatusOr<kir::Bindings> bindings = kernel.MakeBindings();
  if (!bindings.ok()) return bindings.status();
  MALI_RETURN_IF_ERROR(MaybeInject(fault::FaultSite::kNDRange, kernel.name()));

  Event event;
  event.kind = Event::Kind::kKernel;
  // Uniform dispatch through the sim::Device backend the context selects:
  // the Mali model consumes kernel.compiled_, the A15 interprets
  // kernel.source_ on both cores, and the hetero backend splits the launch.
  StatusOr<sim::DeviceRunResult> run = context_->backend().RunKernel(
      {kernel.source_, kernel.compiled_}, config, *std::move(bindings));
  if (!run.ok()) {
    // The default backend's CL error strings appear verbatim in golden
    // outputs; the alternate backends annotate so the failure names the
    // device it came from (round-trips through BackendFromStatus).
    if (context_->type_ == DeviceType::kMali) return run.status();
    return AnnotateStatusWithBackend(run.status(), context_->type_);
  }
  event.seconds = run->seconds + context_->host_.enqueue_overhead_sec;
  event.profile = run->profile;
  event.profile.seconds = event.seconds;
  event.run = std::move(run->run);
  event.stats = std::move(run->stats);
  event.stats.Set("ocl.local_size0", static_cast<double>(config.local_size[0]));
  event.stats.Set("ocl.groups", static_cast<double>(config.total_groups()));
  // Counts 1 per kernel event so that ratio-type stats (seq fraction,
  // occupancy) can be re-averaged after a MergeFrom across launches.
  event.stats.Set("ocl.launches", 1.0);
  total_seconds_ += event.seconds;
  event.node = AddGraphNode(sim::CmdKind::kKernel, kernel.name(),
                            event.seconds, sim::kLaneCompute);
  RecordCommand("ndrange", kernel.name(), 0, event.seconds);
  return event;
}

}  // namespace malisim::ocl
