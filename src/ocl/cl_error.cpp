#include "ocl/cl_error.h"

#include <string>

namespace malisim::ocl {

namespace {
std::string BackendPrefix(sim::BackendKind kind) {
  return "[backend:" + std::string(sim::BackendName(kind)) + "] ";
}
}  // namespace

std::string_view ClErrorName(ClError err) {
  switch (err) {
    case ClError::kSuccess:
      return "CL_SUCCESS";
    case ClError::kDeviceNotFound:
      return "CL_DEVICE_NOT_FOUND";
    case ClError::kOutOfResources:
      return "CL_OUT_OF_RESOURCES";
    case ClError::kMemObjectAllocationFailure:
      return "CL_MEM_OBJECT_ALLOCATION_FAILURE";
    case ClError::kBuildProgramFailure:
      return "CL_BUILD_PROGRAM_FAILURE";
    case ClError::kMapFailure:
      return "CL_MAP_FAILURE";
    case ClError::kInvalidValue:
      return "CL_INVALID_VALUE";
    case ClError::kInvalidBufferSize:
      return "CL_INVALID_BUFFER_SIZE";
    case ClError::kInvalidKernelArgs:
      return "CL_INVALID_KERNEL_ARGS";
    case ClError::kInvalidWorkGroupSize:
      return "CL_INVALID_WORK_GROUP_SIZE";
    case ClError::kInvalidWorkItemSize:
      return "CL_INVALID_WORK_ITEM_SIZE";
    case ClError::kInvalidOperation:
      return "CL_INVALID_OPERATION";
  }
  return "CL_UNKNOWN_ERROR";
}

bool ClErrorFromName(std::string_view name, ClError* out) {
  for (const ClError err : kAllClErrors) {
    if (ClErrorName(err) == name) {
      *out = err;
      return true;
    }
  }
  return false;
}

ClError ClErrorFromStatus(const Status& status) {
  switch (status.code()) {
    case ErrorCode::kOk:
      return ClError::kSuccess;
    case ErrorCode::kResourceExhausted:
      return ClError::kOutOfResources;
    case ErrorCode::kBuildFailure:
      return ClError::kBuildProgramFailure;
    case ErrorCode::kUnavailable:
    case ErrorCode::kDeadlineExceeded:
    case ErrorCode::kOverloaded:
      // Transient driver hiccups, watchdog expirations and admission-shed
      // requests all surface as the driver's catch-all resource error.
      return ClError::kOutOfResources;
    case ErrorCode::kAllocationFailure:
      return ClError::kMemObjectAllocationFailure;
    case ErrorCode::kInvalidArgument:
    case ErrorCode::kOutOfRange:
      return ClError::kInvalidValue;
    case ErrorCode::kNotFound:
      return ClError::kDeviceNotFound;
    case ErrorCode::kFailedPrecondition:
      return ClError::kInvalidOperation;
    default:
      return ClError::kInvalidValue;
  }
}

Status AnnotateStatusWithBackend(const Status& status, sim::BackendKind kind) {
  if (status.ok()) return status;
  if (BackendFromStatus(status).has_value()) return status;
  return Status(status.code(), BackendPrefix(kind) + status.message());
}

std::optional<sim::BackendKind> BackendFromStatus(const Status& status) {
  const std::string& message = status.message();
  for (const sim::BackendKind kind : sim::kAllBackendKinds) {
    const std::string prefix = BackendPrefix(kind);
    if (message.compare(0, prefix.size(), prefix) == 0) return kind;
  }
  return std::nullopt;
}

}  // namespace malisim::ocl
