#include "serve/job.h"

#include <iterator>
#include <utility>

#include "common/json.h"

namespace malisim::serve {

bool ParseVariant(std::string_view name, hpc::Variant* out) {
  struct Spelling {
    std::string_view name;
    hpc::Variant variant;
  };
  static constexpr Spelling kSpellings[] = {
      {"serial", hpc::Variant::kSerial},
      {"openmp", hpc::Variant::kOpenMP},
      {"opencl", hpc::Variant::kOpenCL},
      {"openclopt", hpc::Variant::kOpenCLOpt},
      {"opencl-opt", hpc::Variant::kOpenCLOpt},
      {"hetero", hpc::Variant::kHetero},
  };
  for (const Spelling& s : kSpellings) {
    if (s.name == name) {
      *out = s.variant;
      return true;
    }
  }
  // Display names ("OpenCL Opt") round-trip too.
  for (hpc::Variant v : hpc::kAllVariantsWithHetero) {
    if (hpc::VariantName(v) == name) {
      *out = v;
      return true;
    }
  }
  return false;
}

std::string_view VariantKey(hpc::Variant v) {
  switch (v) {
    case hpc::Variant::kSerial:
      return "serial";
    case hpc::Variant::kOpenMP:
      return "openmp";
    case hpc::Variant::kOpenCL:
      return "opencl";
    case hpc::Variant::kOpenCLOpt:
      return "openclopt";
    case hpc::Variant::kHetero:
      return "hetero";
  }
  return "?";
}

std::string NormalizeTenant(std::string_view tenant) {
  return tenant.empty() ? "default" : std::string(tenant);
}

std::string_view JobStateName(JobState s) {
  switch (s) {
    case JobState::kOk:
      return "ok";
    case JobState::kDegraded:
      return "degraded";
    case JobState::kShed:
      return "shed";
    case JobState::kDeadlineExceeded:
      return "deadline-exceeded";
    case JobState::kFailed:
      return "failed";
  }
  return "?";
}

StatusOr<JobSpec> ParseJobLine(std::string_view line) {
  StatusOr<JsonValue> root = ParseJson(line);
  if (!root.ok()) return root.status();
  if (!root->is_object()) {
    return InvalidArgumentError("job line is not a JSON object");
  }

  JobSpec job;
  job.benchmark = root->StringOr("benchmark", "");
  if (job.benchmark.empty()) {
    return InvalidArgumentError("job line lacks \"benchmark\"");
  }
  job.tenant = NormalizeTenant(root->StringOr("tenant", ""));

  const std::string sizes = root->StringOr("sizes", "quick");
  if (sizes == "quick") {
    job.sizes = hpc::ProblemSizes::Quick();
  } else if (sizes == "full") {
    job.sizes = hpc::ProblemSizes();
  } else {
    return InvalidArgumentError("unknown sizes preset '" + sizes +
                                "' (want quick|full)");
  }

  if (const JsonValue* fp64 = root->Find("fp64"); fp64 != nullptr) {
    job.fp64 = fp64->bool_value;
  }
  job.seed = static_cast<std::uint64_t>(root->NumberOr("seed", 0.0));

  const std::string device = root->StringOr("device", "mali");
  if (!sim::ParseBackend(device, &job.device)) {
    return InvalidArgumentError("unknown device '" + device +
                                "' (want mali|a15|hetero)");
  }
  const std::string variant = root->StringOr("variant", "openclopt");
  if (!ParseVariant(variant, &job.variant)) {
    return InvalidArgumentError(
        "unknown variant '" + variant +
        "' (want serial|openmp|opencl|openclopt|hetero)");
  }
  job.hetero_ratio = root->NumberOr("hetero_ratio", -1.0);
  job.deadline_sec = root->NumberOr("deadline_sec", 0.0);
  if (job.deadline_sec < 0.0) {
    return InvalidArgumentError("deadline_sec must be >= 0");
  }
  return job;
}

StatusOr<std::vector<JobSpec>> ParseJobFile(std::string_view text,
                                            std::uint64_t first_id) {
  std::vector<JobSpec> jobs;
  std::size_t pos = 0;
  int line_no = 0;
  while (pos <= text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) nl = text.size();
    std::string_view line = text.substr(pos, nl - pos);
    pos = nl + 1;
    ++line_no;
    // Trim whitespace; skip blanks and '#' comments.
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t' ||
                             line.front() == '\r')) {
      line.remove_prefix(1);
    }
    while (!line.empty() && (line.back() == ' ' || line.back() == '\t' ||
                             line.back() == '\r')) {
      line.remove_suffix(1);
    }
    if (line.empty() || line.front() == '#') continue;
    StatusOr<JobSpec> job = ParseJobLine(line);
    if (!job.ok()) {
      return InvalidArgumentError("job file line " + std::to_string(line_no) +
                                  ": " + job.status().ToString());
    }
    job->id = first_id + jobs.size();
    jobs.push_back(*std::move(job));
  }
  return jobs;
}

std::vector<JobSpec> GenerateLoad(int count, std::uint64_t seed) {
  const std::vector<std::string> benchmarks = hpc::RegisteredBenchmarks();
  // The mix deliberately includes fp64 amcd (the erratum cell) and hetero
  // jobs: a realistic batch has jobs that can only finish by degrading.
  static constexpr hpc::Variant kMix[] = {
      hpc::Variant::kOpenCLOpt, hpc::Variant::kOpenCL,
      hpc::Variant::kHetero,    hpc::Variant::kOpenCLOpt,
      hpc::Variant::kOpenMP,    hpc::Variant::kOpenCLOpt,
  };
  static constexpr int kMixSize = static_cast<int>(std::size(kMix));

  std::vector<JobSpec> jobs;
  jobs.reserve(static_cast<std::size_t>(count > 0 ? count : 0));
  for (int i = 0; i < count; ++i) {
    JobSpec job;
    job.id = static_cast<std::uint64_t>(i);
    job.benchmark = benchmarks[static_cast<std::size_t>(i) %
                               benchmarks.size()];
    job.sizes = hpc::ProblemSizes::Quick();
    job.variant = kMix[i % kMixSize];
    job.fp64 = (i % 5) == 3;
    job.seed = seed + static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ULL;
    job.device = sim::BackendKind::kMali;
    job.tenant = (i % 3 == 0) ? "batch-a" : (i % 3 == 1 ? "batch-b" : "adhoc");
    jobs.push_back(std::move(job));
  }
  return jobs;
}

}  // namespace malisim::serve
