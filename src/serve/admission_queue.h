// Bounded admission queue with explicit backpressure (DESIGN.md §14).
//
// Shed contract: TryPush on a full (or closed) queue fails IMMEDIATELY
// with ErrorCode::kOverloaded — submission never blocks, no matter how
// far behind the workers are. Shedding the newest arrival (rather than
// evicting queued work) keeps every previously-made admission promise:
// once a job is accepted it will be executed or explicitly terminated,
// never silently displaced.
//
// Pop blocks until an item arrives or the queue is closed and drained —
// the graceful-shutdown path: Close() wakes every worker, the workers
// finish what is already queued (drain) and exit when Pop returns false.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <string>
#include <utility>

#include "common/status.h"

namespace malisim::serve {

template <typename T>
class AdmissionQueue {
 public:
  explicit AdmissionQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Non-blocking admission. Overloaded when full, FailedPrecondition
  /// when closed.
  Status TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) {
        return FailedPreconditionError("queue closed: draining");
      }
      if (items_.size() >= capacity_) {
        return OverloadedError("admission queue full (" +
                               std::to_string(capacity_) + " queued)");
      }
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return Status::Ok();
  }

  /// Blocks until an item is available (true) or the queue is closed and
  /// empty (false — the worker's signal to exit).
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Stops admission; queued items still drain through Pop.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace malisim::serve
