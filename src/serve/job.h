// Job model for malisim-serve (DESIGN.md §14): what one unit of batch
// work is, how it arrives (a JSONL job file or the built-in load driver)
// and every terminal state a job can end in.
//
// Terminal-state contract (the zero-lost-jobs invariant the soak tests
// assert): every submitted job ends in exactly one of kOk, kDegraded,
// kShed, kDeadlineExceeded or kFailed, and the per-state counts sum to
// the number of submissions. There is no "lost" or "hung" state to end
// in — a job the engine accepted is run (possibly down the degradation
// ladder) or terminated with an explicit reason, and a job the engine
// refused is a kShed result carrying ErrorCode::kOverloaded.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "hpc/benchmark.h"
#include "hpc/problem_sizes.h"
#include "sim/device.h"

namespace malisim::serve {

/// Parses a variant from its CLI spelling ("serial", "openmp", "opencl",
/// "openclopt", "hetero") or its display name ("OpenCL Opt", ...). False
/// on unknown names.
bool ParseVariant(std::string_view name, hpc::Variant* out);

/// CLI spelling of a variant ("openclopt"), the inverse of ParseVariant's
/// preferred form. Lower-case, no spaces — safe inside metric names.
std::string_view VariantKey(hpc::Variant v);

/// Canonical tenant accounting key: the empty string and "default" are the
/// same tenant. Applied at parse time, at metrics aggregation and in every
/// report, so a job file mixing `"tenant":""`, omitted tenants and
/// `"tenant":"default"` can never split one tenant's stats across buckets.
std::string NormalizeTenant(std::string_view tenant);

/// One unit of work: a benchmark run at a problem size, precision, device
/// and variant, under a seed. Ids are dense and unique per engine run —
/// the engine mixes them into the job's fault-plan seed, which is what
/// makes single-job replay from a soak bit-identical.
struct JobSpec {
  std::uint64_t id = 0;
  /// Accounting bucket for per-tenant metrics ("" = the default tenant).
  std::string tenant;
  std::string benchmark;
  hpc::ProblemSizes sizes;
  bool fp64 = false;
  std::uint64_t seed = 0;
  sim::BackendKind device = sim::BackendKind::kMali;
  hpc::Variant variant = hpc::Variant::kOpenCLOpt;
  /// GPU share for hetero execution; negative = self-tuning default.
  double hetero_ratio = -1.0;
  /// Modelled-seconds budget for the whole job (all rungs and accounted
  /// backoff). 0 = the engine default.
  double deadline_sec = 0.0;
};

/// Every way a job can end. Keep JobStateName in sync.
enum class JobState : std::uint8_t {
  kOk = 0,           // ran at the requested variant, validated
  kDegraded,         // ran and validated, but on a lower ladder rung
  kShed,             // admission control refused it (Overloaded)
  kDeadlineExceeded, // modelled budget ran out before a rung succeeded
  kFailed,           // non-degradable error (fatal taxonomy)
};
inline constexpr int kNumJobStates = 5;

std::string_view JobStateName(JobState s);

/// Terminal record for one job. Exactly one is produced per submission.
struct JobResult {
  std::uint64_t id = 0;
  std::string tenant;
  JobState state = JobState::kFailed;
  /// What the job asked for and what actually ran (equal unless degraded;
  /// meaningless for kShed).
  hpc::Variant requested = hpc::Variant::kOpenCLOpt;
  hpc::Variant ran = hpc::Variant::kOpenCLOpt;
  /// Modelled seconds of the successful run (0 when none succeeded),
  /// and the total modelled seconds the job consumed across every rung
  /// attempt plus accounted retry backoff (what the deadline meters).
  double seconds = 0.0;
  double consumed_sec = 0.0;
  double energy_j = 0.0;
  int attempts = 0;      // variant-level attempts across rungs
  int retries = 0;       // transient retries summed over attempts
  double backoff_sec = 0.0;
  /// True when a circuit breaker skipped at least one rung for this job.
  /// Replay of such a job is not expected to be bit-identical — breaker
  /// state is load-dependent by design.
  bool breaker_rerouted = false;
  /// Status of the terminal failure (kShed/kDeadlineExceeded/kFailed);
  /// empty for successes.
  std::string error;
  std::string note;
};

/// Parses one JSONL job line:
///   {"benchmark":"spmv","variant":"openclopt","device":"mali",
///    "fp64":false,"seed":7,"tenant":"batch-a","deadline_sec":2.5,
///    "sizes":"quick","hetero_ratio":0.5}
/// Only "benchmark" is required. "sizes" is a preset name ("quick" |
/// "full"). The caller assigns `id`. InvalidArgument on malformed JSON or
/// unknown enum spellings.
StatusOr<JobSpec> ParseJobLine(std::string_view line);

/// Parses a whole JSONL document (one job per non-empty, non-'#' line),
/// assigning dense ids from `first_id`. Reports the first bad line with
/// its 1-based number.
StatusOr<std::vector<JobSpec>> ParseJobFile(std::string_view text,
                                            std::uint64_t first_id = 0);

/// Built-in load driver: `count` jobs cycling deterministically over the
/// registered benchmarks, the ladder variants, both precisions and all
/// backends — same `count` and `seed`, same jobs, forever. Quick problem
/// sizes. fp64 is only paired with benchmarks/variants the paper runs in
/// fp64 (the amcd erratum cell stays in: serve must handle build-failure
/// jobs, that is the point of the ladder).
std::vector<JobSpec> GenerateLoad(int count, std::uint64_t seed);

}  // namespace malisim::serve
