#include "serve/breaker.h"

namespace malisim::serve {

std::string_view BreakerStateName(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "?";
}

bool CircuitBreaker::Allow() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (cooldown_left_ <= 0) {
        // `open_cooldown` refusals have elapsed: this caller is the probe.
        state_ = BreakerState::kHalfOpen;
        probe_in_flight_ = true;
        return true;
      }
      --cooldown_left_;
      return false;
    case BreakerState::kHalfOpen:
      if (!probe_in_flight_) {
        probe_in_flight_ = true;
        return true;
      }
      return false;  // one probe at a time; everyone else routes down
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
  state_ = BreakerState::kClosed;
}

void CircuitBreaker::RecordFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      if (++consecutive_failures_ >= config_.failure_threshold) {
        state_ = BreakerState::kOpen;
        cooldown_left_ = config_.open_cooldown;
        ++trips_;
      }
      break;
    case BreakerState::kHalfOpen:
      // Probe failed: reopen, restart the cooldown.
      state_ = BreakerState::kOpen;
      cooldown_left_ = config_.open_cooldown;
      probe_in_flight_ = false;
      ++trips_;
      break;
    case BreakerState::kOpen:
      // A last-resort Serial attempt (or a straggler admitted before the
      // trip) failing while open: nothing further to trip.
      break;
  }
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

std::uint64_t CircuitBreaker::trips() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trips_;
}

}  // namespace malisim::serve
