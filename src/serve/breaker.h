// Per-rung circuit breakers (DESIGN.md §14).
//
// One breaker guards each degradation-ladder rung (hetero, openclopt,
// opencl, openmp, serial). State machine per breaker:
//
//   closed --(failure_threshold consecutive degradable failures)--> open
//   open   --(open_cooldown Allow() refusals elapsed)--> half-open
//   half-open --(probe succeeds)--> closed
//   half-open --(probe fails)--> open (cooldown restarts)
//
// While a rung's breaker is open, the engine routes jobs straight past it
// to the next rung down — turning a persistently broken backend from a
// per-job discovery (every job pays the failure) into a routing decision.
// The cooldown is COUNT-based (refused Allow() calls), not wall-clock:
// serve determinism is per-job, and a load-dependent clock would make the
// trip/half-open/recover cycle untestable. In half-open exactly one
// in-flight probe is allowed; other jobs keep routing down until the
// probe reports back.
//
// The Serial rung is still guarded (its breaker records outcomes) but the
// engine always attempts it as the last resort regardless of breaker
// state — there is nothing below it to route to, and refusing it would
// turn an open breaker into lost jobs.
//
// Thread safety: all methods are internally locked; Allow+Record pairs
// from concurrent workers interleave arbitrarily, which is fine — the
// breaker is a load-shedding heuristic, not a determinism surface.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string_view>

#include "hpc/benchmark.h"

namespace malisim::serve {

enum class BreakerState : std::uint8_t { kClosed = 0, kOpen, kHalfOpen };

std::string_view BreakerStateName(BreakerState s);

struct BreakerConfig {
  /// Consecutive degradable failures that trip closed -> open.
  int failure_threshold = 3;
  /// Allow() refusals in open before the next caller becomes the
  /// half-open probe.
  int open_cooldown = 8;
};

/// Breaker for one ladder rung.
class CircuitBreaker {
 public:
  CircuitBreaker() = default;
  explicit CircuitBreaker(const BreakerConfig& config) : config_(config) {}

  /// Reconfigures an idle breaker (before any traffic). Not synchronized
  /// against concurrent Allow/Record calls.
  void set_config(const BreakerConfig& config) { config_ = config; }

  /// May the caller attempt this rung? In open state this counts one
  /// cooldown tick and refuses; after `open_cooldown` refusals the next
  /// caller is admitted as the half-open probe.
  bool Allow();

  /// Reports the outcome of an attempt this breaker allowed.
  void RecordSuccess();
  void RecordFailure();

  BreakerState state() const;
  /// Total closed->open transitions (metrics).
  std::uint64_t trips() const;

 private:
  BreakerConfig config_;
  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  int cooldown_left_ = 0;
  bool probe_in_flight_ = false;
  std::uint64_t trips_ = 0;
};

/// The ladder's breakers, indexed by hpc::Variant.
class BreakerBoard {
 public:
  BreakerBoard() = default;
  explicit BreakerBoard(const BreakerConfig& config) {
    for (auto& b : breakers_) b.set_config(config);
  }

  CircuitBreaker& ForVariant(hpc::Variant v) {
    return breakers_[static_cast<std::size_t>(v)];
  }
  const CircuitBreaker& ForVariant(hpc::Variant v) const {
    return breakers_[static_cast<std::size_t>(v)];
  }

 private:
  std::array<CircuitBreaker, 5> breakers_;
};

}  // namespace malisim::serve
