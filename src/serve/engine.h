// ServeEngine: the fault-tolerant sim-as-a-service batch engine behind
// malisim-serve (DESIGN.md §14).
//
// Shape: submissions hash by job id onto one of `shards` bounded
// admission queues, each drained by its own pool of worker threads.
// Submission never blocks — a full shard sheds the newest arrival with a
// typed Overloaded status (see admission_queue.h). Each accepted job runs
// through harness::ExecuteJobVariant down the degradation ladder, guarded
// by per-rung circuit breakers and a per-job modelled-seconds deadline.
// Every submission — accepted or shed — ends as exactly one JobResult;
// ServeReport::Consistent() checks that invariant (zero lost jobs).
//
// Deadline semantics: a job's budget is modelled seconds, spent on
// successful run time, failed rungs' watchdog allotments and accounted
// retry backoff. Each rung gets the REMAINING budget as its watchdog and
// its retry cap, so neither a slow kernel nor a transient-fault backoff
// storm can make a job look hung. A success whose cumulative spend
// overruns the budget still reports kDeadlineExceeded — a deadline is a
// promise to the caller, not a suggestion.
//
// Shared caches: all jobs share one mali::CompileCache (pure compile
// results; fault schedules are cache-warmth-independent by construction)
// and, when autotuning is on, one sim::TuningCache plus an in-process
// winner memo so each (benchmark, precision, device) tunes at most once.
//
// Shutdown: BeginShutdown() closes admission (new submissions shed) while
// queued and in-flight jobs drain; Drain() waits for the workers and
// assembles the final report. The SIGINT path in malisim-serve is exactly
// BeginShutdown + Drain.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/sim_options.h"
#include "common/status.h"
#include "mali/compiler_cache.h"
#include "obs/metrics.h"
#include "power/power_model.h"
#include "serve/admission_queue.h"
#include "serve/breaker.h"
#include "serve/job.h"
#include "sim/tuner.h"

namespace malisim::obs {
class TelemetryPlane;
struct JobRungSpan;
}  // namespace malisim::obs

namespace malisim::serve {

struct ServeOptions {
  /// Worker threads per shard.
  int workers_per_shard = 4;
  /// Independent admission queues; jobs hash to a shard by id.
  int shards = 1;
  /// Bounded depth of each shard's queue — the backpressure knob.
  std::size_t queue_depth = 64;
  /// Modelled-seconds budget for jobs that do not carry their own
  /// deadline. 0 = unbounded.
  double default_deadline_sec = 5.0;
  /// Fault configuration. `seed` is the base the per-job schedule seeds
  /// mix from; `watchdog_sec` (when > 0) caps each rung's watchdog below
  /// the job's remaining budget.
  FaultOptions fault;
  power::PowerParams power;
  BreakerConfig breaker;
  /// Tune the kOpenCLOpt rung per (benchmark, precision, device), memoized
  /// process-wide and persisted through `tune_cache` when set.
  bool autotune = false;
  sim::TunerOptions tuner;
  sim::TuningCache* tune_cache = nullptr;
  /// Share pure compile results across jobs (mali::CompileCache).
  bool compile_cache = true;
  /// Optional live telemetry plane (obs/telemetry.h). Must outlive the
  /// engine. When set, the engine feeds it at admission (watermark) and at
  /// every terminal result (sample + per-rung spans), final-flushes and
  /// seals its recorder at drain, and installs a breaker-state prober.
  obs::TelemetryPlane* telemetry = nullptr;
};

/// Everything known when the engine has drained.
struct ServeReport {
  std::uint64_t submitted = 0;
  /// Per-terminal-state counts, indexed by JobState.
  std::array<std::uint64_t, kNumJobStates> state_counts{};
  /// One entry per submission, sorted by job id.
  std::vector<JobResult> results;
  /// Final breaker states and trip counts per ladder rung.
  struct BreakerRow {
    hpc::Variant rung;
    BreakerState state;
    std::uint64_t trips;
  };
  std::vector<BreakerRow> breakers;
  /// Aggregated metrics: deterministic series under "serve/", host
  /// wall-clock under "serve_host/".
  obs::MetricsSnapshot metrics;
  double host_elapsed_sec = 0.0;
  double jobs_per_host_sec = 0.0;
  mali::CompileCache::Stats compile_cache_stats;

  std::uint64_t count(JobState s) const {
    return state_counts[static_cast<std::size_t>(s)];
  }
  /// The zero-lost-jobs invariant: one result per submission, ids unique,
  /// per-state counts summing to `submitted`.
  bool Consistent() const;

  /// Human-readable summary table.
  std::string ToText() const;
  /// "malisim-serve-v1" JSON document (per-job results included when
  /// `include_results`).
  std::string ToJson(bool include_results = true) const;
};

class ServeEngine {
 public:
  explicit ServeEngine(const ServeOptions& options);
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Non-blocking admission. Ok = accepted (a JobResult will exist for it
  /// after Drain); Overloaded = shed, recorded immediately as a kShed
  /// result. Either way the job is accounted — Submit never loses one.
  Status Submit(const JobSpec& job);

  /// Closes admission: queued and in-flight jobs keep draining, new
  /// submissions shed. Idempotent, callable from a signal-watcher thread.
  void BeginShutdown();
  bool shutting_down() const { return shutdown_.load(); }

  /// Closes admission, waits for every worker, assembles the report.
  /// Single-use: the engine cannot accept jobs afterwards.
  ServeReport Drain();

  /// Live queue depth across shards (monitoring; racy by nature).
  std::size_t QueueDepth() const;

 private:
  struct WorkerSlot {
    std::thread thread;
    obs::LogHistogram host_latency;  // per-worker, merged at drain
    std::uint64_t jobs_run = 0;
  };

  void WorkerLoop(int shard, int slot_index);
  /// Runs one job down the ladder. When `spans` is non-null (telemetry
  /// enabled) every rung decision is appended as an exemplar span on the
  /// job's consumed-budget timeline.
  JobResult RunJob(const JobSpec& job, std::vector<obs::JobRungSpan>* spans);
  /// Memoized tuned config for the kOpenCLOpt rung; nullptr when
  /// autotuning is off or tuning failed (fixed paper kernel runs instead).
  const sim::TuningConfig* TunedConfigFor(const JobSpec& job);
  void RecordResult(JobResult result, std::vector<obs::JobRungSpan> spans = {});

  const ServeOptions options_;
  std::vector<std::unique_ptr<AdmissionQueue<JobSpec>>> queues_;
  std::vector<std::vector<WorkerSlot>> workers_;  // [shard][slot]
  BreakerBoard breakers_;
  mali::CompileCache compile_cache_;

  std::atomic<bool> shutdown_{false};
  std::atomic<std::uint64_t> submitted_{0};

  mutable std::mutex results_mu_;
  std::vector<JobResult> results_;

  std::mutex tuning_mu_;
  /// Key "benchmark|fp32|mali" -> winner (nullopt-like: missing = failed,
  /// do not retry every job).
  std::map<std::string, std::unique_ptr<sim::TuningConfig>> tuned_;

  std::chrono::steady_clock::time_point start_;
  bool drained_ = false;
};

}  // namespace malisim::serve
