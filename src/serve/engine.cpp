#include "serve/engine.h"

#include <algorithm>
#include <span>
#include <utility>

#include "common/json.h"
#include "common/log.h"
#include "common/table.h"
#include "fault/retry.h"
#include "harness/serve_exec.h"
#include "harness/tuning.h"
#include "obs/telemetry.h"

namespace malisim::serve {

namespace {

/// Fault-plan seed for one (job, rung) attempt, FNV-mixed like the
/// harness's CellFaultSeed so schedules depend only on (base seed, job id,
/// rung) — never on worker identity, shard or arrival order. That is the
/// whole replay contract: re-running job N alone reproduces its faults.
std::uint64_t JobFaultSeed(std::uint64_t base_seed, std::uint64_t job_id,
                           hpc::Variant rung) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t byte) {
    h ^= byte & 0xffULL;
    h *= 0x100000001b3ULL;
  };
  for (int i = 0; i < 8; ++i) mix(job_id >> (8 * i));
  mix(0xffULL);  // separator
  mix(static_cast<std::uint64_t>(rung));
  return h ^ base_seed ^ 0x5e27eULL;
}

/// The ladder from `requested` down (inclusive).
std::span<const hpc::Variant> LadderFrom(hpc::Variant requested) {
  const std::span<const hpc::Variant> ladder(hpc::kDegradationLadder);
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    if (ladder[i] == requested) return ladder.subspan(i);
  }
  return ladder.last(1);  // unreachable: every variant is a rung
}

/// Appends one rung decision to the job's exemplar span list (no-op when
/// telemetry is off and `spans` is null).
void AddSpan(std::vector<obs::JobRungSpan>* spans, hpc::Variant rung,
             double start_sec, double end_sec, const char* outcome,
             int retries = 0, double backoff_sec = 0.0) {
  if (spans == nullptr) return;
  obs::JobRungSpan span;
  span.rung = std::string(VariantKey(rung));
  span.start_sec = start_sec;
  span.end_sec = end_sec;
  span.outcome = outcome;
  span.retries = retries;
  span.backoff_sec = backoff_sec;
  spans->push_back(std::move(span));
}

}  // namespace

bool ServeReport::Consistent() const {
  if (results.size() != submitted) return false;
  std::uint64_t sum = 0;
  for (const std::uint64_t c : state_counts) sum += c;
  if (sum != submitted) return false;
  std::array<std::uint64_t, kNumJobStates> recount{};
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i > 0 && results[i].id <= results[i - 1].id) return false;  // dups
    const auto s = static_cast<std::size_t>(results[i].state);
    if (s >= static_cast<std::size_t>(kNumJobStates)) return false;
    ++recount[s];
  }
  return recount == state_counts;
}

ServeEngine::ServeEngine(const ServeOptions& options)
    : options_(options), breakers_(options.breaker) {
  const int shards = std::max(1, options_.shards);
  const int workers = std::max(1, options_.workers_per_shard);
  queues_.reserve(static_cast<std::size_t>(shards));
  workers_.resize(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    queues_.push_back(std::make_unique<AdmissionQueue<JobSpec>>(
        std::max<std::size_t>(1, options_.queue_depth)));
    workers_[static_cast<std::size_t>(s)] =
        std::vector<WorkerSlot>(static_cast<std::size_t>(workers));
  }
  if (options_.telemetry != nullptr) {
    // Breaker states are sampled live at each window flush. Load-dependent
    // by nature (see telemetry.h): with breakers disabled it reads
    // "closed" everywhere and snapshots stay byte-identical.
    options_.telemetry->SetStateProber([this] {
      std::vector<std::pair<std::string, std::string>> rows;
      for (hpc::Variant v : hpc::kDegradationLadder) {
        rows.emplace_back(
            std::string(VariantKey(v)),
            std::string(BreakerStateName(breakers_.ForVariant(v).state())));
      }
      return rows;
    });
  }
  start_ = std::chrono::steady_clock::now();
  for (int s = 0; s < shards; ++s) {
    for (int w = 0; w < workers; ++w) {
      workers_[static_cast<std::size_t>(s)][static_cast<std::size_t>(w)]
          .thread = std::thread([this, s, w] { WorkerLoop(s, w); });
    }
  }
}

ServeEngine::~ServeEngine() {
  if (!drained_) {
    BeginShutdown();
    for (auto& shard : workers_) {
      for (WorkerSlot& slot : shard) {
        if (slot.thread.joinable()) slot.thread.join();
      }
    }
  }
  // The plane outlives the engine; its prober must not.
  if (options_.telemetry != nullptr) {
    options_.telemetry->SetStateProber(nullptr);
  }
}

Status ServeEngine::Submit(const JobSpec& job) {
  submitted_.fetch_add(1);
  if (options_.telemetry != nullptr) {
    options_.telemetry->NoteSubmitted(job.id);
  }
  Status admitted;
  if (shutdown_.load()) {
    admitted = OverloadedError("draining: admission closed");
  } else {
    const std::size_t shard = job.id % queues_.size();
    admitted = queues_[shard]->TryPush(job);
    if (!admitted.ok() && admitted.code() != ErrorCode::kOverloaded) {
      // A closed queue surfaces as FailedPrecondition; to the submitter
      // both are the same typed refusal.
      admitted = OverloadedError("draining: admission closed");
    }
  }
  if (!admitted.ok()) {
    JobResult shed;
    shed.id = job.id;
    shed.tenant = job.tenant;
    shed.state = JobState::kShed;
    shed.requested = job.variant;
    shed.ran = job.variant;
    shed.error = admitted.ToString();
    RecordResult(std::move(shed));
  }
  return admitted;
}

void ServeEngine::BeginShutdown() {
  shutdown_.store(true);
  for (auto& queue : queues_) queue->Close();
}

std::size_t ServeEngine::QueueDepth() const {
  std::size_t depth = 0;
  for (const auto& queue : queues_) depth += queue->size();
  return depth;
}

void ServeEngine::WorkerLoop(int shard, int slot_index) {
  WorkerSlot& slot =
      workers_[static_cast<std::size_t>(shard)]
              [static_cast<std::size_t>(slot_index)];
  AdmissionQueue<JobSpec>& queue = *queues_[static_cast<std::size_t>(shard)];
  JobSpec job;
  while (queue.Pop(&job)) {
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<obs::JobRungSpan> spans;
    JobResult result =
        RunJob(job, options_.telemetry != nullptr ? &spans : nullptr);
    const double latency =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    slot.host_latency.Add(latency);
    ++slot.jobs_run;
    RecordResult(std::move(result), std::move(spans));
  }
}

const sim::TuningConfig* ServeEngine::TunedConfigFor(const JobSpec& job) {
  if (!options_.autotune) return nullptr;
  const std::string key = job.benchmark + (job.fp64 ? "|fp64|" : "|fp32|") +
                          std::string(sim::BackendName(job.device));
  std::lock_guard<std::mutex> lock(tuning_mu_);
  auto it = tuned_.find(key);
  if (it != tuned_.end()) return it->second.get();

  harness::TuningRequest request;
  request.benchmark = job.benchmark;
  request.sizes = job.sizes;
  request.fp64 = job.fp64;
  request.seed = job.seed;
  request.device = job.device;
  request.power = options_.power;
  request.tuner = options_.tuner;
  // Tuning measures the healthy system: no injected faults in the search
  // (a fault-skewed winner would be wrong for every healthy job).
  request.cache = options_.tune_cache;
  StatusOr<harness::TuningReport> report = harness::TuneBenchmark(request);
  std::unique_ptr<sim::TuningConfig> winner;
  if (report.ok()) {
    winner = std::make_unique<sim::TuningConfig>(report->result.best);
  } else {
    MALI_LOG_WARN("serve: tuning %s failed (%s); using the paper kernel",
                  key.c_str(), report.status().ToString().c_str());
  }
  // Failures memoize as null so one broken tuning problem costs one
  // search, not one per job.
  return tuned_.emplace(key, std::move(winner)).first->second.get();
}

JobResult ServeEngine::RunJob(const JobSpec& job,
                              std::vector<obs::JobRungSpan>* spans) {
  JobResult r;
  r.id = job.id;
  r.tenant = job.tenant;
  r.requested = job.variant;
  r.ran = job.variant;

  const double budget = job.deadline_sec > 0.0 ? job.deadline_sec
                                               : options_.default_deadline_sec;
  double consumed = 0.0;
  Status last_error =
      InternalError("ladder exhausted without an attempt");  // overwritten
  bool terminal_deadline = false;

  for (hpc::Variant rung : LadderFrom(job.variant)) {
    const bool last_resort = rung == hpc::Variant::kSerial;
    CircuitBreaker& breaker = breakers_.ForVariant(rung);
    const bool allowed = breaker.Allow();
    if (!allowed && !last_resort) {
      // Open breaker: route past this rung without paying for the failure.
      r.breaker_rerouted = true;
      AddSpan(spans, rung, consumed, consumed, "breaker-skipped");
      continue;
    }
    if (!allowed) r.breaker_rerouted = true;  // forced Serial attempt

    double remaining = 0.0;
    if (budget > 0.0) {
      remaining = budget - consumed;
      if (remaining <= 0.0) {
        terminal_deadline = true;
        last_error = DeadlineExceededError(
            "job budget (" + std::to_string(budget) +
            " modelled sec) exhausted before rung " +
            std::string(hpc::VariantName(rung)));
        AddSpan(spans, rung, consumed, consumed, "budget-exhausted");
        break;
      }
    }

    harness::JobExecRequest request;
    request.benchmark = job.benchmark;
    request.sizes = job.sizes;
    request.fp64 = job.fp64;
    request.seed = job.seed;
    request.device = job.device;
    request.variant = rung;
    request.hetero_ratio = job.hetero_ratio;
    request.fault = options_.fault;
    request.fault.seed = JobFaultSeed(options_.fault.seed, job.id, rung);
    if (budget > 0.0) {
      request.fault.watchdog_sec =
          options_.fault.watchdog_sec > 0.0
              ? std::min(options_.fault.watchdog_sec, remaining)
              : remaining;
      request.max_total_backoff_sec = remaining;
    }
    request.tuned = rung == hpc::Variant::kOpenCLOpt ? TunedConfigFor(job)
                                                     : nullptr;
    request.power = options_.power;
    request.compile_cache = options_.compile_cache ? &compile_cache_ : nullptr;

    harness::JobExecResult exec;
    const double rung_start = consumed;
    const Status status = harness::ExecuteJobVariant(request, &exec);
    ++r.attempts;
    r.retries += exec.retry.retries;
    r.backoff_sec += exec.retry.backoff_sec;
    consumed += exec.retry.backoff_sec;

    if (status.ok()) {
      consumed += exec.seconds;
      breaker.RecordSuccess();
      if (budget > 0.0 && consumed > budget) {
        // It ran, but past the promise. A deadline violation is reported
        // as one, not silently excused by eventual success.
        terminal_deadline = true;
        last_error = DeadlineExceededError(
            "completed on rung " + std::string(hpc::VariantName(rung)) +
            " but spent " + std::to_string(consumed) + " of " +
            std::to_string(budget) + " modelled sec");
        AddSpan(spans, rung, rung_start, consumed, "ok-past-deadline",
                exec.retry.retries, exec.retry.backoff_sec);
        break;
      }
      AddSpan(spans, rung, rung_start, consumed, "ok", exec.retry.retries,
              exec.retry.backoff_sec);
      r.state = rung == job.variant ? JobState::kOk : JobState::kDegraded;
      r.ran = rung;
      r.seconds = exec.seconds;
      r.energy_j = exec.energy_j;
      r.note = exec.note;
      r.consumed_sec = consumed;
      return r;
    }

    last_error = status;
    if (status.code() == ErrorCode::kDeadlineExceeded) {
      // The rung's watchdog fired: its whole allotment is spent.
      consumed += request.fault.watchdog_sec;
      breaker.RecordFailure();
      AddSpan(spans, rung, rung_start, consumed, "watchdog",
              exec.retry.retries, exec.retry.backoff_sec);
      continue;
    }
    if (!fault::IsDegradable(status)) {
      // Fatal taxonomy: no rung below computes a different answer.
      AddSpan(spans, rung, rung_start, consumed, "fatal", exec.retry.retries,
              exec.retry.backoff_sec);
      r.state = JobState::kFailed;
      r.error = status.ToString();
      r.consumed_sec = consumed;
      return r;
    }
    breaker.RecordFailure();
    AddSpan(spans, rung, rung_start, consumed, "degradable-fault",
            exec.retry.retries, exec.retry.backoff_sec);
  }

  r.state =
      terminal_deadline || last_error.code() == ErrorCode::kDeadlineExceeded
          ? JobState::kDeadlineExceeded
          : JobState::kFailed;
  r.error = last_error.ToString();
  r.consumed_sec = consumed;
  return r;
}

void ServeEngine::RecordResult(JobResult result,
                               std::vector<obs::JobRungSpan> spans) {
  obs::TelemetrySample sample;
  if (options_.telemetry != nullptr) {
    sample.id = result.id;
    sample.tenant = NormalizeTenant(result.tenant);
    sample.state = std::string(JobStateName(result.state));
    sample.completed = result.state == JobState::kOk ||
                       result.state == JobState::kDegraded;
    sample.rung =
        sample.completed ? std::string(VariantKey(result.ran)) : std::string();
    sample.shed = result.state == JobState::kShed;
    sample.deadline_missed = result.state == JobState::kDeadlineExceeded;
    sample.failed = result.state == JobState::kFailed;
    sample.modelled_sec = result.seconds;
    sample.consumed_sec = result.consumed_sec;
    sample.energy_j = result.energy_j;
    sample.backoff_sec = result.backoff_sec;
    sample.retries = result.retries;
    sample.attempts = result.attempts;
    sample.breaker_rerouted = result.breaker_rerouted;
    sample.spans = std::move(spans);
  }
  {
    std::lock_guard<std::mutex> lock(results_mu_);
    results_.push_back(std::move(result));
  }
  // Outside results_mu_: Record may trip a window flush (snapshot render,
  // sink IO) and must never serialize result recording behind it.
  if (options_.telemetry != nullptr) {
    options_.telemetry->Record(std::move(sample));
  }
}

ServeReport ServeEngine::Drain() {
  BeginShutdown();
  for (auto& shard : workers_) {
    for (WorkerSlot& slot : shard) {
      if (slot.thread.joinable()) slot.thread.join();
    }
  }
  drained_ = true;
  if (options_.telemetry != nullptr) {
    // Producers have stopped: flush every remaining window (the partial
    // final one included), then seal the recorder — anything recorded
    // after this point is a late record and is surfaced as a counter.
    options_.telemetry->FinalFlush();
    if (obs::Recorder* recorder = options_.telemetry->recorder();
        recorder != nullptr) {
      recorder->Seal();
    }
    options_.telemetry->SetStateProber(nullptr);
  }
  const double host_elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();

  ServeReport report;
  report.submitted = submitted_.load();
  {
    std::lock_guard<std::mutex> lock(results_mu_);
    report.results = std::move(results_);
  }
  std::sort(report.results.begin(), report.results.end(),
            [](const JobResult& a, const JobResult& b) { return a.id < b.id; });
  for (const JobResult& r : report.results) {
    ++report.state_counts[static_cast<std::size_t>(r.state)];
  }
  for (hpc::Variant v : hpc::kDegradationLadder) {
    const CircuitBreaker& b = breakers_.ForVariant(v);
    report.breakers.push_back({v, b.state(), b.trips()});
  }
  report.host_elapsed_sec = host_elapsed;
  report.jobs_per_host_sec =
      host_elapsed > 0.0
          ? static_cast<double>(report.results.size()) / host_elapsed
          : 0.0;
  report.compile_cache_stats = compile_cache_.stats();

  // Metrics. Everything under "serve/" is a pure function of the job set
  // and the fault plan (iteration over id-sorted results); host wall-clock
  // derived values live under "serve_host/" so bench gates can hold them
  // to a loose threshold.
  obs::MetricsAggregator agg;
  for (int s = 0; s < kNumJobStates; ++s) {
    agg.AddCounter("serve/jobs_" +
                       std::string(JobStateName(static_cast<JobState>(s))),
                   static_cast<double>(report.state_counts[
                       static_cast<std::size_t>(s)]));
  }
  agg.AddCounter("serve/jobs_submitted",
                 static_cast<double>(report.submitted));
  std::map<std::string, std::array<std::uint64_t, kNumJobStates>> by_tenant;
  for (const JobResult& r : report.results) {
    agg.AddCounter("serve/retries", static_cast<double>(r.retries));
    agg.AddCounter("serve/rung_attempts", static_cast<double>(r.attempts));
    if (r.breaker_rerouted) agg.AddCounter("serve/breaker_reroutes");
    ++by_tenant[NormalizeTenant(r.tenant)][static_cast<std::size_t>(r.state)];
    if (r.state == JobState::kOk || r.state == JobState::kDegraded) {
      agg.Observe("serve/job_modelled_sec", r.seconds);
      agg.Observe("serve/job_energy_j", r.energy_j);
      agg.AddCounter("serve/completed_on/" + std::string(VariantKey(r.ran)));
    }
    if (r.backoff_sec > 0.0) {
      agg.Observe("serve/job_backoff_sec", r.backoff_sec);
    }
  }
  for (const auto& [tenant, counts] : by_tenant) {
    for (int s = 0; s < kNumJobStates; ++s) {
      const std::uint64_t c = counts[static_cast<std::size_t>(s)];
      if (c == 0) continue;
      agg.AddCounter("serve/tenant/" + tenant + "/jobs_" +
                         std::string(JobStateName(static_cast<JobState>(s))),
                     static_cast<double>(c));
    }
  }
  for (const ServeReport::BreakerRow& row : report.breakers) {
    agg.AddCounter("serve/breaker_trips/" + std::string(VariantKey(row.rung)),
                   static_cast<double>(row.trips));
  }
  agg.AddCounter("serve/compile_cache_hits",
                 static_cast<double>(report.compile_cache_stats.hits));
  agg.AddCounter("serve/compile_cache_misses",
                 static_cast<double>(report.compile_cache_stats.misses));
  if (options_.telemetry != nullptr) {
    const obs::TelemetryTotals totals = options_.telemetry->Totals();
    agg.AddCounter("serve/telemetry/windows",
                   static_cast<double>(totals.windows));
    agg.AddCounter("serve/telemetry/exemplars",
                   static_cast<double>(totals.exemplars));
    agg.AddCounter("serve/telemetry/slo_breaches",
                   static_cast<double>(totals.slo_breaches));
    agg.AddCounter("serve/telemetry/slo_recoveries",
                   static_cast<double>(totals.slo_recoveries));
    if (const obs::Recorder* recorder = options_.telemetry->recorder();
        recorder != nullptr) {
      agg.AddCounter("serve/obs/late_records",
                     static_cast<double>(recorder->late_records()));
    }
  }

  agg.SetGauge("serve_host/elapsed_sec", host_elapsed);
  agg.SetGauge("serve_host/jobs_per_host_sec", report.jobs_per_host_sec);
  obs::LogHistogram host_latency;
  for (const auto& shard : workers_) {
    for (const WorkerSlot& slot : shard) {
      host_latency.Merge(slot.host_latency);
    }
  }
  agg.MergeHistogram("serve_host/job_latency_sec", host_latency);
  report.metrics = agg.Finalize();
  return report;
}

std::string ServeReport::ToText() const {
  std::string out = "=== malisim-serve report ===\n";
  out += "jobs submitted: " + std::to_string(submitted) + "\n";
  for (int s = 0; s < kNumJobStates; ++s) {
    out += "  " + std::string(JobStateName(static_cast<JobState>(s))) + ": " +
           std::to_string(state_counts[static_cast<std::size_t>(s)]) + "\n";
  }
  out += "breakers:\n";
  for (const BreakerRow& row : breakers) {
    out += "  " + std::string(hpc::VariantName(row.rung)) + ": " +
           std::string(BreakerStateName(row.state)) + " (" +
           std::to_string(row.trips) + " trip(s))\n";
  }
  out += "host: " + FormatDouble(host_elapsed_sec, 2) + " s, " +
         FormatDouble(jobs_per_host_sec, 1) + " jobs/s\n";
  out += "compile cache: " + std::to_string(compile_cache_stats.hits) +
         " hit(s), " + std::to_string(compile_cache_stats.misses) +
         " miss(es)\n";
  const auto p50 = metrics.histograms.find("serve_host/job_latency_sec");
  if (p50 != metrics.histograms.end() && p50->second.count > 0) {
    out += "job latency: p50 " + FormatDouble(p50->second.p50 * 1e3, 1) +
           " ms, p99 " + FormatDouble(p50->second.p99 * 1e3, 1) + " ms\n";
  }
  out += std::string("invariant: ") +
         (Consistent() ? "consistent (no lost jobs)" : "VIOLATED") + "\n";
  return out;
}

std::string ServeReport::ToJson(bool include_results) const {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema");
  w.String("malisim-serve-v1");
  w.Key("submitted");
  w.Number(static_cast<std::uint64_t>(submitted));
  w.Key("states");
  w.BeginObject();
  for (int s = 0; s < kNumJobStates; ++s) {
    w.Key(std::string(JobStateName(static_cast<JobState>(s))));
    w.Number(state_counts[static_cast<std::size_t>(s)]);
  }
  w.EndObject();
  w.Key("consistent");
  w.Bool(Consistent());
  w.Key("host_elapsed_sec");
  w.Number(host_elapsed_sec);
  w.Key("jobs_per_host_sec");
  w.Number(jobs_per_host_sec);
  w.Key("compile_cache");
  w.BeginObject();
  w.Key("hits");
  w.Number(compile_cache_stats.hits);
  w.Key("misses");
  w.Number(compile_cache_stats.misses);
  w.EndObject();
  w.Key("breakers");
  w.BeginArray();
  for (const BreakerRow& row : breakers) {
    w.BeginObject();
    w.Key("rung");
    w.String(std::string(VariantKey(row.rung)));
    w.Key("state");
    w.String(std::string(BreakerStateName(row.state)));
    w.Key("trips");
    w.Number(row.trips);
    w.EndObject();
  }
  w.EndArray();
  if (include_results) {
    w.Key("results");
    w.BeginArray();
    for (const JobResult& r : results) {
      w.BeginObject();
      w.Key("id");
      w.Number(r.id);
      w.Key("tenant");
      w.String(NormalizeTenant(r.tenant));
      w.Key("state");
      w.String(std::string(JobStateName(r.state)));
      w.Key("requested");
      w.String(std::string(VariantKey(r.requested)));
      w.Key("ran");
      w.String(std::string(VariantKey(r.ran)));
      w.Key("seconds");
      w.Number(r.seconds);
      w.Key("consumed_sec");
      w.Number(r.consumed_sec);
      w.Key("energy_j");
      w.Number(r.energy_j);
      w.Key("attempts");
      w.Number(static_cast<std::uint64_t>(r.attempts < 0 ? 0 : r.attempts));
      w.Key("retries");
      w.Number(static_cast<std::uint64_t>(r.retries < 0 ? 0 : r.retries));
      w.Key("backoff_sec");
      w.Number(r.backoff_sec);
      w.Key("breaker_rerouted");
      w.Bool(r.breaker_rerouted);
      if (!r.error.empty()) {
        w.Key("error");
        w.String(r.error);
      }
      if (!r.note.empty()) {
        w.Key("note");
        w.String(r.note);
      }
      w.EndObject();
    }
    w.EndArray();
  }
  w.EndObject();
  return w.str() + "\n";
}

}  // namespace malisim::serve
