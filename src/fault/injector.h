// FaultInjector: the imperative half of the fault-injection subsystem.
//
// Each injection point in the stack (tinycl queue ops, buffer allocation,
// the Mali kernel compiler, the T604 device model, the virtual WT230)
// holds an optional FaultInjector* and asks it whether to misbehave. All
// decisions are pure functions of (plan seed, site, site-local sequence
// number): no shared RNG stream, no cross-site coupling — injecting at
// one site never shifts another site's schedule, which is what makes
// fault schedules replayable and diffable.
//
// The injector also keeps the authoritative event log (what fired, where,
// and what the resilience layer did about it). A sink callback lets the
// harness mirror events into the observability Recorder without the fault
// library depending on obs (which would create a dependency cycle via
// power).
//
// Thread safety: one injector serves one (benchmark, precision) harness
// cell, whose injection sites all run on a single host thread; the event
// log is therefore unsynchronized. Parallel RunAll gives every cell its
// own injector.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "fault/fault_plan.h"

namespace malisim::fault {

/// One fault decision or resilience action, in program order.
struct FaultEvent {
  std::string site;    // FaultSiteName() or a resilience stage ("retry",
                       // "degrade", "watchdog", "ladder")
  std::string key;     // kernel/buffer/benchmark context
  std::string action;  // "injected", "retried", "fell-back", ...
  std::string detail;  // human-readable description
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan) : plan_(plan) {}

  const FaultPlan& plan() const { return plan_; }

  /// Sink invoked for every recorded event (harness wires the Recorder).
  void set_sink(std::function<void(const FaultEvent&)> sink) {
    sink_ = std::move(sink);
  }

  /// Decides whether the next operation at `site` faults, advancing the
  /// site's sequence number. Records an event when it trips.
  bool Trip(FaultSite site, std::string_view key);

  /// amcd FP64 erratum quirk: `condition` is the structural trigger
  /// (FP64 special function in a divergent loop). Deterministic — not a
  /// probabilistic site; the plan can only switch the quirk off.
  bool TripFp64Erratum(bool condition) const {
    return plan_.fp64_erratum && condition;
  }

  /// Effective per-thread register budget for compiling `kernel`:
  /// unlimited when the reg-budget quirk is off, squeezed by
  /// reg_squeeze_factor when kRegSqueeze trips.
  std::uint32_t EffectiveRegBudget(std::uint32_t budget,
                                   std::string_view kernel);

  /// Time multiplier for one kernel launch: throttle_time_factor when
  /// kThrottle trips, else 1.0.
  double ThrottleTimeFactor(std::string_view kernel);

  /// True when the meter's next sample is dropped. Uses the kMeterDropout
  /// decision stream only — the meter's accuracy-noise RNG is untouched,
  /// so disabling injection leaves measurements bit-identical.
  bool DropMeterSample();

  /// Records a resilience action (retry, degrade, watchdog) in the event
  /// log and the sink. `site` is free-form here, not a FaultSite.
  void RecordAction(std::string site, std::string key, std::string action,
                    std::string detail);

  const std::vector<FaultEvent>& events() const { return events_; }
  std::uint64_t trips(FaultSite site) const {
    return trips_[static_cast<int>(site)];
  }
  std::uint64_t total_trips() const;

 private:
  /// Uniform [0, 1) draw for decision `sequence` at `site`.
  double Draw(FaultSite site, std::uint64_t sequence) const;
  void Record(FaultSite site, std::string_view key, std::string detail);

  FaultPlan plan_;
  std::function<void(const FaultEvent&)> sink_;
  std::uint64_t sequence_[kNumFaultSites] = {};
  std::uint64_t trips_[kNumFaultSites] = {};
  std::vector<FaultEvent> events_;
};

}  // namespace malisim::fault
