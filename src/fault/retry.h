// Error taxonomy and the bounded retry-with-backoff wrapper.
//
// Taxonomy (DESIGN.md §8):
//  * transient  — injected runtime hiccups (Unavailable, AllocationFailure):
//                 retrying the same operation may succeed.
//  * degradable — the operation will keep failing at this optimization
//                 level but a lower rung may work: ResourceExhausted
//                 (register budget), BuildFailure (compiler), the watchdog
//                 (DeadlineExceeded), and transient errors that survived
//                 their retry budget.
//  * fatal      — programming/configuration errors (InvalidArgument & co);
//                 never retried, never degraded.
//
// RetryWithBackoff is modelled-world only: the "backoff" is accounted in
// RetryStats for reporting, never added to a measured region's modelled
// seconds (a real harness would sleep; the simulation just notes it).
#pragma once

#include <utility>

#include "common/status.h"
#include "fault/fault_plan.h"

namespace malisim::fault {

/// Retrying the same operation may succeed.
inline bool IsTransient(const Status& status) {
  return status.code() == ErrorCode::kUnavailable ||
         status.code() == ErrorCode::kAllocationFailure;
}

/// A lower rung of the degradation ladder may succeed.
inline bool IsDegradable(const Status& status) {
  return IsTransient(status) ||
         status.code() == ErrorCode::kResourceExhausted ||
         status.code() == ErrorCode::kBuildFailure ||
         status.code() == ErrorCode::kDeadlineExceeded;
}

struct RetryStats {
  int attempts = 0;         // total tries of the final operation
  int retries = 0;          // attempts - 1 when any retry happened
  double backoff_sec = 0.0; // accounted (not modelled) host-side waiting
};

namespace internal {
inline const Status& StatusOf(const Status& s) { return s; }
template <typename T>
const Status& StatusOf(const StatusOr<T>& s) {
  return s.status();
}
}  // namespace internal

/// Invokes `fn` (returning Status or StatusOr<T>) up to
/// `policy.max_attempts` times, backing off exponentially between
/// attempts, as long as the failure is transient. Returns the last result.
/// A retry is only taken while the accumulated backoff stays within
/// `policy.max_total_backoff_sec` (when set): retrying must never consume
/// more of a deadline budget than the caller granted, so a transient-fault
/// storm degrades or reports DeadlineExceeded instead of looking hung.
template <typename F>
auto RetryWithBackoff(const RetryPolicy& policy, F&& fn,
                      RetryStats* stats = nullptr) -> decltype(fn()) {
  RetryStats local;
  RetryStats* s = stats != nullptr ? stats : &local;
  double backoff = policy.base_backoff_sec;
  const int max_attempts = policy.max_attempts > 0 ? policy.max_attempts : 1;
  for (int attempt = 1;; ++attempt) {
    auto result = fn();
    s->attempts = attempt;
    if (result.ok() || attempt >= max_attempts ||
        !IsTransient(internal::StatusOf(result))) {
      return result;
    }
    if (policy.max_total_backoff_sec > 0.0 &&
        s->backoff_sec + backoff > policy.max_total_backoff_sec) {
      return result;  // out of deadline budget: give up, do not back off
    }
    ++s->retries;
    s->backoff_sec += backoff;
    backoff *= policy.multiplier;
  }
}

}  // namespace malisim::fault
