#include "fault/fault_plan.h"

#include <cstddef>
#include <cstdlib>
#include <cstring>

namespace malisim::fault {

std::string_view FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kAlloc:
      return "alloc";
    case FaultSite::kWrite:
      return "write";
    case FaultSite::kRead:
      return "read";
    case FaultSite::kCopy:
      return "copy";
    case FaultSite::kFill:
      return "fill";
    case FaultSite::kMap:
      return "map";
    case FaultSite::kUnmap:
      return "unmap";
    case FaultSite::kNDRange:
      return "ndrange";
    case FaultSite::kBuild:
      return "build";
    case FaultSite::kRegSqueeze:
      return "regsqueeze";
    case FaultSite::kThrottle:
      return "throttle";
    case FaultSite::kMeterDropout:
      return "meter";
  }
  return "unknown";
}

bool FaultSiteFromName(std::string_view name, FaultSite* out) {
  for (int i = 0; i < kNumFaultSites; ++i) {
    const FaultSite site = static_cast<FaultSite>(i);
    if (FaultSiteName(site) == name) {
      *out = site;
      return true;
    }
  }
  return false;
}

bool FaultPlan::InjectionActive() const {
  for (const double r : rates) {
    if (r > 0.0) return true;
  }
  return false;
}

std::uint64_t FaultPlan::Hash() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  const auto mix_u64 = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffULL;
      h *= 0x100000001b3ULL;
    }
  };
  const auto mix_double = [&](double v) {
    // Bit pattern, so 0.1 and 0.1000...1 hash differently; -0.0 vs 0.0 is
    // a distinction without a difference but cannot occur from our flags.
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    mix_u64(bits);
  };
  mix_u64(seed);
  for (const double r : rates) mix_double(r);
  mix_u64(fp64_erratum ? 1 : 0);
  mix_u64(reg_budget ? 1 : 0);
  mix_double(reg_squeeze_factor);
  mix_double(throttle_time_factor);
  mix_u64(static_cast<std::uint64_t>(retry.max_attempts));
  mix_double(retry.base_backoff_sec);
  mix_double(retry.multiplier);
  // Mixed only when engaged so every pre-existing plan keeps its historical
  // hash (committed BENCH baselines carry those digests).
  if (retry.max_total_backoff_sec > 0.0) {
    mix_double(retry.max_total_backoff_sec);
  }
  return h;
}

Status FaultPlan::ApplySpec(std::string_view spec) {
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;

    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos) {
      return InvalidArgumentError("fault spec entry '" + std::string(entry) +
                                  "' is not of the form site=rate");
    }
    const std::string_view name = entry.substr(0, eq);
    const std::string rate_text(entry.substr(eq + 1));
    char* end = nullptr;
    const double r = std::strtod(rate_text.c_str(), &end);
    if (end == rate_text.c_str() || *end != '\0' || r < 0.0 || r > 1.0) {
      return InvalidArgumentError("fault rate '" + rate_text + "' for '" +
                                  std::string(name) +
                                  "' is not a number in [0, 1]");
    }
    if (name == "all") {
      rates.fill(r);
      continue;
    }
    FaultSite site;
    if (!FaultSiteFromName(name, &site)) {
      return InvalidArgumentError(
          "unknown fault site '" + std::string(name) +
          "' (want alloc|write|read|copy|fill|map|unmap|ndrange|build|"
          "regsqueeze|throttle|meter|all)");
    }
    set_rate(site, r);
  }
  return Status::Ok();
}

StatusOr<FaultPlan> FaultPlan::FromOptions(const FaultOptions& options) {
  if (options.rate < 0.0 || options.rate > 1.0) {
    return InvalidArgumentError("--fault-rate must be in [0, 1]");
  }
  if (options.watchdog_sec < 0.0) {
    return InvalidArgumentError("--watchdog must be >= 0");
  }
  FaultPlan plan;
  plan.seed = options.seed;
  plan.rates.fill(options.rate);
  MALI_RETURN_IF_ERROR(plan.ApplySpec(options.spec));
  return plan;
}

}  // namespace malisim::fault
