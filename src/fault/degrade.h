// Graceful-degradation ladder: try progressively less ambitious ways of
// producing the same result.
//
// The full ladder, realized across two cooperating layers (DESIGN.md §8):
//
//   OpenCL Opt -> reduced-opt kernel -> naive OpenCL -> OpenMP -> Serial
//   \________________________________/  \___________________________/
//    benchmark-internal kernel rungs      harness variant rungs
//
// Each rung runs under the transient-retry policy; a degradable failure
// moves down one rung, a fatal failure aborts the ladder. The report
// gives callers the per-rung failures so layer-appropriate notes (the
// figure annotations) can be rendered without this header knowing about
// benchmarks or variants.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "fault/injector.h"
#include "fault/retry.h"

namespace malisim::fault {

/// One rung: a label for notes/events plus the operation itself.
template <typename T>
struct Rung {
  std::string label;
  std::function<StatusOr<T>()> run;
};

/// The rungs strictly below `value` in a top-down ordered ladder table:
/// RungsBelow({A, B, C}, B) == {C}; empty when `value` is the bottom rung
/// or absent. Lets callers derive fallback sequences positionally from one
/// ordered table instead of special-casing each enumerator — adding a rung
/// (e.g. a new backend) is a one-line table edit.
template <typename T>
std::span<const T> RungsBelow(std::span<const T> ladder, const T& value) {
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    if (ladder[i] == value) return ladder.subspan(i + 1);
  }
  return {};
}

struct LadderReport {
  /// Rung that produced the result; -1 when every rung failed.
  int rung_index = -1;
  /// (label, status) of each rung that failed before the winner.
  std::vector<std::pair<std::string, Status>> failures;
  /// Retry accounting summed over all rungs.
  RetryStats retry;
};

/// Walks the rungs top-down. Every rung gets the transient-retry budget;
/// degradable failures fall through to the next rung, anything else
/// returns immediately. Events are recorded on `injector` when given.
template <typename T>
StatusOr<T> RunLadder(const RetryPolicy& policy, std::span<const Rung<T>> rungs,
                      LadderReport* report = nullptr,
                      FaultInjector* injector = nullptr) {
  MALI_CHECK_MSG(!rungs.empty(), "degradation ladder needs at least one rung");
  Status last;
  for (std::size_t i = 0; i < rungs.size(); ++i) {
    RetryStats rs;
    StatusOr<T> result = RetryWithBackoff(policy, rungs[i].run, &rs);
    if (report != nullptr) {
      report->retry.attempts += rs.attempts;
      report->retry.retries += rs.retries;
      report->retry.backoff_sec += rs.backoff_sec;
    }
    if (injector != nullptr && rs.retries > 0) {
      injector->RecordAction("retry", rungs[i].label, "retried",
                             std::to_string(rs.retries) +
                                 " transient retr" +
                                 (rs.retries == 1 ? "y" : "ies"));
    }
    if (result.ok()) {
      if (report != nullptr) report->rung_index = static_cast<int>(i);
      return result;
    }
    last = internal::StatusOf(result);
    if (report != nullptr) {
      report->failures.emplace_back(rungs[i].label, last);
    }
    if (!IsDegradable(last)) return result;
    if (injector != nullptr && i + 1 < rungs.size()) {
      injector->RecordAction("degrade", rungs[i].label, "fell-back",
                             last.ToString() + " -> trying '" +
                                 rungs[i + 1].label + "'");
    }
  }
  return last;
}

}  // namespace malisim::fault
