#include "fault/injector.h"

#include "common/log.h"
#include "common/prng.h"

namespace malisim::fault {

double FaultInjector::Draw(FaultSite site, std::uint64_t sequence) const {
  // Counter-mode draw: hash (seed, site, sequence) through SplitMix64.
  // Each decision is independent of every other site's history.
  SplitMix64 sm(plan_.seed ^
                (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(site) + 1)) ^
                (0xd1b54a32d192ed03ULL * (sequence + 1)));
  return static_cast<double>(sm.Next() >> 11) * 0x1.0p-53;
}

bool FaultInjector::Trip(FaultSite site, std::string_view key) {
  const double rate = plan_.rate(site);
  const std::uint64_t seq = sequence_[static_cast<int>(site)]++;
  if (rate <= 0.0) return false;
  if (Draw(site, seq) >= rate) return false;
  ++trips_[static_cast<int>(site)];
  Record(site, key, "op #" + std::to_string(seq) + " at rate " +
                        std::to_string(rate));
  return true;
}

std::uint32_t FaultInjector::EffectiveRegBudget(std::uint32_t budget,
                                                std::string_view kernel) {
  if (!plan_.reg_budget) return 0xFFFFFFFFu;
  if (Trip(FaultSite::kRegSqueeze, kernel)) {
    const std::uint32_t squeezed = static_cast<std::uint32_t>(
        static_cast<double>(budget) * plan_.reg_squeeze_factor);
    return squeezed > 0 ? squeezed : 1;
  }
  return budget;
}

double FaultInjector::ThrottleTimeFactor(std::string_view kernel) {
  if (Trip(FaultSite::kThrottle, kernel)) {
    return plan_.throttle_time_factor;
  }
  return 1.0;
}

bool FaultInjector::DropMeterSample() {
  return Trip(FaultSite::kMeterDropout, "wt230");
}

void FaultInjector::Record(FaultSite site, std::string_view key,
                           std::string detail) {
  FaultEvent event;
  event.site = std::string(FaultSiteName(site));
  event.key = std::string(key);
  event.action = "injected";
  event.detail = std::move(detail);
  MALI_LOG_DEBUG("fault injected: site=%s key=%s (%s)", event.site.c_str(),
                 event.key.c_str(), event.detail.c_str());
  if (sink_) sink_(event);
  events_.push_back(std::move(event));
}

void FaultInjector::RecordAction(std::string site, std::string key,
                                 std::string action, std::string detail) {
  FaultEvent event;
  event.site = std::move(site);
  event.key = std::move(key);
  event.action = std::move(action);
  event.detail = std::move(detail);
  MALI_LOG_DEBUG("fault action: site=%s key=%s action=%s (%s)",
                 event.site.c_str(), event.key.c_str(), event.action.c_str(),
                 event.detail.c_str());
  if (sink_) sink_(event);
  events_.push_back(std::move(event));
}

std::uint64_t FaultInjector::total_trips() const {
  std::uint64_t total = 0;
  for (const std::uint64_t t : trips_) total += t;
  return total;
}

}  // namespace malisim::fault
