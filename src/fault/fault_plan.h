// FaultPlan: the declarative half of the fault-injection subsystem.
//
// A plan says *what can go wrong and how often*: per-site trip
// probabilities for the injectable faults (transient enqueue/map/unmap
// failures, allocation failures, probabilistic build failures,
// register-budget squeezes, thermal-throttle events, power-meter sample
// dropouts) plus the two always-on quirks the paper documents (the amcd
// FP64 compiler erratum and the per-thread register budget) and the retry
// policy the resilience layer applies to transient errors.
//
// Determinism contract (DESIGN.md §8): a plan never draws from a shared
// RNG stream. FaultInjector derives every decision from a counter-free
// hash of (plan seed, site, site-local sequence number), and the harness
// instantiates one injector per (benchmark, precision) cell with a seed
// keyed by the cell name — so decisions are independent of which host
// thread runs the cell and identical (sim seed, fault seed, threads)
// triples replay bit-identically.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/sim_options.h"
#include "common/status.h"

namespace malisim::fault {

/// Injection sites threaded through the stack. Keep FaultSiteName() and
/// FaultSiteFromName() in sync when extending.
enum class FaultSite : std::uint8_t {
  kAlloc = 0,    // clCreateBuffer -> CL_MEM_OBJECT_ALLOCATION_FAILURE
  kWrite,        // clEnqueueWriteBuffer (transient)
  kRead,         // clEnqueueReadBuffer (transient)
  kCopy,         // clEnqueueCopyBuffer (transient)
  kFill,         // clEnqueueFillBuffer (transient)
  kMap,          // clEnqueueMapBuffer -> CL_MAP_FAILURE (transient)
  kUnmap,        // clEnqueueUnmapMemObject (transient)
  kNDRange,      // clEnqueueNDRangeKernel submission (transient)
  kBuild,        // clBuildProgram: probabilistic compiler failure
  kRegSqueeze,   // compiler: register budget squeezed for one kernel
  kThrottle,     // device: thermal-throttle/DVFS event scales a launch
  kMeterDropout, // virtual WT230: one sample dropped
};
inline constexpr int kNumFaultSites = 12;

/// Short lower-case site name used by --fault-spec ("alloc", "map", ...).
std::string_view FaultSiteName(FaultSite site);

/// Inverse of FaultSiteName; false on unknown names.
bool FaultSiteFromName(std::string_view name, FaultSite* out);

/// Bounded exponential backoff for transient errors (fault/retry.h).
struct RetryPolicy {
  int max_attempts = 3;            // total tries, not extra retries
  double base_backoff_sec = 1e-3;  // host-side wait before the 2nd try
  double multiplier = 2.0;
  /// Total accounted backoff budget across all attempts; a retry whose
  /// backoff would push the accumulated total past this bound is not
  /// taken (the last failure is returned instead). 0 = unbounded. The
  /// serve layer sets this to the job's remaining deadline budget so a
  /// slow backoff sequence can never outlive the watchdog and read as a
  /// hung job.
  double max_total_backoff_sec = 0.0;
};

struct FaultPlan {
  /// Seed of every decision stream derived from this plan.
  std::uint64_t seed = 0;

  /// Per-site trip probability in [0, 1]. All zero = no injection.
  std::array<double, kNumFaultSites> rates{};

  /// Always-on quirks generalized from the previously hard-coded
  /// behaviours. Both default to firing deterministically whenever their
  /// structural condition holds — that is the paper's board.
  bool fp64_erratum = true;  // amcd FP64 special-in-divergent-loop erratum
  bool reg_budget = true;    // per-thread register budget enforcement

  /// A kRegSqueeze trip multiplies the register budget by this factor for
  /// one kernel compile (a pessimistic-allocator event).
  double reg_squeeze_factor = 0.5;
  /// A kThrottle trip multiplies one launch's modelled seconds by this
  /// factor (DVFS drop: same work at a lower clock).
  double throttle_time_factor = 1.25;

  RetryPolicy retry;

  double rate(FaultSite site) const {
    return rates[static_cast<int>(site)];
  }
  void set_rate(FaultSite site, double r) {
    rates[static_cast<int>(site)] = r;
  }

  /// True when any injectable site can fire.
  bool InjectionActive() const;

  /// Stable FNV-1a digest of everything that shapes the fault schedule:
  /// seed, per-site rates, quirk switches, squeeze/throttle factors and
  /// the retry policy. Two runs with equal hashes face identical fault
  /// behaviour, which is what makes their BENCH records comparable —
  /// malisim-bench warns when the hashes differ.
  std::uint64_t Hash() const;

  /// Applies a "site=rate[,site=rate...]" spec ("all" = every site).
  /// InvalidArgument on unknown sites or rates outside [0, 1].
  Status ApplySpec(std::string_view spec);

  /// Builds a plan from the plain-data options: uniform `rate` first,
  /// then `spec` overrides. InvalidArgument on a malformed spec/rate.
  static StatusOr<FaultPlan> FromOptions(const FaultOptions& options);
};

}  // namespace malisim::fault
